"""Assemble request phase marks into per-request latency breakdowns.

The protocol stack drops :meth:`~repro.obs.tracer.Tracer.mark` boundaries
as each request moves through agreement:

======================  =======================================================
boundary                stamped by
======================  =======================================================
``invoke``              client, when the request is submitted
``primary-recv``        primary, when the request datagram is dispatched
``pre-prepare``         primary, when the request leaves in a pre-prepare batch
``prepared``            primary, when the batch gathers its prepare certificate
``committed``           primary, when the batch gathers its commit certificate
``executed``            primary, when the request's reply is produced
``done``                client, when enough matching replies arrived
======================  =======================================================

Consecutive boundaries bound the six protocol phases (``client-send``,
``pre-prepare``, ``prepare``, ``commit``, ``execute``, ``reply``).  Two
facts of the protocol complicate the raw timestamps: tentative execution
can execute (and even complete at the client) *before* the commit
certificate lands, and a view change can restart phases.  We therefore
clamp each boundary into ``[invoke, done]`` and make the sequence
monotone with a running max, so the phases tile the request's observed
latency exactly — every nanosecond of client-visible latency is
attributed to exactly one phase.
"""

from __future__ import annotations

from collections import defaultdict

from repro.obs.tracer import KIND_MARK, Tracer

BOUNDARIES = (
    "invoke",
    "primary-recv",
    "pre-prepare",
    "prepared",
    "committed",
    "executed",
    "done",
)

PHASE_NAMES = (
    "client-send",
    "pre-prepare",
    "prepare",
    "commit",
    "execute",
    "reply",
)

_BOUNDARY_INDEX = {name: i for i, name in enumerate(BOUNDARIES)}


def collect_marks(tracer: Tracer) -> dict[object, dict[str, int]]:
    """Per correlation id, the first timestamp seen for each boundary."""
    marks: dict[object, dict[str, int]] = defaultdict(dict)
    for event in tracer.events:
        if event.kind != KIND_MARK:
            continue
        per_request = marks[event.corr]
        if event.name not in per_request:
            per_request[event.name] = event.ts
    return dict(marks)


def request_phases(tracer: Tracer) -> dict[object, list[tuple[str, int, int]]]:
    """Phase intervals ``(phase, start_ns, end_ns)`` per completed request.

    Only requests with both ``invoke`` and ``done`` marks are included;
    missing interior boundaries yield zero-length phases.  The intervals
    of one request are contiguous and cover ``[invoke, done]`` exactly.
    """
    out: dict[object, list[tuple[str, int, int]]] = {}
    for corr, per_request in collect_marks(tracer).items():
        if "invoke" not in per_request or "done" not in per_request:
            continue
        start = per_request["invoke"]
        done = per_request["done"]
        cursor = start
        phases: list[tuple[str, int, int]] = []
        for boundary, phase in zip(BOUNDARIES[1:], PHASE_NAMES):
            ts = per_request.get(boundary, cursor)
            ts = min(max(ts, cursor), done)
            if boundary == "done":
                ts = done
            phases.append((phase, cursor, ts))
            cursor = ts
        out[corr] = phases
    return out


def phase_breakdown(
    tracer: Tracer, since_ns: int = 0
) -> dict[str, float]:
    """Mean nanoseconds spent per phase over requests completed after
    ``since_ns`` (use the measurement window's start to skip warm-up)."""
    totals = {name: 0 for name in PHASE_NAMES}
    count = 0
    for phases in request_phases(tracer).values():
        if phases[-1][2] < since_ns:
            continue
        count += 1
        for name, start, end in phases:
            totals[name] += end - start
    if count == 0:
        return {}
    return {name: totals[name] / count for name in PHASE_NAMES}
