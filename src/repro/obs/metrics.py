"""Typed metrics: counters, gauges, and fixed-bucket histograms.

Replaces the untyped ``stats`` defaultdicts that used to live on replicas
and clients.  A :class:`MetricsRegistry` is one deployment's metric
namespace; nodes carve out prefixed :class:`StatsView` windows into it so
the existing ``node.stats["requests_executed"] += 1`` idiom keeps working
while every number lands in one place, typed, and exportable.

All values are plain Python ints/floats; observation is O(1) and
allocation-free on the hot path (histograms pre-allocate their bucket
array at registration).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections.abc import MutableMapping
from typing import Iterator, Optional, Sequence

from repro.common.errors import ConfigError
from repro.common.hotpath import HOTPATH

# Default latency buckets: 10us .. 10s, roughly 1-2-5 per decade.  Values
# are nanoseconds, like every duration in this library.
DEFAULT_LATENCY_BUCKETS_NS: tuple[int, ...] = tuple(
    int(base * 10**exp)
    for exp in range(4, 10)
    for base in (1, 2, 5)
) + (10**10,)


def nearest_rank_percentile(sorted_values: Sequence, p: float):
    """Nearest-rank percentile over pre-sorted values.

    The smallest value with at least ``ceil(p * n)`` values <= it — the
    definition :class:`repro.harness.measure.Measurement` has used since
    the PR-2 bias fix.  Every harness percentile routes through here so
    independent reimplementations cannot drift again.  ``sorted_values``
    must already be in ascending order; an empty sequence reports 0.
    """
    if not 0.0 < p <= 1.0:
        raise ConfigError(f"percentile {p} outside (0, 1]")
    if not sorted_values:
        return 0
    rank = max(1, math.ceil(p * len(sorted_values)))
    return sorted_values[min(len(sorted_values) - 1, rank - 1)]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can go up and down (queue depth, clock, utilization)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def add(self, delta) -> None:
        self.value += delta

    def update_max(self, value) -> None:
        """Track a high-water mark: keep the largest value ever seen."""
        if value > self.value:
            self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A fixed-bucket histogram with sum/count/min/max.

    ``bounds`` are inclusive upper bounds of each bucket; one overflow
    bucket is appended automatically.  Percentiles are estimated as the
    upper bound of the bucket containing the requested rank — coarse but
    monotone, allocation-free, and good enough to rank configurations.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count", "min", "max")

    def __init__(self, name: str, bounds: Sequence[int] = DEFAULT_LATENCY_BUCKETS_NS) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigError(f"histogram {name!r} bounds must be sorted and unique")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow bucket
        self.sum = 0
        self.count = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> int:
        """Upper bound of the bucket holding the p-th quantile (nearest rank)."""
        if not 0.0 < p <= 1.0:
            raise ConfigError(f"percentile {p} outside (0, 1]")
        if self.count == 0:
            return 0
        rank = math.ceil(p * self.count)
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max if self.max is not None else 0
        return self.max if self.max is not None else 0

    def __repr__(self) -> str:
        return f"Histogram({self.name} count={self.count} mean={self.mean:.0f})"


class MetricsRegistry:
    """One deployment's metric namespace: create-or-get typed instruments."""

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, kind: type, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, *args)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, kind):
            raise ConfigError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, bounds: Sequence[int] = DEFAULT_LATENCY_BUCKETS_NS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, bounds)

    def view(self, prefix: str) -> "StatsView":
        return StatsView(self, prefix)

    def metrics(self) -> list[object]:
        return list(self._metrics.values())

    def snapshot(self) -> dict[str, object]:
        """All current values, JSON-friendly, keyed by metric name."""
        out: dict[str, object] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, (Counter, Gauge)):
                out[name] = metric.value
            else:
                out[name] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "mean": metric.mean,
                    "min": metric.min,
                    "max": metric.max,
                    "buckets": dict(zip(metric.bounds, metric.counts)),
                    "overflow": metric.counts[-1],
                }
        return out


class StatsView(MutableMapping):
    """A ``defaultdict(int)``-compatible window onto prefixed counters.

    ``view["x"]`` reads 0 when absent (without registering anything), and
    ``view["x"] += 1`` registers/updates the counter ``<prefix>x`` — so all
    the pre-existing ``stats`` call sites work unchanged while their
    numbers live in the shared registry.
    """

    __slots__ = ("_registry", "_prefix", "_memo")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix
        # Hot-path memo: bare key -> Counter object.  ``stats["x"] += 1``
        # is all over the protocol's per-message path; resolving the
        # prefixed name through the registry costs two dict operations and
        # a type check per access, the memo costs one.  Counter objects
        # are stable once registered (the registry only ever creates
        # them), so a memoized hit reads/writes the same object the slow
        # path would.
        self._memo: dict[str, Counter] = {}

    def __getitem__(self, key: str) -> int:
        if HOTPATH.enabled:
            counter = self._memo.get(key)
            if counter is not None:
                return counter.value
        metric = self._registry._metrics.get(self._prefix + key)
        if isinstance(metric, Counter):
            if HOTPATH.enabled:
                self._memo[key] = metric
            return metric.value
        return 0

    def __setitem__(self, key: str, value: int) -> None:
        if HOTPATH.enabled:
            counter = self._memo.get(key)
            if counter is not None:
                counter.value = value
                return
        counter = self._registry.counter(self._prefix + key)
        counter.value = value
        if HOTPATH.enabled:
            self._memo[key] = counter

    def __delitem__(self, key: str) -> None:
        self._memo.pop(key, None)
        del self._registry._metrics[self._prefix + key]

    def _keys(self) -> list[str]:
        plen = len(self._prefix)
        return [
            name[plen:]
            for name, metric in self._registry._metrics.items()
            if isinstance(metric, Counter) and name.startswith(self._prefix)
        ]

    def __iter__(self) -> Iterator[str]:
        return iter(self._keys())

    def __len__(self) -> int:
        return len(self._keys())

    def __contains__(self, key) -> bool:
        return isinstance(
            self._registry._metrics.get(self._prefix + str(key)), Counter
        )

    def __repr__(self) -> str:
        return f"StatsView({self._prefix!r}: {dict(self)})"
