"""Structured tracing over the simulation's common clock.

The paper's diagnosis method is a "common-clock message log" (section
2.2): every host's events on one timeline, so cause and effect across
machines line up.  The simulator gives us that clock for free; this
module gives the rest of the stack one place to put what happened on it.

Three primitives:

* **spans** — named intervals on a *track* (a host, the network, a
  subsystem), recorded either open/close (:meth:`Tracer.begin` /
  :meth:`Tracer.end`, or the :meth:`Tracer.span` context manager) or with
  both endpoints known (:meth:`Tracer.complete`);
* **instants** — point events (:meth:`Tracer.event`): checkpoints, view
  changes, fsyncs, drops;
* **marks** — request phase boundaries (:meth:`Tracer.mark`), keyed by a
  correlation id ``(client_id, req_id)``; :mod:`repro.obs.phases` turns
  them into the client-send/pre-prepare/prepare/commit/execute/reply
  latency breakdown.

A disabled tracer is free: every method checks ``self.enabled`` first and
returns a module-level sentinel, so the hot path costs one attribute load
and one branch — no event objects, no list growth, no per-request
allocation.  Callers that build argument dicts should guard with
``if tracer.enabled:`` to keep even that off the disabled path.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Optional

KIND_SPAN = "span"
KIND_INSTANT = "instant"
KIND_MARK = "mark"


class TraceEvent:
    """One recorded trace entry (span, instant, or phase mark)."""

    __slots__ = ("kind", "track", "name", "cat", "ts", "dur", "corr", "args")

    def __init__(self, kind, track, name, cat, ts, dur=None, corr=None, args=None):
        self.kind = kind
        self.track = track
        self.name = name
        self.cat = cat
        self.ts = ts            # start time, ns of simulated time
        self.dur = dur          # span duration in ns (None until closed)
        self.corr = corr        # correlation id for marks/async phases
        self.args = args

    @property
    def end(self) -> Optional[int]:
        return None if self.dur is None else self.ts + self.dur

    def __repr__(self) -> str:
        extra = f" dur={self.dur}" if self.dur is not None else ""
        return f"TraceEvent({self.kind} {self.track}/{self.name} ts={self.ts}{extra})"


class _NullSpan:
    """The span a disabled tracer hands out: one shared, inert instance."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<disabled span>"


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects :class:`TraceEvent` records stamped with simulated time."""

    def __init__(
        self,
        clock: Callable[[], int],
        enabled: bool = True,
        limit: int = 2_000_000,
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self.limit = limit
        self.events: list[TraceEvent] = []
        self.dropped = 0  # events discarded once the limit was hit

    # -- recording ----------------------------------------------------------

    def _append(self, event: TraceEvent) -> bool:
        if len(self.events) >= self.limit:
            self.dropped += 1
            return False
        self.events.append(event)
        return True

    def event(self, track: str, name: str, cat: str = "", args: Optional[dict] = None) -> None:
        """Record an instant event at the current simulated time."""
        if not self.enabled:
            return
        self._append(TraceEvent(KIND_INSTANT, track, name, cat, self.clock(), args=args))

    def begin(self, track: str, name: str, cat: str = "", args: Optional[dict] = None):
        """Open a span; close it with :meth:`end`.  Spans on one track may
        nest (begin B inside A, end B before A) — the exporter preserves
        the nesting because children start later and end earlier."""
        if not self.enabled:
            return NULL_SPAN
        event = TraceEvent(KIND_SPAN, track, name, cat, self.clock(), args=args)
        self._append(event)
        return event

    def end(self, span, args: Optional[dict] = None) -> None:
        if span is NULL_SPAN or span is None:
            return
        span.dur = self.clock() - span.ts
        if args:
            span.args = {**(span.args or {}), **args}

    @contextmanager
    def span(self, track: str, name: str, cat: str = "", args: Optional[dict] = None):
        handle = self.begin(track, name, cat, args)
        try:
            yield handle
        finally:
            self.end(handle)

    def complete(
        self,
        track: str,
        name: str,
        start_ns: int,
        end_ns: int,
        cat: str = "",
        corr=None,
        args: Optional[dict] = None,
    ) -> None:
        """Record a span whose endpoints are already known (e.g. a CPU
        interval returned by the host model, or a packet's flight time)."""
        if not self.enabled:
            return
        self._append(
            TraceEvent(
                KIND_SPAN, track, name, cat, start_ns,
                dur=max(0, end_ns - start_ns), corr=corr, args=args,
            )
        )

    def mark(self, corr, boundary: str, track: str = "") -> None:
        """Record a request phase boundary for correlation id ``corr``."""
        if not self.enabled:
            return
        self._append(TraceEvent(KIND_MARK, track, boundary, "phase", self.clock(), corr=corr))

    # -- introspection ------------------------------------------------------

    def spans(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == KIND_SPAN]

    def instants(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == KIND_INSTANT]

    def marks(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == KIND_MARK]

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
