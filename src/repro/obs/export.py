"""Trace exporters: JSONL and Chrome ``trace_event`` JSON.

The Chrome format (one JSON object with a ``traceEvents`` array) opens
directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:

* every *track* (simulated host, the network, subsystems) becomes a
  process with named rows;
* every completed request becomes a row in a synthetic ``requests``
  process, tiled by its six protocol-phase spans — the per-request
  latency breakdown, visually;
* instants (checkpoints, view changes, fsyncs, drops) render as ticks.

Timestamps: the tracer records integer nanoseconds of simulated time;
``trace_event`` wants microseconds, so we emit ``ns / 1000`` as floats
(Perfetto keeps sub-microsecond precision).
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.phases import request_phases
from repro.obs.tracer import KIND_INSTANT, KIND_MARK, KIND_SPAN, Tracer

REQUESTS_TRACK = "requests"


def _jsonable(value):
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


def write_jsonl(tracer: Tracer, path: str) -> int:
    """One JSON object per event, in recording order.  Returns the count."""
    written = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in tracer.events:
            record = {
                "kind": event.kind,
                "track": event.track,
                "name": event.name,
                "ts_ns": event.ts,
            }
            if event.cat:
                record["cat"] = event.cat
            if event.dur is not None:
                record["dur_ns"] = event.dur
            if event.corr is not None:
                record["corr"] = _jsonable(event.corr)
            if event.args:
                record["args"] = _jsonable(event.args)
            fh.write(json.dumps(record) + "\n")
            written += 1
    return written


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """The ``traceEvents`` array: spans, instants, and phase rows."""
    pids: dict[str, int] = {}
    events: list[dict] = []

    def pid_for(track: str) -> int:
        pid = pids.get(track)
        if pid is None:
            pid = len(pids) + 1
            pids[track] = pid
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": track},
                }
            )
        return pid

    for event in tracer.events:
        if event.kind == KIND_MARK:
            continue  # marks surface below, as assembled phase spans
        pid = pid_for(event.track or "untracked")
        base = {
            "name": event.name,
            "cat": event.cat or "general",
            "pid": pid,
            "tid": 0,
            "ts": event.ts / 1000,
        }
        if event.args or event.corr is not None:
            args = dict(_jsonable(event.args) if event.args else {})
            if event.corr is not None:
                args["corr"] = _jsonable(event.corr)
            base["args"] = args
        if event.kind == KIND_SPAN:
            base["ph"] = "X"
            base["dur"] = (event.dur or 0) / 1000
        elif event.kind == KIND_INSTANT:
            base["ph"] = "i"
            base["s"] = "t"
        events.append(base)

    phases = request_phases(tracer)
    if phases:
        pid = pid_for(REQUESTS_TRACK)
        for tid, (corr, spans) in enumerate(sorted(phases.items(), key=str), start=1):
            corr_name = (
                f"client {corr[0]} req {corr[1]}"
                if isinstance(corr, tuple) and len(corr) == 2
                else str(corr)
            )
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": corr_name},
                }
            )
            for phase, start, end in spans:
                events.append(
                    {
                        "ph": "X",
                        "name": phase,
                        "cat": "request-phase",
                        "pid": pid,
                        "tid": tid,
                        "ts": start / 1000,
                        "dur": (end - start) / 1000,
                        "args": {"corr": _jsonable(corr)},
                    }
                )
    return events


def write_chrome_trace(
    tracer: Tracer,
    path: str,
    registry: Optional[MetricsRegistry] = None,
) -> int:
    """Write the Chrome/Perfetto trace file.  Returns the event count.

    When a registry is supplied, its snapshot rides along in ``otherData``
    so a trace file is a self-contained record of the run.
    """
    events = chrome_trace_events(tracer)
    doc: dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    other: dict[str, object] = {"clock": "simulated", "time_unit_in_file": "us"}
    if tracer.dropped:
        other["events_dropped_at_limit"] = tracer.dropped
    if registry is not None:
        other["metrics"] = registry.snapshot()
    doc["otherData"] = other
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(events)
