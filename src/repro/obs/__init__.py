"""repro.obs — unified metrics, tracing, and per-phase latency breakdowns.

One :class:`Observability` object per deployment bundles the two halves:

* a :class:`~repro.obs.metrics.MetricsRegistry` of typed counters, gauges
  and histograms (the replicas' and clients' ``stats`` views live here);
* a :class:`~repro.obs.tracer.Tracer` of spans/instants/phase marks on
  the simulation's common clock, exportable to JSONL or Chrome
  ``trace_event`` JSON (:mod:`repro.obs.export`) for Perfetto.

By default the tracer is *disabled* and adds no per-request work; pass
``Observability(tracing=True)`` (or ``trace_path=`` at the harness level)
to record.  The clock binds when the cluster builder attaches its
simulator, so an Observability can be constructed before the simulation
exists.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.export import chrome_trace_events, write_chrome_trace, write_jsonl
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsView,
    nearest_rank_percentile,
)
from repro.obs.phases import PHASE_NAMES, phase_breakdown, request_phases
from repro.obs.tracer import NULL_SPAN, TraceEvent, Tracer

__all__ = [
    "Observability",
    "MetricsRegistry",
    "StatsView",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "nearest_rank_percentile",
    "Tracer",
    "TraceEvent",
    "NULL_SPAN",
    "PHASE_NAMES",
    "phase_breakdown",
    "request_phases",
    "write_jsonl",
    "write_chrome_trace",
    "chrome_trace_events",
]


class Observability:
    """The registry + tracer pair everything in one deployment shares."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        tracing: bool = False,
        trace_limit: int = 2_000_000,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        if tracer is not None:
            self.tracer = tracer
        else:
            # Clock starts at zero; attach_clock rebinds to the simulator.
            self.tracer = Tracer(lambda: 0, enabled=tracing, limit=trace_limit)

    def attach_clock(self, clock: Callable[[], int]) -> None:
        """Bind the tracer to the deployment's simulated clock."""
        self.tracer.clock = clock

    def write_chrome_trace(self, path: str) -> int:
        return write_chrome_trace(self.tracer, path, registry=self.registry)

    def write_jsonl(self, path: str) -> int:
        return write_jsonl(self.tracer, path)
