"""B+trees over the pager: tables (rowid → record) and indexes (key → rowid).

Classic structure: interior nodes hold separator keys and child pointers,
leaves hold the entries and are chained left-to-right for in-order scans.
Pages are parsed to entry lists on access and re-serialized on change;
oversized leaves/interiors split, pushing a separator up (growing a new
root when the old root splits).  Deletion is lazy — emptied leaves stay in
place until the tree is rebuilt — which keeps the code honest and simple
without affecting correctness.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.common.errors import SqlError
from repro.sqlstate.pager import Pager

_LEAF = 1
_INTERIOR = 2
_LEAF_HEAD = struct.Struct(">BHI")  # type, count, next_leaf
_INT_HEAD = struct.Struct(">BHI")  # type, count, child0
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")


@dataclass
class _Leaf:
    entries: list[tuple[bytes, bytes]]
    next_leaf: int

    def serialize(self, page_size: int) -> Optional[bytes]:
        parts = [_LEAF_HEAD.pack(_LEAF, len(self.entries), self.next_leaf)]
        size = _LEAF_HEAD.size
        for key, value in self.entries:
            size += 2 + len(key) + 4 + len(value)
            if size > page_size:
                return None
            parts.append(_U16.pack(len(key)))
            parts.append(key)
            parts.append(_U32.pack(len(value)))
            parts.append(value)
        raw = b"".join(parts)
        return raw + bytes(page_size - len(raw))


@dataclass
class _Interior:
    child0: int
    entries: list[tuple[bytes, int]]  # (separator key, child covering >= key)

    def serialize(self, page_size: int) -> Optional[bytes]:
        parts = [_INT_HEAD.pack(_INTERIOR, len(self.entries), self.child0)]
        size = _INT_HEAD.size
        for key, child in self.entries:
            size += 2 + len(key) + 4
            if size > page_size:
                return None
            parts.append(_U16.pack(len(key)))
            parts.append(key)
            parts.append(_U32.pack(child))
        raw = b"".join(parts)
        return raw + bytes(page_size - len(raw))


def _parse(raw: bytes):
    kind = raw[0]
    if kind == _LEAF:
        _t, count, next_leaf = _LEAF_HEAD.unpack_from(raw)
        pos = _LEAF_HEAD.size
        entries = []
        for _ in range(count):
            (klen,) = _U16.unpack_from(raw, pos)
            pos += 2
            key = raw[pos : pos + klen]
            pos += klen
            (vlen,) = _U32.unpack_from(raw, pos)
            pos += 4
            value = raw[pos : pos + vlen]
            pos += vlen
            entries.append((bytes(key), bytes(value)))
        return _Leaf(entries=entries, next_leaf=next_leaf)
    if kind == _INTERIOR:
        _t, count, child0 = _INT_HEAD.unpack_from(raw)
        pos = _INT_HEAD.size
        entries = []
        for _ in range(count):
            (klen,) = _U16.unpack_from(raw, pos)
            pos += 2
            key = raw[pos : pos + klen]
            pos += klen
            (child,) = _U32.unpack_from(raw, pos)
            pos += 4
            entries.append((bytes(key), child))
        return _Interior(child0=child0, entries=entries)
    raise SqlError(f"corrupt b-tree page (type byte {kind})")


class BTree:
    """One tree rooted at ``root_page``.

    The root page number is stable for the tree's lifetime (the catalog
    stores it); a root split copies the old root into a fresh page and
    re-roots in place.
    """

    def __init__(self, pager: Pager, root_page: int) -> None:
        self.pager = pager
        self.root_page = root_page

    @classmethod
    def create(cls, pager: Pager) -> "BTree":
        page_no = pager.allocate()
        tree = cls(pager, page_no)
        pager.put(page_no, _Leaf(entries=[], next_leaf=0).serialize(pager.page_size))
        return tree

    def _node(self, page_no: int):
        """Parse a page, going through the pager's parsed-node cache.

        Profiling shows re-parsing pages on every access dominates the
        engine's cost; the cache is gated on the hot-path switch so the
        naive parse-every-time behavior is still reachable.  Write paths
        must call ``pager.forget_node`` *before* mutating a node in place
        (an exception between mutate and store must not leave a stale
        parse cached) and re-register only after a successful store.
        """
        node = self.pager.cached_node(page_no)
        if node is None:
            node = _parse(self.pager.get(page_no))
            self.pager.register_node(page_no, node)
        return node

    # -- lookup ------------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        leaf = self._node(self._find_leaf(key))
        index = self._bisect(leaf.entries, key)
        if index < len(leaf.entries) and leaf.entries[index][0] == key:
            return leaf.entries[index][1]
        return None

    def _find_leaf(self, key: bytes) -> int:
        page_no = self.root_page
        while True:
            node = self._node(page_no)
            if isinstance(node, _Leaf):
                return page_no
            page_no = self._child_for(node, key)

    @staticmethod
    def _child_for(node: _Interior, key: bytes) -> int:
        child = node.child0
        for sep, right in node.entries:
            if key >= sep:
                child = right
            else:
                break
        return child

    @staticmethod
    def _bisect(entries: list[tuple[bytes, bytes]], key: bytes) -> int:
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if entries[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # -- mutation ------------------------------------------------------------------

    def insert(self, key: bytes, value: bytes, replace: bool = True) -> None:
        if len(key) + len(value) + 64 > self.pager.page_size:
            raise SqlError(
                f"entry of {len(key) + len(value)} bytes exceeds the page "
                f"capacity ({self.pager.page_size})"
            )
        split = self._insert_into(self.root_page, key, value, replace)
        if split is not None:
            self._grow_root(split)

    def _insert_into(
        self, page_no: int, key: bytes, value: bytes, replace: bool
    ) -> Optional[tuple[bytes, int]]:
        node = self._node(page_no)
        if isinstance(node, _Leaf):
            index = self._bisect(node.entries, key)
            if index < len(node.entries) and node.entries[index][0] == key:
                if not replace:
                    raise SqlError("duplicate key")
                self.pager.forget_node(page_no)
                node.entries[index] = (key, value)
            else:
                self.pager.forget_node(page_no)
                node.entries.insert(index, (key, value))
            return self._store_leaf(page_no, node)
        child = self._child_for(node, key)
        split = self._insert_into(child, key, value, replace)
        if split is None:
            return None
        sep, right_page = split
        index = 0
        while index < len(node.entries) and node.entries[index][0] < sep:
            index += 1
        self.pager.forget_node(page_no)
        node.entries.insert(index, (sep, right_page))
        return self._store_interior(page_no, node)

    def _store_leaf(self, page_no: int, node: _Leaf) -> Optional[tuple[bytes, int]]:
        raw = node.serialize(self.pager.page_size)
        if raw is not None:
            self.pager.put(page_no, raw)
            self.pager.register_node(page_no, node)
            return None
        # Overflow: split entries in half, link the new right leaf in.
        mid = len(node.entries) // 2
        right = _Leaf(entries=node.entries[mid:], next_leaf=node.next_leaf)
        left = _Leaf(entries=node.entries[:mid], next_leaf=0)
        right_page = self.pager.allocate()
        left.next_leaf = right_page
        right_raw = right.serialize(self.pager.page_size)
        left_raw = left.serialize(self.pager.page_size)
        if right_raw is None or left_raw is None:
            raise SqlError("entry too large to split across pages")
        self.pager.put(right_page, right_raw)
        self.pager.put(page_no, left_raw)
        self.pager.register_node(right_page, right)
        self.pager.register_node(page_no, left)
        return (right.entries[0][0], right_page)

    def _store_interior(
        self, page_no: int, node: _Interior
    ) -> Optional[tuple[bytes, int]]:
        raw = node.serialize(self.pager.page_size)
        if raw is not None:
            self.pager.put(page_no, raw)
            self.pager.register_node(page_no, node)
            return None
        mid = len(node.entries) // 2
        sep, right_child0 = node.entries[mid]
        right = _Interior(child0=right_child0, entries=node.entries[mid + 1 :])
        left = _Interior(child0=node.child0, entries=node.entries[:mid])
        right_page = self.pager.allocate()
        self.pager.put(right_page, right.serialize(self.pager.page_size))
        self.pager.put(page_no, left.serialize(self.pager.page_size))
        self.pager.register_node(right_page, right)
        self.pager.register_node(page_no, left)
        return (sep, right_page)

    def _grow_root(self, split: tuple[bytes, int]) -> None:
        """Re-root in place: move the current root to a new page and make
        the root page an interior node over (old root, new sibling)."""
        sep, right_page = split
        moved = self.pager.allocate()
        self.pager.put(moved, self.pager.get(self.root_page))
        new_root = _Interior(child0=moved, entries=[(sep, right_page)])
        self.pager.put(self.root_page, new_root.serialize(self.pager.page_size))

    def delete(self, key: bytes) -> bool:
        page_no = self._find_leaf(key)
        node = self._node(page_no)
        index = self._bisect(node.entries, key)
        if index >= len(node.entries) or node.entries[index][0] != key:
            return False
        self.pager.forget_node(page_no)
        del node.entries[index]
        raw = node.serialize(self.pager.page_size)
        self.pager.put(page_no, raw)
        self.pager.register_node(page_no, node)
        return True

    # -- iteration -------------------------------------------------------------------

    def scan(self, start_key: Optional[bytes] = None) -> Iterator[tuple[bytes, bytes]]:
        """Yield (key, value) in key order, starting at ``start_key``."""
        if start_key is None:
            page_no = self._leftmost_leaf()
            index = 0
        else:
            page_no = self._find_leaf(start_key)
            node = self._node(page_no)
            index = self._bisect(node.entries, start_key)
        while page_no:
            node = self._node(page_no)
            for position in range(index, len(node.entries)):
                yield node.entries[position]
            page_no = node.next_leaf
            index = 0

    def scan_prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        for key, value in self.scan(start_key=prefix):
            if not key.startswith(prefix):
                return
            yield key, value

    def scan_range(
        self, low: Optional[bytes], high: Optional[bytes]
    ) -> Iterator[tuple[bytes, bytes]]:
        """Yield entries with ``low <= key``, stopping once keys pass
        ``high`` (prefix-inclusive: a key extending ``high`` still
        matches, which is how index entries carry a rowid suffix).

        Both bounds are *inclusive* at the encoded-key level by design:
        the numeric key encoding is monotone but not injective (large
        integers collapse onto floats), so strict bounds must be
        enforced by the caller re-checking decoded values, never by
        skipping encoded keys.
        """
        for key, value in self.scan(start_key=low):
            if high is not None and key > high and not key.startswith(high):
                return
            yield key, value

    def _leftmost_leaf(self) -> int:
        page_no = self.root_page
        while True:
            node = self._node(page_no)
            if isinstance(node, _Leaf):
                return page_no
            page_no = node.child0

    def last_key(self) -> Optional[bytes]:
        """The maximum key (used for rowid assignment)."""
        page_no = self.root_page
        while True:
            node = self._node(page_no)
            if isinstance(node, _Interior):
                page_no = node.entries[-1][1] if node.entries else node.child0
                continue
            if node.entries:
                return node.entries[-1][0]
            # Lazy deletion can leave an empty rightmost leaf; fall back to
            # a full scan of the (rare) degenerate tree.
            best = None
            for key, _value in self.scan():
                best = key
            return best

    def count(self) -> int:
        return sum(1 for _ in self.scan())
