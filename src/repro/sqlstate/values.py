"""SQL values: storage classes, comparison and coercion.

Follows SQLite's model: five storage classes (NULL, INTEGER, REAL, TEXT,
BLOB) with cross-class comparison ordered NULL < numbers < text < blob,
and column *type affinity* coercing inserted values.
"""

from __future__ import annotations

from typing import Union

from repro.common.errors import SqlError


class _Null:
    """Singleton SQL NULL (distinct from Python None in user data)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False


SqlNull = _Null()

SqlValue = Union[_Null, int, float, str, bytes]

# Storage class ranks for cross-class ordering.
_RANK_NULL = 0
_RANK_NUMBER = 1
_RANK_TEXT = 2
_RANK_BLOB = 3


def storage_rank(value: SqlValue) -> int:
    if value is SqlNull:
        return _RANK_NULL
    if isinstance(value, bool):
        return _RANK_NUMBER
    if isinstance(value, (int, float)):
        return _RANK_NUMBER
    if isinstance(value, str):
        return _RANK_TEXT
    if isinstance(value, bytes):
        return _RANK_BLOB
    raise SqlError(f"unsupported value type {type(value).__name__}")


def compare(a: SqlValue, b: SqlValue) -> int:
    """Three-way compare with SQLite's cross-class ordering.

    NULLs compare equal to each other here (useful for ORDER BY); the
    executor handles NULL semantics for WHERE separately.
    """
    ra, rb = storage_rank(a), storage_rank(b)
    if ra != rb:
        return -1 if ra < rb else 1
    if ra == _RANK_NULL:
        return 0
    if a < b:  # type: ignore[operator]
        return -1
    if a > b:  # type: ignore[operator]
        return 1
    return 0


def is_truthy(value: SqlValue) -> bool:
    """SQL boolean context: NULL and 0 are false."""
    if value is SqlNull:
        return False
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        try:
            return float(value) != 0
        except ValueError:
            return False
    return bool(value)


# -- type affinity -------------------------------------------------------------

AFF_INTEGER = "INTEGER"
AFF_REAL = "REAL"
AFF_TEXT = "TEXT"
AFF_BLOB = "BLOB"
AFF_NUMERIC = "NUMERIC"


def affinity_of(declared_type: str) -> str:
    """SQLite's affinity rules, abridged."""
    upper = declared_type.upper()
    if "INT" in upper:
        return AFF_INTEGER
    if any(token in upper for token in ("CHAR", "CLOB", "TEXT")):
        return AFF_TEXT
    if "BLOB" in upper or not upper:
        return AFF_BLOB
    if any(token in upper for token in ("REAL", "FLOA", "DOUB")):
        return AFF_REAL
    return AFF_NUMERIC


def apply_affinity(value: SqlValue, affinity: str) -> SqlValue:
    """Coerce ``value`` per column affinity on insert/update."""
    if value is SqlNull or isinstance(value, bytes):
        return value
    if isinstance(value, float) and value != value:
        # SQLite stores NaN as NULL.  This also keeps NaN out of index
        # keys, where its incomparability would break ordered scans.
        return SqlNull
    if affinity == AFF_INTEGER or affinity == AFF_NUMERIC:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                as_float = float(value)
            except ValueError:
                return value
            return int(as_float) if as_float.is_integer() else as_float
        return value
    if affinity == AFF_REAL:
        if isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                return value
        return value
    if affinity == AFF_TEXT:
        if isinstance(value, (int, float)):
            return format_value(value)
        return value
    return value


def format_value(value: SqlValue) -> str:
    """Render a value the way SQLite's text conversion would."""
    if value is SqlNull:
        return "NULL"
    if isinstance(value, float):
        text = repr(value)
        return text
    if isinstance(value, bytes):
        return value.hex()
    return str(value)
