"""Scalar and aggregate SQL functions.

The non-deterministic ones (``random``, ``randomblob``, ``now``,
``current_timestamp``) route through the
:class:`~repro.sqlstate.vfs.VfsEnvironment` hooks, which inside a replica
are seeded from the primary's agreed non-determinism data — the paper's
re-implementation of SQLite's OS-dependent functions over PBFT up-calls
(section 3.2, Figure 3).
"""

from __future__ import annotations

from repro.common.errors import SqlError
from repro.sqlstate.values import SqlNull, compare, format_value, is_truthy


def call_scalar(name: str, args: list, env) -> object:
    handler = _SCALARS.get(name)
    if handler is None:
        raise SqlError(f"no such function: {name}")
    return handler(args, env)


def _fn_length(args, env):
    (value,) = args
    if value is SqlNull:
        return SqlNull
    if isinstance(value, bytes):
        return len(value)
    return len(format_value(value)) if not isinstance(value, str) else len(value)


def _fn_upper(args, env):
    (value,) = args
    return value.upper() if isinstance(value, str) else value


def _fn_lower(args, env):
    (value,) = args
    return value.lower() if isinstance(value, str) else value


def _fn_abs(args, env):
    (value,) = args
    if value is SqlNull:
        return SqlNull
    if isinstance(value, (int, float)):
        return abs(value)
    raise SqlError("abs() requires a numeric argument")


def _fn_coalesce(args, env):
    for value in args:
        if value is not SqlNull:
            return value
    return SqlNull

def _fn_ifnull(args, env):
    if len(args) != 2:
        raise SqlError("ifnull() takes exactly 2 arguments")
    return _fn_coalesce(args, env)


def _fn_hex(args, env):
    (value,) = args
    if value is SqlNull:
        return SqlNull
    if isinstance(value, bytes):
        return value.hex().upper()
    return format_value(value).encode().hex().upper()


def _fn_substr(args, env):
    if len(args) not in (2, 3):
        raise SqlError("substr() takes 2 or 3 arguments")
    text = args[0]
    if text is SqlNull:
        return SqlNull
    if not isinstance(text, (str, bytes)):
        text = format_value(text)
    start = int(args[1])
    length = int(args[2]) if len(args) == 3 else None
    # SQL substr is 1-based; negative counts from the end.
    if start > 0:
        begin = start - 1
    elif start < 0:
        begin = max(0, len(text) + start)
    else:
        begin = 0
    end = len(text) if length is None else begin + max(0, length)
    return text[begin:end]


def _fn_typeof(args, env):
    (value,) = args
    if value is SqlNull:
        return "null"
    if isinstance(value, bool) or isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "real"
    if isinstance(value, str):
        return "text"
    return "blob"


def _fn_min_scalar(args, env):
    present = [a for a in args if a is not SqlNull]
    if not present:
        return SqlNull
    best = present[0]
    for value in present[1:]:
        if compare(value, best) < 0:
            best = value
    return best


def _fn_max_scalar(args, env):
    present = [a for a in args if a is not SqlNull]
    if not present:
        return SqlNull
    best = present[0]
    for value in present[1:]:
        if compare(value, best) > 0:
            best = value
    return best


def _fn_random(args, env):
    raw = env.random_bytes(8)
    return int.from_bytes(raw, "big", signed=True)


def _fn_randomblob(args, env):
    (count,) = args
    return env.random_bytes(max(0, int(count)))


def _fn_now(args, env):
    """Agreed 'current time' in nanoseconds since the epoch."""
    return env.current_time_ns()


_SCALARS = {
    "length": _fn_length,
    "upper": _fn_upper,
    "lower": _fn_lower,
    "abs": _fn_abs,
    "coalesce": _fn_coalesce,
    "ifnull": _fn_ifnull,
    "hex": _fn_hex,
    "substr": _fn_substr,
    "typeof": _fn_typeof,
    "min": _fn_min_scalar,
    "max": _fn_max_scalar,
    "random": _fn_random,
    "randomblob": _fn_randomblob,
    "now": _fn_now,
    "current_timestamp": _fn_now,
}

NONDETERMINISTIC_FUNCTIONS = frozenset(
    {"random", "randomblob", "now", "current_timestamp"}
)


class Aggregate:
    """Incremental aggregate state."""

    def __init__(self, name: str, distinct: bool = False) -> None:
        if name not in AGGREGATE_NAMES:
            raise SqlError(f"no such aggregate: {name}")
        self.name = name
        self.distinct = distinct
        self._seen: set = set()
        self.count = 0
        self.total = 0.0
        self.total_is_int = True
        self.best = None

    def step(self, value) -> None:
        if value is SqlNull and self.name != "count_star":
            return
        if self.distinct:
            marker = value if not isinstance(value, bytes) else (b"b", value)
            if marker in self._seen:
                return
            self._seen.add(marker)
        self.count += 1
        if self.name in ("sum", "avg", "total"):
            if not isinstance(value, (int, float)):
                raise SqlError(f"{self.name}() on non-numeric value")
            if isinstance(value, float):
                self.total_is_int = False
            self.total += value
        elif self.name == "min":
            if self.best is None or compare(value, self.best) < 0:
                self.best = value
        elif self.name == "max":
            if self.best is None or compare(value, self.best) > 0:
                self.best = value

    def result(self):
        if self.name in ("count", "count_star"):
            return self.count
        if self.name == "sum":
            if self.count == 0:
                return SqlNull
            return int(self.total) if self.total_is_int else self.total
        if self.name == "total":
            return float(self.total)
        if self.name == "avg":
            return SqlNull if self.count == 0 else self.total / self.count
        if self.name in ("min", "max"):
            return SqlNull if self.best is None else self.best
        raise SqlError(f"no such aggregate: {self.name}")


AGGREGATE_NAMES = frozenset({"count", "count_star", "sum", "avg", "min", "max", "total"})


def is_aggregate_call(name: str, arg_count: int) -> bool:
    """min/max with one argument are aggregates; with several, scalars."""
    if name in ("count", "sum", "avg", "total"):
        return True
    if name in ("min", "max") and arg_count <= 1:
        return True
    return False


def like_match(pattern: str, text: str) -> bool:
    """SQL LIKE with % and _, case-insensitive for ASCII (as SQLite)."""
    def match(p: int, t: int) -> bool:
        while p < len(pattern):
            ch = pattern[p]
            if ch == "%":
                # Collapse consecutive %.
                while p + 1 < len(pattern) and pattern[p + 1] == "%":
                    p += 1
                if p == len(pattern) - 1:
                    return True
                for skip in range(len(text) - t + 1):
                    if match(p + 1, t + skip):
                        return True
                return False
            if t >= len(text):
                return False
            if ch != "_" and pattern[p].lower() != text[t].lower():
                return False
            p += 1
            t += 1
        return t == len(text)

    return match(0, 0)
