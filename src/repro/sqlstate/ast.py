"""Statement and expression AST nodes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


# -- expressions ----------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: object  # SqlValue


@dataclass(frozen=True)
class Parameter:
    index: int  # 0-based position into the params tuple


@dataclass(frozen=True)
class ColumnRef:
    name: str
    table: Optional[str] = None


@dataclass(frozen=True)
class Unary:
    op: str  # "-", "+", "NOT"
    operand: object


@dataclass(frozen=True)
class Binary:
    op: str  # "=", "<", "AND", "+", "||", "LIKE", ...
    left: object
    right: object


@dataclass(frozen=True)
class IsNull:
    operand: object
    negated: bool = False


@dataclass(frozen=True)
class InList:
    operand: object
    items: tuple
    negated: bool = False


@dataclass(frozen=True)
class Between:
    operand: object
    low: object
    high: object
    negated: bool = False


@dataclass(frozen=True)
class InSelect:
    """``expr IN (SELECT ...)`` — non-correlated subqueries only."""

    operand: object
    select: object  # a Select statement
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery:
    """``(SELECT ...)`` as an expression: first column of the first row."""

    select: object


@dataclass(frozen=True)
class Exists:
    """``EXISTS (SELECT ...)``."""

    select: object
    negated: bool = False


@dataclass(frozen=True)
class FunctionCall:
    name: str  # lower-cased
    args: tuple
    star: bool = False  # COUNT(*)
    distinct: bool = False


@dataclass(frozen=True)
class CaseExpr:
    operand: Optional[object]  # CASE x WHEN ... vs CASE WHEN ...
    whens: tuple  # of (condition/compare-value, result)
    default: Optional[object]


# -- statements ------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDef:
    name: str
    declared_type: str
    primary_key: bool = False
    not_null: bool = False
    unique: bool = False
    default: Optional[object] = None  # expression


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateIndex:
    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTable:
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class DropIndex:
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class AlterTableAddColumn:
    table: str
    column: ColumnDef


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]  # empty = all columns in order
    rows: tuple[tuple, ...]  # tuples of expressions


@dataclass(frozen=True)
class SelectItem:
    expr: object
    alias: Optional[str] = None
    star: bool = False
    star_table: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None


@dataclass(frozen=True)
class Join:
    left: object  # TableRef | Join
    right: TableRef
    on: Optional[object]  # expression; None = cross join
    kind: str = "INNER"  # INNER | LEFT | CROSS


@dataclass(frozen=True)
class OrderItem:
    expr: object
    descending: bool = False


@dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]
    source: Optional[object]  # TableRef | Join | None (SELECT 1+1)
    where: Optional[object] = None
    group_by: tuple = ()
    having: Optional[object] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[object] = None
    offset: Optional[object] = None
    distinct: bool = False


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, object], ...]
    where: Optional[object] = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[object] = None


@dataclass(frozen=True)
class Explain:
    """``EXPLAIN <statement>``: describe the plan instead of running it."""

    statement: object


@dataclass(frozen=True)
class Begin:
    pass


@dataclass(frozen=True)
class Commit:
    pass


@dataclass(frozen=True)
class Rollback:
    pass
