"""The virtual file system layer (paper section 3.2, Figure 3).

SQLite's VFS is the abstraction the paper hooks to interpose PBFT: "By
hooking into this subsystem, we not only can manage memory mapping and
perform PBFT-required memory modification notifications, but also
re-implement non-deterministic functions, such as system time and random
values, by using the upcalls."

Three file backends:

* :class:`MemoryVfsFile` — plain bytes in memory (tests, No-ACID mode);
* :class:`DiskModel` + :class:`MemoryVfsFile` — a simulated local disk
  that charges fsync latency and supports crash semantics (unsynced
  writes are lost), used for the rollback journal;
* :class:`StateRegionVfsFile` — the database file mapped onto the PBFT
  state region: every write issues the required modify() notification.
  The file is a fixed-size *sparse* region, exactly the paper's answer to
  PBFT needing the state size up front.

:class:`VfsEnvironment` carries the non-determinism hooks: inside a PBFT
execution up-call they return the primary's agreed timestamp and a
deterministic PRNG seeded from it.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Optional

from repro.common.errors import SqlError, StateError


class VfsFile:
    """Abstract random-access file."""

    def read(self, offset: int, length: int) -> bytes:
        raise NotImplementedError

    def write(self, offset: int, data: bytes) -> None:
        raise NotImplementedError

    def truncate(self, size: int) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        """Durably flush (fsync)."""

    def size(self) -> int:
        raise NotImplementedError


class DiskModel:
    """Cost/crash model shared by the files of one simulated disk.

    ``charge(ns)`` is the hook the PBFT application uses to add simulated
    time; ``sync`` latency dominates the ACID-vs-No-ACID experiment (the
    paper's 534 vs 1155 TPS).
    """

    def __init__(
        self,
        charge: Optional[Callable[[int], None]] = None,
        sync_ns: int = 1_000_000,
        write_ns_per_page: int = 12_000,
    ) -> None:
        self.charge = charge or (lambda ns: None)
        self.sync_ns = sync_ns
        self.write_ns_per_page = write_ns_per_page
        self.syncs = 0
        self.writes = 0
        # Optional observability hook: called as observer(kind, cost_ns)
        # for every disk operation ("sync" or "write").
        self.observer: Optional[Callable[[str, int], None]] = None

    def on_write(self, length: int) -> None:
        self.writes += 1
        self.charge(self.write_ns_per_page)
        if self.observer is not None:
            self.observer("write", self.write_ns_per_page)

    def on_sync(self) -> None:
        self.syncs += 1
        self.charge(self.sync_ns)
        if self.observer is not None:
            self.observer("sync", self.sync_ns)


class MemoryVfsFile(VfsFile):
    """A byte-buffer file with optional disk semantics.

    With a :class:`DiskModel`, writes land in an unsynced overlay;
    :meth:`sync` makes them durable and :meth:`crash` discards whatever
    was not synced — enough to test that the rollback journal really
    delivers the D in ACID.
    """

    def __init__(self, disk: Optional[DiskModel] = None) -> None:
        self._durable = bytearray()
        self._volatile: Optional[bytearray] = None
        self.disk = disk

    def _buffer(self) -> bytearray:
        if self.disk is None:
            return self._durable
        if self._volatile is None:
            self._volatile = bytearray(self._durable)
        return self._volatile

    def read(self, offset: int, length: int) -> bytes:
        buf = self._volatile if self._volatile is not None else self._durable
        return bytes(buf[offset : offset + length])

    def write(self, offset: int, data: bytes) -> None:
        buf = self._buffer()
        end = offset + len(data)
        if end > len(buf):
            buf.extend(b"\0" * (end - len(buf)))
        buf[offset:end] = data
        if self.disk is not None:
            self.disk.on_write(len(data))

    def truncate(self, size: int) -> None:
        buf = self._buffer()
        del buf[size:]

    def sync(self) -> None:
        if self.disk is not None:
            self.disk.on_sync()
            if self._volatile is not None:
                self._durable = bytearray(self._volatile)
                self._volatile = None

    def size(self) -> int:
        buf = self._volatile if self._volatile is not None else self._durable
        return len(buf)

    def crash(self) -> None:
        """Power failure: unsynced writes evaporate."""
        self._volatile = None


class StateRegionVfsFile(VfsFile):
    """The database file mapped into the PBFT state region.

    Reads and writes go straight to the
    :class:`~repro.statemgr.pages.PagedState` application partition, with
    the library's modify() notification issued before every write — the
    exact contract the paper's VFS shim implements.  The "file" is a
    fixed-size sparse region: growth just uses more of it.
    """

    def __init__(self, state, app_offset: int) -> None:
        self.state = state
        self.app_offset = app_offset
        self.capacity = state.size - app_offset
        if self.capacity <= 0:
            raise SqlError("state region leaves no room for a database file")
        self._logical_size = 0

    def read(self, offset: int, length: int) -> bytes:
        self._check(offset, length)
        return self.state.read(self.app_offset + offset, length)

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        try:
            self.state.modify(self.app_offset + offset, len(data))
            self.state.write(self.app_offset + offset, data)
        except StateError as exc:
            raise SqlError(f"state-region write failed: {exc}") from exc
        self._logical_size = max(self._logical_size, offset + len(data))

    def truncate(self, size: int) -> None:
        # Sparse region: just shrink the logical size; data beyond it is
        # never read back.
        self._logical_size = min(self._logical_size, size)

    def sync(self) -> None:
        """The state region *is* memory; PBFT checkpointing handles
        durability (and the paper notes the database file is synchronized
        with its disk image on commit — modelled by the journal's disk)."""

    def size(self) -> int:
        return self._logical_size

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or offset + length > self.capacity:
            raise SqlError(
                f"I/O beyond the sparse state file (offset {offset}, "
                f"length {length}, capacity {self.capacity})"
            )


class VfsEnvironment:
    """Non-determinism hooks: time and randomness.

    Outside PBFT these default to a fixed epoch and a zero-seeded PRNG;
    inside a replica, the application sets them per request from the
    pre-prepare's agreed non-determinism data (section 2.5), so every
    replica computes identical "current time" and "random" values.
    """

    def __init__(self) -> None:
        self._now_ns = 0
        self._random_seed = b"\0" * 16
        self._random_counter = 0

    def set_from_nondet(self, now_ns: int, seed: bytes) -> None:
        self._now_ns = now_ns
        self._random_seed = seed
        self._random_counter = 0

    def current_time_ns(self) -> int:
        return self._now_ns

    def random_bytes(self, count: int) -> bytes:
        out = b""
        while len(out) < count:
            block = hashlib.md5(
                self._random_seed + self._random_counter.to_bytes(8, "big")
            ).digest()
            self._random_counter += 1
            out += block
        return out[:count]
