"""Statement execution: expression evaluation, planning, DML/queries."""

from __future__ import annotations

from functools import cmp_to_key
from typing import Iterator, Optional

from repro.common.errors import SqlConstraintError, SqlError
from repro.common.hotpath import HOTPATH
from repro.sqlstate import ast, planner
from repro.sqlstate.btree import BTree
from repro.sqlstate.catalog import Catalog, Index, Table
from repro.sqlstate.functions import (
    Aggregate,
    call_scalar,
    is_aggregate_call,
    like_match,
)
from repro.sqlstate.records import (
    decode_record,
    decode_rowid,
    encode_key,
    encode_record,
    encode_rowid,
)
from repro.sqlstate.values import (
    SqlNull,
    apply_affinity,
    compare,
    format_value,
    is_truthy,
)


class RowContext:
    """Column bindings for one candidate row (or joined row tuple)."""

    __slots__ = ("qualified", "names")

    def __init__(self) -> None:
        self.qualified: dict[tuple[str, str], object] = {}
        self.names: dict[str, list[tuple[str, str]]] = {}

    def bind_table(self, alias: str, table: Table, rowid: int, row: list) -> None:
        alias_l = alias.lower()
        self.qualified[(alias_l, "rowid")] = rowid
        self.names.setdefault("rowid", []).append((alias_l, "rowid"))
        for position, col in enumerate(table.columns):
            # Rows written before an ALTER TABLE ADD COLUMN are shorter
            # than the schema; missing trailing columns read as defaults.
            value = row[position] if position < len(row) else col.default
            key = (alias_l, col.name.lower())
            self.qualified[key] = value
            self.names.setdefault(col.name.lower(), []).append(key)

    def bind_nulls(self, alias: str, table: Table) -> None:
        alias_l = alias.lower()
        self.qualified[(alias_l, "rowid")] = SqlNull
        self.names.setdefault("rowid", []).append((alias_l, "rowid"))
        for col in table.columns:
            key = (alias_l, col.name.lower())
            self.qualified[key] = SqlNull
            self.names.setdefault(col.name.lower(), []).append(key)

    def lookup(self, name: str, table: Optional[str]) -> object:
        if table is not None:
            key = (table.lower(), name.lower())
            if key not in self.qualified:
                raise SqlError(f"no such column: {table}.{name}")
            return self.qualified[key]
        keys = self.names.get(name.lower())
        if not keys:
            raise SqlError(f"no such column: {name}")
        if len(keys) > 1:
            raise SqlError(f"ambiguous column name: {name}")
        return self.qualified[keys[0]]

    def merged_with(self, other: "RowContext") -> "RowContext":
        out = RowContext()
        out.qualified.update(self.qualified)
        out.qualified.update(other.qualified)
        for name, keys in self.names.items():
            out.names.setdefault(name, []).extend(keys)
        for name, keys in other.names.items():
            out.names.setdefault(name, []).extend(keys)
        return out


_EMPTY_CTX = RowContext()


class Executor:
    """Executes parsed statements against the catalog and pager."""

    def __init__(self, catalog: Catalog, env) -> None:
        self.catalog = catalog
        self.pager = catalog.pager
        self.env = env
        self.rows_scanned = 0
        self.rows_written = 0
        self.index_lookups = 0
        # Per-statement memo for non-correlated subqueries: each runs once
        # no matter how many candidate rows consult it.
        self._subquery_cache: dict[int, object] = {}
        # Access-path/join plans memoized per AST node.  Entries hold a
        # strong reference to the node (id() alone could be reused after
        # GC) and are revalidated against the live catalog objects.
        self._plan_memo: dict = {}

    def begin_statement(self) -> None:
        """Reset per-statement state (subquery memoization).

        A *fresh* dict, not ``clear()``: the engine's plan cache shares
        AST nodes across executions, so ``id(select)`` keys recur — any
        aliasing of a previous execution's dict must not leak its rows.
        """
        self._subquery_cache = {}

    # ==== expression evaluation =====================================================

    def eval(self, expr, ctx: RowContext, params, agg: Optional[dict] = None):
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Parameter):
            if expr.index >= len(params):
                raise SqlError(
                    f"statement requires parameter {expr.index + 1}, "
                    f"got {len(params)}"
                )
            return _normalize_param(params[expr.index])
        if isinstance(expr, ast.ColumnRef):
            return ctx.lookup(expr.name, expr.table)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, ctx, params, agg)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, ctx, params, agg)
        if isinstance(expr, ast.IsNull):
            value = self.eval(expr.operand, ctx, params, agg)
            result = value is SqlNull
            return int(result != expr.negated)
        if isinstance(expr, ast.InList):
            return self._eval_in(expr, ctx, params, agg)
        if isinstance(expr, ast.Between):
            value = self.eval(expr.operand, ctx, params, agg)
            low = self.eval(expr.low, ctx, params, agg)
            high = self.eval(expr.high, ctx, params, agg)
            if SqlNull in (value, low, high):
                return SqlNull
            inside = compare(value, low) >= 0 and compare(value, high) <= 0
            return int(inside != expr.negated)
        if isinstance(expr, ast.FunctionCall):
            if agg is not None and id(expr) in agg:
                return agg[id(expr)]
            if is_aggregate_call(expr.name, len(expr.args)) and not expr.star:
                raise SqlError(f"misplaced aggregate {expr.name}()")
            if expr.star:
                raise SqlError("COUNT(*) outside an aggregate context")
            args = [self.eval(a, ctx, params, agg) for a in expr.args]
            return call_scalar(expr.name, args, self.env)
        if isinstance(expr, ast.CaseExpr):
            return self._eval_case(expr, ctx, params, agg)
        if isinstance(expr, ast.InSelect):
            value = self.eval(expr.operand, ctx, params, agg)
            if value is SqlNull:
                return SqlNull
            rows = self._subquery_rows(expr.select, params)
            saw_null = False
            for row in rows:
                candidate = row[0]
                if candidate is SqlNull:
                    saw_null = True
                    continue
                if compare(value, candidate) == 0:
                    return int(not expr.negated)
            if saw_null:
                return SqlNull
            return int(expr.negated)
        if isinstance(expr, ast.ScalarSubquery):
            rows = self._subquery_rows(expr.select, params)
            return rows[0][0] if rows else SqlNull
        if isinstance(expr, ast.Exists):
            rows = self._subquery_rows(expr.select, params)
            return int(bool(rows) != expr.negated)
        raise SqlError(f"cannot evaluate expression node {type(expr).__name__}")

    def _subquery_rows(self, select, params) -> list[tuple]:
        """Run a non-correlated subquery once and memoize its rows."""
        cached = self._subquery_cache.get(id(select))
        if cached is None:
            _columns, cached = self.select(select, params, nested=True)
            self._subquery_cache[id(select)] = cached
        return cached

    def _eval_unary(self, expr, ctx, params, agg):
        value = self.eval(expr.operand, ctx, params, agg)
        if expr.op == "NOT":
            if value is SqlNull:
                return SqlNull
            return int(not is_truthy(value))
        if value is SqlNull:
            return SqlNull
        if not isinstance(value, (int, float)):
            raise SqlError(f"unary {expr.op} on non-numeric value")
        return -value if expr.op == "-" else value

    def _eval_binary(self, expr, ctx, params, agg):
        op = expr.op
        if op in ("AND", "OR"):
            left = self.eval(expr.left, ctx, params, agg)
            # Three-valued logic with short-circuiting.
            if op == "AND":
                if left is not SqlNull and not is_truthy(left):
                    return 0
                right = self.eval(expr.right, ctx, params, agg)
                if right is not SqlNull and not is_truthy(right):
                    return 0
                if left is SqlNull or right is SqlNull:
                    return SqlNull
                return 1
            if left is not SqlNull and is_truthy(left):
                return 1
            right = self.eval(expr.right, ctx, params, agg)
            if right is not SqlNull and is_truthy(right):
                return 1
            if left is SqlNull or right is SqlNull:
                return SqlNull
            return 0
        left = self.eval(expr.left, ctx, params, agg)
        right = self.eval(expr.right, ctx, params, agg)
        if op == "||":
            if left is SqlNull or right is SqlNull:
                return SqlNull
            return _as_text(left) + _as_text(right)
        if op == "LIKE":
            if left is SqlNull or right is SqlNull:
                return SqlNull
            return int(like_match(_as_text(right), _as_text(left)))
        if op in ("=", "!=", "<", "<=", ">", ">="):
            if left is SqlNull or right is SqlNull:
                return SqlNull
            cmp = compare(left, right)
            return int(
                {"=": cmp == 0, "!=": cmp != 0, "<": cmp < 0,
                 "<=": cmp <= 0, ">": cmp > 0, ">=": cmp >= 0}[op]
            )
        # Arithmetic.
        if left is SqlNull or right is SqlNull:
            return SqlNull
        if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
            raise SqlError(f"operator {op} requires numeric operands")
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return SqlNull  # SQLite yields NULL on division by zero
            result = left / right
            if isinstance(left, int) and isinstance(right, int):
                return int(left // right) if left % right == 0 else left // right
            return result
        if op == "%":
            if right == 0:
                return SqlNull
            return left % right
        raise SqlError(f"unknown operator {op}")

    def _eval_in(self, expr, ctx, params, agg):
        value = self.eval(expr.operand, ctx, params, agg)
        if value is SqlNull:
            return SqlNull
        saw_null = False
        for item in expr.items:
            candidate = self.eval(item, ctx, params, agg)
            if candidate is SqlNull:
                saw_null = True
                continue
            if compare(value, candidate) == 0:
                return int(not expr.negated)
        if saw_null:
            return SqlNull
        return int(expr.negated)

    def _eval_case(self, expr, ctx, params, agg):
        if expr.operand is not None:
            subject = self.eval(expr.operand, ctx, params, agg)
            for when, then in expr.whens:
                candidate = self.eval(when, ctx, params, agg)
                if (
                    subject is not SqlNull
                    and candidate is not SqlNull
                    and compare(subject, candidate) == 0
                ):
                    return self.eval(then, ctx, params, agg)
        else:
            for when, then in expr.whens:
                condition = self.eval(when, ctx, params, agg)
                if condition is not SqlNull and is_truthy(condition):
                    return self.eval(then, ctx, params, agg)
        if expr.default is not None:
            return self.eval(expr.default, ctx, params, agg)
        return SqlNull

    def eval_literal(self, expr):
        """Constant-fold an expression with no row context (defaults)."""
        return self.eval(expr, _EMPTY_CTX, ())

    # ==== DML =======================================================================

    def insert(self, stmt: ast.Insert, params) -> int:
        self.begin_statement()
        table = self.catalog.table(stmt.table)
        tree = BTree(self.pager, table.root_page)
        if stmt.columns:
            positions = [table.column_index(c) for c in stmt.columns]
        else:
            positions = list(range(len(table.columns)))
        inserted = 0
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(positions):
                raise SqlError(
                    f"{len(positions)} columns but {len(row_exprs)} values"
                )
            values = [col.default for col in table.columns]
            for pos, expr in zip(positions, row_exprs):
                values[pos] = self.eval(expr, _EMPTY_CTX, params)
            self._insert_row(table, tree, values)
            inserted += 1
        self.catalog.note_rows(table, inserted)
        return inserted

    def _insert_row(self, table: Table, tree: BTree, values: list) -> int:
        for i, col in enumerate(table.columns):
            values[i] = apply_affinity(values[i], col.affinity)
        rowid = self._assign_rowid(table, tree, values)
        for i, col in enumerate(table.columns):
            if values[i] is SqlNull and col.not_null and i != table.rowid_alias:
                raise SqlConstraintError(
                    f"NOT NULL constraint failed: {table.name}.{col.name}"
                )
        self._check_unique_indexes(table, values, exclude_rowid=None)
        tree.insert(encode_rowid(rowid), encode_record(values), replace=False)
        for index in table.indexes:
            self._index_tree(index).insert(
                self._index_key(index, table, values, rowid),
                encode_rowid(rowid),
            )
        self.rows_written += 1
        return rowid

    def _assign_rowid(self, table: Table, tree: BTree, values: list) -> int:
        alias = table.rowid_alias
        if alias is not None and values[alias] is not SqlNull:
            value = values[alias]
            if not isinstance(value, int):
                raise SqlConstraintError(
                    f"datatype mismatch: {table.name}.{table.columns[alias].name} "
                    "must be an integer"
                )
            if tree.get(encode_rowid(value)) is not None:
                raise SqlConstraintError(
                    f"UNIQUE constraint failed: {table.name}."
                    f"{table.columns[alias].name}"
                )
            return value
        last = tree.last_key()
        rowid = 1 if last is None else decode_rowid(last) + 1
        if alias is not None:
            values[alias] = rowid
        return rowid

    def _check_unique_indexes(self, table, values, exclude_rowid) -> None:
        for index in table.indexes:
            if not index.unique:
                continue
            key_values = [values[table.column_index(c)] for c in index.columns]
            if any(v is SqlNull for v in key_values):
                continue  # SQL: NULLs never collide in unique indexes
            prefix = encode_key(key_values)
            for key, value in self._index_tree(index).scan_prefix(prefix):
                existing_rowid = decode_rowid(value)
                if exclude_rowid is not None and existing_rowid == exclude_rowid:
                    continue
                raise SqlConstraintError(
                    f"UNIQUE constraint failed: {table.name}"
                    f"({', '.join(index.columns)})"
                )

    def _index_tree(self, index: Index) -> BTree:
        return BTree(self.pager, index.root_page)

    def _index_key(self, index: Index, table: Table, values, rowid: int) -> bytes:
        key_values = [values[table.column_index(c)] for c in index.columns]
        return encode_key(key_values) + encode_rowid(rowid)

    def update(self, stmt: ast.Update, params) -> int:
        self.begin_statement()
        table = self.catalog.table(stmt.table)
        tree = BTree(self.pager, table.root_page)
        assignments = [
            (table.column_index(name), expr) for name, expr in stmt.assignments
        ]
        changed = 0
        # Materialize candidates first: mutating while scanning is unsafe.
        victims = list(self._candidates(table, table.name, stmt.where, params))
        for rowid, row, ctx in victims:
            if stmt.where is not None:
                verdict = self.eval(stmt.where, ctx, params)
                if verdict is SqlNull or not is_truthy(verdict):
                    continue
            new_values = list(row)
            for position, expr in assignments:
                value = self.eval(expr, ctx, params)
                new_values[position] = apply_affinity(
                    value, table.columns[position].affinity
                )
            for i, col in enumerate(table.columns):
                if new_values[i] is SqlNull and col.not_null:
                    raise SqlConstraintError(
                        f"NOT NULL constraint failed: {table.name}.{col.name}"
                    )
            new_rowid = rowid
            if table.rowid_alias is not None:
                alias_value = new_values[table.rowid_alias]
                if not isinstance(alias_value, int):
                    raise SqlConstraintError("rowid must remain an integer")
                new_rowid = alias_value
            self._check_unique_indexes(table, new_values, exclude_rowid=rowid)
            if new_rowid != rowid and tree.get(encode_rowid(new_rowid)) is not None:
                raise SqlConstraintError(f"UNIQUE constraint failed: {table.name}")
            for index in table.indexes:
                self._index_tree(index).delete(
                    self._index_key(index, table, row, rowid)
                )
            if new_rowid != rowid:
                tree.delete(encode_rowid(rowid))
            tree.insert(encode_rowid(new_rowid), encode_record(new_values))
            for index in table.indexes:
                self._index_tree(index).insert(
                    self._index_key(index, table, new_values, new_rowid),
                    encode_rowid(new_rowid),
                )
            changed += 1
            self.rows_written += 1
        return changed

    def delete(self, stmt: ast.Delete, params) -> int:
        self.begin_statement()
        table = self.catalog.table(stmt.table)
        tree = BTree(self.pager, table.root_page)
        victims = []
        for rowid, row, ctx in self._candidates(table, table.name, stmt.where, params):
            if stmt.where is not None:
                verdict = self.eval(stmt.where, ctx, params)
                if verdict is SqlNull or not is_truthy(verdict):
                    continue
            victims.append((rowid, row))
        for rowid, row in victims:
            tree.delete(encode_rowid(rowid))
            for index in table.indexes:
                self._index_tree(index).delete(
                    self._index_key(index, table, row, rowid)
                )
            self.rows_written += 1
        self.catalog.note_rows(table, -len(victims))
        return len(victims)

    # ==== planning & row sources =====================================================

    def _candidates(
        self, table: Table, alias: str, where, params
    ) -> Iterator[tuple[int, list, RowContext]]:
        """Rows possibly matching ``where``: an index equality probe when
        one applies, else a full scan.  The WHERE clause is still
        re-checked by the caller."""
        if HOTPATH.enabled:
            plan = self._scan_plan(table, alias, where)
            yield from self._plan_candidates(plan, table, alias, params)
            return
        tree = BTree(self.pager, table.root_page)
        probe = self._find_index_probe(table, where, params)
        if probe is not None:
            index, value = probe
            self.index_lookups += 1
            prefix = encode_key([value])
            for _key, stored in self._index_tree(index).scan_prefix(prefix):
                rowid = decode_rowid(stored)
                raw = tree.get(encode_rowid(rowid))
                if raw is None:
                    continue  # index ahead of table within this statement
                row = self._pad_row(table, decode_record(raw))
                ctx = RowContext()
                ctx.bind_table(alias, table, rowid, row)
                self.rows_scanned += 1
                yield rowid, row, ctx
            return
        rowid_probe = self._find_rowid_probe(table, where, params)
        if rowid_probe is not None:
            raw = tree.get(encode_rowid(rowid_probe))
            if raw is not None:
                row = self._pad_row(table, decode_record(raw))
                ctx = RowContext()
                ctx.bind_table(alias, table, rowid_probe, row)
                self.rows_scanned += 1
                yield rowid_probe, row, ctx
            return
        for key, raw in tree.scan():
            rowid = decode_rowid(key)
            row = self._pad_row(table, decode_record(raw))
            ctx = RowContext()
            ctx.bind_table(alias, table, rowid, row)
            self.rows_scanned += 1
            yield rowid, row, ctx

    @staticmethod
    def _pad_row(table: Table, row: list) -> list:
        """Rows stored before an ALTER TABLE ADD COLUMN are shorter than
        the schema; pad with the added columns' defaults."""
        if len(row) < len(table.columns):
            row = row + [col.default for col in table.columns[len(row):]]
        return row

    def _find_index_probe(self, table: Table, where, params):
        """WHERE col = <constant> with a single-column index on col."""
        pair = self._equality_pair(table, where, params)
        if pair is None:
            return None
        column, value = pair
        for index in table.indexes:
            if len(index.columns) == 1 and index.columns[0].lower() == column:
                return index, value
        return None

    def _find_rowid_probe(self, table: Table, where, params):
        pair = self._equality_pair(table, where, params, rowid_only=True)
        if pair is None:
            return None
        _column, value = pair
        return value if isinstance(value, int) else None

    def _equality_pair(self, table: Table, where, params, rowid_only: bool = False):
        if not isinstance(where, ast.Binary) or where.op != "=":
            return None
        column_side, const_side = where.left, where.right
        if not isinstance(column_side, ast.ColumnRef):
            column_side, const_side = const_side, column_side
        if not isinstance(column_side, ast.ColumnRef):
            return None
        if not isinstance(const_side, (ast.Literal, ast.Parameter)):
            return None
        name = column_side.name.lower()
        if rowid_only:
            is_rowid = name == "rowid" or (
                table.rowid_alias is not None
                and table.columns[table.rowid_alias].name.lower() == name
            )
            if not is_rowid:
                return None
        value = self.eval(const_side, _EMPTY_CTX, params)
        if value is SqlNull:
            return None
        return name, value

    # ==== cost-based row sources (hot path) ==========================================

    def _scan_plan(self, table: Table, alias: str, where) -> "planner.ScanPlan":
        # Validity needs the schema version, not just object identity:
        # in-memory DDL (CREATE/DROP INDEX) mutates the Table in place, so
        # a memoized plan could otherwise survive the very DDL that should
        # change it.
        key = (id(where), table.name.lower(), alias.lower())
        entry = self._plan_memo.get(key)
        if (
            entry is not None
            and entry[0] is where
            and entry[1] is table
            and entry[3] == self.pager.schema_version
        ):
            return entry[2]
        plan = planner.plan_scan(self.catalog, table, alias, where)
        if len(self._plan_memo) >= 1024:
            self._plan_memo.clear()
        self._plan_memo[key] = (where, table, plan, self.pager.schema_version)
        return plan

    def _plan_candidates(
        self, plan: "planner.ScanPlan", table: Table, alias: str, params
    ) -> Iterator[tuple[int, list, RowContext]]:
        """Execute an access plan.  Any bound value the plan cannot probe
        with (NULL, NaN, a non-integer rowid) degrades to the full scan —
        exactly what the naive path does in those cases, so results *and*
        counters stay identical."""
        tree = BTree(self.pager, table.root_page)
        if plan.method == "rowid-eq":
            value = self.eval(plan.eq_expr, _EMPTY_CTX, params)
            if isinstance(value, int):
                raw = tree.get(encode_rowid(value))
                if raw is not None:
                    yield self._make_candidate(table, alias, value, raw)
                return
        elif plan.method == "index-eq":
            index = self.catalog.indexes.get(plan.index.lower())
            value = self.eval(plan.eq_expr, _EMPTY_CTX, params)
            usable = (
                index is not None
                and value is not SqlNull
                and not (isinstance(value, float) and value != value)
            )
            if usable:
                self.index_lookups += 1
                prefix = encode_key([value])
                for _key, stored in self._index_tree(index).scan_prefix(prefix):
                    rowid = decode_rowid(stored)
                    raw = tree.get(encode_rowid(rowid))
                    if raw is None:
                        continue  # index ahead of table within this statement
                    yield self._make_candidate(table, alias, rowid, raw)
                return
        elif plan.method == "index-range":
            index = self.catalog.indexes.get(plan.index.lower())
            low = high = None
            usable = index is not None
            if usable and plan.low is not None:
                low = self.eval(plan.low, _EMPTY_CTX, params)
                usable = low is not SqlNull and not (
                    isinstance(low, float) and low != low
                )
            if usable and plan.high is not None:
                high = self.eval(plan.high, _EMPTY_CTX, params)
                usable = high is not SqlNull and not (
                    isinstance(high, float) and high != high
                )
            if usable:
                # Inclusive encoded bounds; strictness is enforced by the
                # caller's WHERE re-check on decoded values (the numeric
                # key encoding is monotone but not injective, so skipping
                # boundary-equal keys could drop true matches).
                low_key = None if plan.low is None else encode_key([low])
                high_key = None if plan.high is None else encode_key([high])
                self.index_lookups += 1
                rowids = [
                    decode_rowid(stored)
                    for _key, stored in self._index_tree(index).scan_range(
                        low_key, high_key
                    )
                ]
                # Emit in rowid order — the order a full scan would use —
                # so downstream results are bit-identical to the naive path.
                rowids.sort()
                for rowid in rowids:
                    raw = tree.get(encode_rowid(rowid))
                    if raw is None:
                        continue
                    yield self._make_candidate(table, alias, rowid, raw)
                return
        for key, raw in tree.scan():
            yield self._make_candidate(table, alias, decode_rowid(key), raw)

    def _make_candidate(
        self, table: Table, alias: str, rowid: int, raw: bytes
    ) -> tuple[int, list, RowContext]:
        row = self._pad_row(table, decode_record(raw))
        ctx = RowContext()
        ctx.bind_table(alias, table, rowid, row)
        self.rows_scanned += 1
        return rowid, row, ctx

    def _join_plan(self, join: ast.Join) -> "planner.JoinStepPlan":
        key = (id(join), "join")
        entry = self._plan_memo.get(key)
        if (
            entry is not None
            and entry[0] is join
            and entry[1] == self.pager.schema_version
        ):
            return entry[2]
        plan = planner.plan_join_step(
            self.catalog, join, planner.estimate_source_rows(self.catalog, join.left)
        )
        if len(self._plan_memo) >= 1024:
            self._plan_memo.clear()
        self._plan_memo[key] = (join, self.pager.schema_version, plan)
        return plan

    def _join_left_iter(self, join: ast.Join, params) -> Iterator[RowContext]:
        if isinstance(join.left, ast.TableRef):
            return self._source_rows(join.left, None, params)
        return self._join_rows(join.left, params)

    def _merged_ctx(
        self, left_ctx: RowContext, right_alias: str, right_table: Table,
        rowid, row,
    ) -> RowContext:
        ctx = RowContext()
        ctx.qualified.update(left_ctx.qualified)
        for name, keys in left_ctx.names.items():
            ctx.names[name] = list(keys)
        if row is None:
            ctx.bind_nulls(right_alias, right_table)
        else:
            ctx.bind_table(right_alias, right_table, rowid, row)
        return ctx

    def _hash_join(
        self, join: ast.Join, plan: "planner.JoinStepPlan", params
    ) -> Iterator[RowContext]:
        """Equi-join via a build/probe hash table.

        The build side is scanned exactly once in rowid order (the same
        ``rows_scanned`` as the naive materialization) and each bucket
        keeps that order, so the emitted rows — after the full ON clause
        is re-evaluated per candidate — are identical to the naive
        nested loop's output, in the same order.
        """
        right_table = self.catalog.table(join.right.name)
        right_alias = join.right.alias or join.right.name
        position = (
            None if plan.right_is_rowid
            else right_table.column_index(plan.right_column)
        )
        right_rows: list[tuple[int, list]] = []
        buckets: dict[object, list[tuple[int, list]]] = {}
        nan_on_build = False
        for rowid, row, _ctx in self._candidates(
            right_table, right_alias, None, params
        ):
            right_rows.append((rowid, row))
            value = rowid if position is None else row[position]
            if isinstance(value, float) and value != value:
                # A stored NaN compares equal to every number in this
                # engine; hashing cannot honor that, so latch the whole
                # join back to the nested loop.
                nan_on_build = True
            elif value is not SqlNull:
                buckets.setdefault(_hashable(value), []).append((rowid, row))
        for left_ctx in self._join_left_iter(join, params):
            if nan_on_build:
                candidates: list = right_rows
            else:
                probe = self.eval(plan.left_expr, left_ctx, params)
                if isinstance(probe, float) and probe != probe:
                    candidates = right_rows  # NaN probe: consult everything
                elif probe is SqlNull:
                    candidates = []
                else:
                    candidates = buckets.get(_hashable(probe), [])
            matched = False
            for rowid, row in candidates:
                ctx = self._merged_ctx(left_ctx, right_alias, right_table, rowid, row)
                verdict = self.eval(join.on, ctx, params)
                if verdict is SqlNull or not is_truthy(verdict):
                    continue
                matched = True
                yield ctx
            if join.kind == "LEFT" and not matched:
                yield self._merged_ctx(left_ctx, right_alias, right_table, None, None)

    def _index_join(
        self, join: ast.Join, plan: "planner.JoinStepPlan", params
    ) -> Iterator[RowContext]:
        """Index nested-loop: probe the right side per left row instead of
        materializing it.  Candidates come out of the index in rowid order
        and the full ON clause is re-checked, so results match the naive
        loop exactly (the probe is a superset filter, never a decider)."""
        right_table = self.catalog.table(join.right.name)
        right_alias = join.right.alias or join.right.name
        tree = BTree(self.pager, right_table.root_page)
        index = (
            None if plan.right_is_rowid
            else self.catalog.indexes.get(plan.index.lower())
        )
        if index is None and not plan.right_is_rowid:
            # The index vanished under a memoized plan; degrade to hash
            # semantics-free materialization (the nested loop).
            yield from self._nested_join(join, params)
            return
        for left_ctx in self._join_left_iter(join, params):
            probe = self.eval(plan.left_expr, left_ctx, params)
            candidates: list[tuple[int, list]] = []
            if isinstance(probe, float) and probe != probe:
                # NaN: equal to every number under compare(); scan all.
                candidates = [
                    (rowid, row)
                    for rowid, row, _ctx in self._candidates(
                        right_table, right_alias, None, params
                    )
                ]
            elif probe is SqlNull:
                candidates = []
            elif plan.right_is_rowid:
                rowid_probe = None
                if isinstance(probe, int):
                    rowid_probe = probe
                elif isinstance(probe, float) and probe.is_integer():
                    rowid_probe = int(probe)
                if rowid_probe is not None:
                    raw = tree.get(encode_rowid(rowid_probe))
                    if raw is not None:
                        row = self._pad_row(right_table, decode_record(raw))
                        self.rows_scanned += 1
                        candidates = [(rowid_probe, row)]
            elif isinstance(probe, (int, float, str, bytes)):
                self.index_lookups += 1
                for _key, stored in self._index_tree(index).scan_prefix(
                    encode_key([probe])
                ):
                    rowid = decode_rowid(stored)
                    raw = tree.get(encode_rowid(rowid))
                    if raw is None:
                        continue
                    candidates.append(
                        (rowid, self._pad_row(right_table, decode_record(raw)))
                    )
                    self.rows_scanned += 1
            matched = False
            for rowid, row in candidates:
                ctx = self._merged_ctx(left_ctx, right_alias, right_table, rowid, row)
                verdict = self.eval(join.on, ctx, params)
                if verdict is SqlNull or not is_truthy(verdict):
                    continue
                matched = True
                yield ctx
            if join.kind == "LEFT" and not matched:
                yield self._merged_ctx(left_ctx, right_alias, right_table, None, None)

    def _source_rows(self, source, where, params) -> Iterator[RowContext]:
        if source is None:
            yield RowContext()
            return
        if isinstance(source, ast.TableRef):
            table = self.catalog.table(source.name)
            alias = source.alias or source.name
            # Only push the WHERE down for a plain single-table source.
            for _rowid, _row, ctx in self._candidates(table, alias, where, params):
                yield ctx
            return
        if isinstance(source, ast.Join):
            yield from self._join_rows(source, params)
            return
        raise SqlError(f"unsupported FROM clause {type(source).__name__}")

    def _join_rows(self, join: ast.Join, params) -> Iterator[RowContext]:
        if HOTPATH.enabled:
            plan = self._join_plan(join)
            if plan.strategy == "hash":
                yield from self._hash_join(join, plan, params)
                return
            if plan.strategy == "index":
                yield from self._index_join(join, plan, params)
                return
        yield from self._nested_join(join, params)

    def _nested_join(self, join: ast.Join, params) -> Iterator[RowContext]:
        right_table = self.catalog.table(join.right.name)
        right_alias = join.right.alias or join.right.name
        if isinstance(join.left, ast.TableRef):
            left_iter = self._source_rows(join.left, None, params)
        else:
            left_iter = self._join_rows(join.left, params)
        right_rows = [
            (rowid, row)
            for rowid, row, _ctx in self._candidates(right_table, right_alias, None, params)
        ]
        for left_ctx in left_iter:
            matched = False
            for rowid, row in right_rows:
                ctx = RowContext()
                ctx.qualified.update(left_ctx.qualified)
                for name, keys in left_ctx.names.items():
                    ctx.names[name] = list(keys)
                ctx.bind_table(right_alias, right_table, rowid, row)
                if join.on is not None:
                    verdict = self.eval(join.on, ctx, params)
                    if verdict is SqlNull or not is_truthy(verdict):
                        continue
                matched = True
                yield ctx
            if join.kind == "LEFT" and not matched:
                ctx = RowContext()
                ctx.qualified.update(left_ctx.qualified)
                for name, keys in left_ctx.names.items():
                    ctx.names[name] = list(keys)
                ctx.bind_nulls(right_alias, right_table)
                yield ctx

    # ==== SELECT ======================================================================

    def select(
        self, stmt: ast.Select, params, nested: bool = False
    ) -> tuple[list[str], list[tuple]]:
        if not nested:
            self.begin_statement()
        items = self._expand_stars(stmt)
        having = _resolve_aliases(stmt.having, items) if stmt.having is not None else None
        agg_nodes = []
        for item in items:
            _collect_aggregates(item.expr, agg_nodes)
        for order in stmt.order_by:
            _collect_aggregates(order.expr, agg_nodes)
        if having is not None:
            _collect_aggregates(having, agg_nodes)
        # The same node can be referenced from several places (an aliased
        # item reused by HAVING/ORDER BY); step each aggregate once per row.
        seen_ids = set()
        agg_nodes = [
            n for n in agg_nodes if id(n) not in seen_ids and not seen_ids.add(id(n))
        ]
        is_aggregate = bool(agg_nodes) or bool(stmt.group_by)

        columns = [self._column_label(item, i) for i, item in enumerate(items)]
        self._validate_column_refs(stmt, items)

        source_where = stmt.where if isinstance(stmt.source, ast.TableRef) else None
        rows_in = self._source_rows(stmt.source, source_where, params)

        def passes_where(ctx: RowContext) -> bool:
            if stmt.where is None:
                return True
            verdict = self.eval(stmt.where, ctx, params)
            return verdict is not SqlNull and is_truthy(verdict)

        results: list[tuple[tuple, RowContext, Optional[dict]]] = []
        if not is_aggregate:
            for ctx in rows_in:
                if not passes_where(ctx):
                    continue
                row = tuple(self.eval(item.expr, ctx, params) for item in items)
                results.append((row, ctx, None))
        else:
            groups: dict[tuple, tuple[RowContext, dict]] = {}
            for ctx in rows_in:
                if not passes_where(ctx):
                    continue
                group_key = tuple(
                    _hashable(self.eval(g, ctx, params)) for g in stmt.group_by
                )
                if group_key not in groups:
                    groups[group_key] = (
                        ctx,
                        {
                            id(node): Aggregate(
                                "count_star" if node.star else node.name,
                                distinct=node.distinct,
                            )
                            for node in agg_nodes
                        },
                    )
                _ctx, aggs = groups[group_key]
                for node in agg_nodes:
                    state = aggs[id(node)]
                    if node.star:
                        state.step(1)
                    else:
                        state.step(self.eval(node.args[0], ctx, params))
            if not groups and not stmt.group_by:
                # Aggregate over an empty set still yields one row.
                groups[()] = (
                    RowContext(),
                    {
                        id(node): Aggregate(
                            "count_star" if node.star else node.name,
                            distinct=node.distinct,
                        )
                        for node in agg_nodes
                    },
                )
            for _group_key, (ctx, aggs) in groups.items():
                agg_values = {key: state.result() for key, state in aggs.items()}
                if having is not None:
                    verdict = self.eval(having, ctx, params, agg_values)
                    if verdict is SqlNull or not is_truthy(verdict):
                        continue
                row = tuple(
                    self.eval(item.expr, ctx, params, agg_values) for item in items
                )
                results.append((row, ctx, agg_values))

        if stmt.order_by:
            def cmp_rows(a, b):
                for order in stmt.order_by:
                    va = self._order_value(order, a, items, params)
                    vb = self._order_value(order, b, items, params)
                    c = compare(va, vb)
                    if c:
                        return -c if order.descending else c
                return 0

            results.sort(key=cmp_to_key(cmp_rows))

        rows = [row for row, _ctx, _agg in results]
        if stmt.distinct:
            seen = set()
            unique = []
            for row in rows:
                marker = tuple(_hashable(v) for v in row)
                if marker in seen:
                    continue
                seen.add(marker)
                unique.append(row)
            rows = unique
        offset = 0
        if stmt.offset is not None:
            offset = int(self.eval(stmt.offset, _EMPTY_CTX, params))
        if stmt.limit is not None:
            limit = int(self.eval(stmt.limit, _EMPTY_CTX, params))
            rows = rows[offset : offset + limit] if limit >= 0 else rows[offset:]
        elif offset:
            rows = rows[offset:]
        return columns, rows

    def _order_value(self, order, result_entry, items, params):
        row, ctx, agg_values = result_entry
        # ORDER BY <n> refers to the n-th select item (1-based).
        if isinstance(order.expr, ast.Literal) and isinstance(order.expr.value, int):
            position = order.expr.value
            if 1 <= position <= len(row):
                return row[position - 1]
        # ORDER BY <alias> refers to a select item by its output name.
        if isinstance(order.expr, ast.ColumnRef) and order.expr.table is None:
            wanted = order.expr.name.lower()
            for i, item in enumerate(items):
                if item.alias is not None and item.alias.lower() == wanted:
                    return row[i]
        return self.eval(order.expr, ctx, params, agg_values)

    def _expand_stars(self, stmt: ast.Select) -> list[ast.SelectItem]:
        items: list[ast.SelectItem] = []
        for item in stmt.items:
            if not item.star:
                items.append(item)
                continue
            for alias, table in self._source_tables(stmt.source):
                if item.star_table is not None and alias.lower() != item.star_table.lower():
                    continue
                for col in table.columns:
                    items.append(
                        ast.SelectItem(
                            expr=ast.ColumnRef(name=col.name, table=alias),
                            alias=col.name,
                        )
                    )
        if not items:
            raise SqlError("SELECT list is empty after * expansion")
        return items

    def _source_tables(self, source) -> list[tuple[str, Table]]:
        if source is None:
            return []
        if isinstance(source, ast.TableRef):
            return [(source.alias or source.name, self.catalog.table(source.name))]
        if isinstance(source, ast.Join):
            return self._source_tables(source.left) + [
                (source.right.alias or source.right.name, self.catalog.table(source.right.name))
            ]
        return []

    def _validate_column_refs(self, stmt: ast.Select, items) -> None:
        """Reject unknown column names at statement level (like SQLite's
        prepare step), so an empty table still reports the error."""
        tables = self._source_tables(stmt.source)
        known: set[str] = {"rowid"}
        qualified: set[tuple[str, str]] = set()
        for alias, table in tables:
            qualified.add((alias.lower(), "rowid"))
            for col in table.columns:
                known.add(col.name.lower())
                qualified.add((alias.lower(), col.name.lower()))
        aliases = {
            item.alias.lower() for item in items if item.alias is not None
        }

        refs: list[ast.ColumnRef] = []

        def walk(expr) -> None:
            if isinstance(expr, ast.ColumnRef):
                refs.append(expr)
            elif isinstance(expr, ast.Binary):
                walk(expr.left)
                walk(expr.right)
            elif isinstance(expr, ast.Unary):
                walk(expr.operand)
            elif isinstance(expr, ast.IsNull):
                walk(expr.operand)
            elif isinstance(expr, ast.InList):
                walk(expr.operand)
                for entry in expr.items:
                    walk(entry)
            elif isinstance(expr, ast.Between):
                walk(expr.operand)
                walk(expr.low)
                walk(expr.high)
            elif isinstance(expr, ast.FunctionCall):
                for arg in expr.args:
                    walk(arg)
            elif isinstance(expr, ast.CaseExpr):
                if expr.operand is not None:
                    walk(expr.operand)
                for when, then in expr.whens:
                    walk(when)
                    walk(then)
                if expr.default is not None:
                    walk(expr.default)
            elif isinstance(expr, ast.InSelect):
                walk(expr.operand)
                # The subquery's own columns are validated when it runs.

        for item in items:
            walk(item.expr)
        if stmt.where is not None:
            walk(stmt.where)
        for group in stmt.group_by:
            walk(group)
        if stmt.having is not None:
            walk(stmt.having)
        for order in stmt.order_by:
            walk(order.expr)
        for ref in refs:
            if ref.table is not None:
                if (ref.table.lower(), ref.name.lower()) not in qualified:
                    raise SqlError(f"no such column: {ref.table}.{ref.name}")
            elif ref.name.lower() not in known and ref.name.lower() not in aliases:
                raise SqlError(f"no such column: {ref.name}")

    @staticmethod
    def _column_label(item: ast.SelectItem, position: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.ColumnRef):
            return item.expr.name
        return f"column{position + 1}"


def _resolve_aliases(expr, items):
    """Rewrite unqualified column refs that name a select-item alias to the
    item's expression (SQLite allows aliases in HAVING and ORDER BY)."""
    if isinstance(expr, ast.ColumnRef) and expr.table is None:
        for item in items:
            if item.alias is not None and item.alias.lower() == expr.name.lower():
                return item.expr
        return expr
    if isinstance(expr, ast.Binary):
        return ast.Binary(expr.op, _resolve_aliases(expr.left, items),
                          _resolve_aliases(expr.right, items))
    if isinstance(expr, ast.Unary):
        return ast.Unary(expr.op, _resolve_aliases(expr.operand, items))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(_resolve_aliases(expr.operand, items), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(
            _resolve_aliases(expr.operand, items),
            tuple(_resolve_aliases(i, items) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, ast.Between):
        return ast.Between(
            _resolve_aliases(expr.operand, items),
            _resolve_aliases(expr.low, items),
            _resolve_aliases(expr.high, items),
            expr.negated,
        )
    return expr


def _collect_aggregates(expr, out: list) -> None:
    if isinstance(expr, ast.FunctionCall):
        if expr.star or is_aggregate_call(expr.name, len(expr.args)):
            out.append(expr)
            return
        for arg in expr.args:
            _collect_aggregates(arg, out)
        return
    if isinstance(expr, ast.Binary):
        _collect_aggregates(expr.left, out)
        _collect_aggregates(expr.right, out)
    elif isinstance(expr, ast.Unary):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, ast.IsNull):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, ast.InList):
        _collect_aggregates(expr.operand, out)
        for item in expr.items:
            _collect_aggregates(item, out)
    elif isinstance(expr, ast.Between):
        _collect_aggregates(expr.operand, out)
        _collect_aggregates(expr.low, out)
        _collect_aggregates(expr.high, out)
    elif isinstance(expr, ast.CaseExpr):
        if expr.operand is not None:
            _collect_aggregates(expr.operand, out)
        for when, then in expr.whens:
            _collect_aggregates(when, out)
            _collect_aggregates(then, out)
        if expr.default is not None:
            _collect_aggregates(expr.default, out)
    elif isinstance(expr, ast.InSelect):
        _collect_aggregates(expr.operand, out)


def _normalize_param(value):
    if value is None:
        return SqlNull
    if isinstance(value, float) and value != value:
        return SqlNull  # NaN binds as NULL, matching storage affinity
    if isinstance(value, (int, float, str, bytes)):
        return value
    if isinstance(value, bool):
        return int(value)
    raise SqlError(f"unsupported parameter type {type(value).__name__}")


def _as_text(value) -> str:
    return value if isinstance(value, str) else format_value(value)


def _hashable(value):
    return (b"b", value) if isinstance(value, bytes) else value
