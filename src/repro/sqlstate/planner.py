"""Cost-based access-path and join planning.

The executor's naive row sources — full scan, plus an index probe for a
bare top-level ``col = const`` — stay in place as the reference
implementation (and run verbatim with the hot-path switch off).  This
module chooses *narrower candidate sets* for the same statements:

* AND-conjunctions in WHERE are decomposed, so any one conjunct can
  drive an index equality probe or an index **range** scan;
* rowid lookups short-circuit to a direct page fetch;
* multi-table joins pick hash join or index nested-loop over the naive
  materialize-and-scan nested loop, guided by table/index statistics
  from the catalog.

Every plan is result-identical to the naive path by construction: a plan
only selects *candidate rows*; the full WHERE / ON expression is always
re-evaluated against each candidate by the executor, and candidates are
always produced in rowid order (range scans sort their matches, hash
buckets preserve build order), which is exactly the naive scan order.
Cost estimates therefore only ever change *how much work* is done, never
the answer.

Plans reference tables and indexes by name, never by object: the
executor validates a memoized plan against the live catalog objects and
replans after any schema change (DDL bumps the schema version and
rebuilds the catalog).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sqlstate import ast
from repro.sqlstate.catalog import Catalog, Table

# Cost constants.  Units are "rows touched"; the fixed overheads make the
# ordering stable on tiny/empty tables (a probe must beat a seq scan even
# at row_count == 0, because the naive path also probes bare equalities
# and metric parity with it is part of the differential contract).
_PROBE_OVERHEAD = 1.5
_SEQ_OVERHEAD = 2.5
_RANGE_SELECTIVITY = 4  # assume a range keeps ~1/4 of the rows
_NONUNIQUE_DISTINCT_DIVISOR = 10  # distinct-key estimate for non-unique indexes


# -- plan nodes -------------------------------------------------------------------


@dataclass
class ScanPlan:
    """Access path for one table occurrence."""

    table: str
    alias: str
    method: str  # "seq" | "rowid-eq" | "index-eq" | "index-range"
    index: Optional[str] = None  # index name for index-eq / index-range
    column: Optional[str] = None  # probed column (lower), for EXPLAIN
    eq_expr: object = None  # Literal/Parameter for rowid-eq / index-eq
    low: object = None  # Literal/Parameter lower bound (inclusive scan)
    low_strict: bool = False
    high: object = None
    high_strict: bool = False
    est_rows: float = 0.0


@dataclass
class JoinStepPlan:
    """Strategy for joining one more table onto the accumulated left side."""

    right_table: str
    right_alias: str
    kind: str  # INNER | LEFT | CROSS
    strategy: str  # "nested" | "hash" | "index"
    # For hash/index: the equi-condition  right_col = left_expr.
    left_expr: object = None  # expression over left-side columns
    right_column: Optional[str] = None  # build/probe column (lower)
    right_is_rowid: bool = False
    index: Optional[str] = None  # right-side index for "index" strategy


@dataclass
class SelectPlan:
    """Top-level shape of a SELECT, for EXPLAIN and the executor."""

    scan: Optional[ScanPlan] = None  # single-table source
    base: Optional[ScanPlan] = None  # leftmost table of a join tree
    joins: list[JoinStepPlan] = field(default_factory=list)


# -- WHERE decomposition ----------------------------------------------------------


def split_conjuncts(expr) -> list:
    """Flatten a tree of AND into its conjuncts (empty for None)."""
    if expr is None:
        return []
    out: list = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Binary) and node.op == "AND":
            stack.append(node.right)
            stack.append(node.left)
        else:
            out.append(node)
    # Stack order reverses; restore source order for deterministic plans.
    return out[::-1] if len(out) > 1 else out


def _is_const(expr) -> bool:
    return isinstance(expr, (ast.Literal, ast.Parameter))


def _column_for(expr, table: Table, alias: str) -> Optional[str]:
    """The lower-cased column name if ``expr`` is a reference to a column
    of this table occurrence (including ``rowid``), else None."""
    if not isinstance(expr, ast.ColumnRef):
        return None
    if expr.table is not None and expr.table.lower() != alias.lower():
        return None
    name = expr.name.lower()
    if name == "rowid":
        return name
    for col in table.columns:
        if col.name.lower() == name:
            return name
    return None


def _is_rowid_column(table: Table, column: str) -> bool:
    if column == "rowid":
        return True
    return (
        table.rowid_alias is not None
        and table.columns[table.rowid_alias].name.lower() == column
    )


def extract_predicates(table: Table, alias: str, where):
    """Split WHERE into (equalities, range bounds) usable for planning.

    Returns ``(eq, ranges)`` where ``eq`` maps column -> const expr and
    ``ranges`` maps column -> [low, low_strict, high, high_strict]
    (bounds are const exprs or None).  Only the first usable predicate
    per column/side is kept; everything is re-checked at execution.
    """
    eq: dict[str, object] = {}
    ranges: dict[str, list] = {}

    def bound(column: str, expr, op: str) -> None:
        entry = ranges.setdefault(column, [None, False, None, False])
        if op in (">", ">="):
            if entry[0] is None:
                entry[0], entry[1] = expr, op == ">"
        else:
            if entry[2] is None:
                entry[2], entry[3] = expr, op == "<"

    _FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
    for conj in split_conjuncts(where):
        if isinstance(conj, ast.Binary) and conj.op == "=":
            column_side, const_side = conj.left, conj.right
            if not isinstance(column_side, ast.ColumnRef):
                column_side, const_side = const_side, column_side
            column = _column_for(column_side, table, alias)
            if column is not None and _is_const(const_side):
                eq.setdefault(column, const_side)
            continue
        if isinstance(conj, ast.Binary) and conj.op in ("<", "<=", ">", ">="):
            column = _column_for(conj.left, table, alias)
            if column is not None and _is_const(conj.right):
                bound(column, conj.right, conj.op)
                continue
            column = _column_for(conj.right, table, alias)
            if column is not None and _is_const(conj.left):
                bound(column, conj.left, _FLIP[conj.op])
            continue
        if isinstance(conj, ast.Between) and not conj.negated:
            column = _column_for(conj.operand, table, alias)
            if column is not None and _is_const(conj.low) and _is_const(conj.high):
                bound(column, conj.low, ">=")
                bound(column, conj.high, "<=")
    return eq, ranges


def _single_column_index(table: Table, column: str):
    """First single-column index on ``column`` — the same pick order as
    the naive probe, so plans mirror it exactly on bare equalities."""
    for index in table.indexes:
        if len(index.columns) == 1 and index.columns[0].lower() == column:
            return index
    return None


# -- access-path selection --------------------------------------------------------


def plan_scan(catalog: Catalog, table: Table, alias: str, where) -> ScanPlan:
    """Pick the cheapest access path for one table occurrence."""
    stats = catalog.stats(table)
    rows = stats.row_count
    eq, ranges = extract_predicates(table, alias, where)

    best = ScanPlan(
        table=table.name, alias=alias, method="seq",
        est_rows=float(rows),
    )
    best_cost = rows + _SEQ_OVERHEAD

    for column, expr in eq.items():
        if _is_rowid_column(table, column):
            cost = _PROBE_OVERHEAD
            if cost < best_cost:
                best = ScanPlan(
                    table=table.name, alias=alias, method="rowid-eq",
                    column=column, eq_expr=expr, est_rows=1.0,
                )
                best_cost = cost
            continue
        index = _single_column_index(table, column)
        if index is None:
            continue
        matches = 1.0 if index.unique else max(
            1.0, rows / max(1, rows // _NONUNIQUE_DISTINCT_DIVISOR)
        )
        cost = _PROBE_OVERHEAD + matches
        if cost < best_cost:
            best = ScanPlan(
                table=table.name, alias=alias, method="index-eq",
                index=index.name, column=column, eq_expr=expr,
                est_rows=matches,
            )
            best_cost = cost

    for column, (low, low_strict, high, high_strict) in ranges.items():
        if column in eq:
            continue  # the equality is strictly better
        index = _single_column_index(table, column)
        if index is None:
            continue
        matches = max(1.0, rows / _RANGE_SELECTIVITY)
        cost = _PROBE_OVERHEAD + matches
        if cost < best_cost:
            best = ScanPlan(
                table=table.name, alias=alias, method="index-range",
                index=index.name, column=column,
                low=low, low_strict=low_strict,
                high=high, high_strict=high_strict,
                est_rows=matches,
            )
            best_cost = cost
    return best


# -- join planning ----------------------------------------------------------------


def _left_aliases(source) -> list[tuple[str, str]]:
    """(alias, table name) pairs of every table in a source subtree."""
    if isinstance(source, ast.TableRef):
        return [((source.alias or source.name).lower(), source.name.lower())]
    if isinstance(source, ast.Join):
        return _left_aliases(source.left) + _left_aliases(source.right)
    return []


def _table_has_column(table: Table, name: str) -> bool:
    if name == "rowid":
        return True
    return any(col.name.lower() == name for col in table.columns)


def _resolves_left_only(expr, left_aliases: set[str], left_columns: set[str],
                        right_table: Table, right_alias: str) -> bool:
    """True if every column reference in ``expr`` is provably bound to the
    accumulated left side (never to the incoming right table)."""
    ok = True

    def walk(node) -> None:
        nonlocal ok
        if not ok:
            return
        if isinstance(node, ast.ColumnRef):
            if node.table is not None:
                if node.table.lower() not in left_aliases:
                    ok = False
                return
            name = node.name.lower()
            # Unqualified: must be a left column and must not also name a
            # right column (that would be ambiguous or right-bound).
            if _table_has_column(right_table, name) or name not in left_columns:
                ok = False
            return
        if isinstance(node, ast.Binary):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.Unary):
            walk(node.operand)
        elif isinstance(node, ast.FunctionCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, (ast.Literal, ast.Parameter)):
            return
        else:
            # Subqueries, CASE, IN, ... — too hairy to prove left-only;
            # the nested-loop fallback handles them.
            ok = False

    walk(expr)
    return ok


def _equi_condition(join: ast.Join, catalog: Catalog):
    """Find ``right_col = left_expr`` among the ON conjuncts.

    Returns (right_column, left_expr) or None.  ``right_column`` may be
    the rowid / rowid alias.
    """
    if join.on is None:
        return None
    right_table = catalog.tables.get(join.right.name.lower())
    if right_table is None:
        return None
    right_alias = (join.right.alias or join.right.name).lower()
    pairs = _left_aliases(join.left)
    left_aliases = {alias for alias, _name in pairs}
    left_columns: set[str] = set()
    for _alias, name in pairs:
        table = catalog.tables.get(name)
        if table is None:
            return None
        for col in table.columns:
            left_columns.add(col.name.lower())
    for conj in split_conjuncts(join.on):
        if not isinstance(conj, ast.Binary) or conj.op != "=":
            continue
        for col_side, other in ((conj.left, conj.right), (conj.right, conj.left)):
            if not isinstance(col_side, ast.ColumnRef):
                continue
            name = col_side.name.lower()
            if col_side.table is not None:
                if col_side.table.lower() != right_alias:
                    continue
            else:
                # Unqualified: must name a right column and no left column.
                if not _table_has_column(right_table, name) or name in left_columns:
                    continue
            if not _table_has_column(right_table, name):
                continue
            if _resolves_left_only(other, left_aliases, left_columns,
                                   right_table, right_alias):
                return name, other
    return None


def estimate_source_rows(catalog: Catalog, source) -> float:
    """Rough cardinality of a FROM subtree: the largest member table.

    Equi-join chains tend to produce about one match per driving row, so
    the widest table dominates how many probes a subsequent join step
    will see.  Only used to rank join strategies, never for results.
    """
    best = 1.0
    for _alias, name in _left_aliases(source):
        table = catalog.tables.get(name)
        if table is not None:
            best = max(best, float(catalog.stats(table).row_count))
    return best


def plan_join_step(catalog: Catalog, join: ast.Join, left_est: float) -> JoinStepPlan:
    """Choose the strategy for joining ``join.right`` onto the left side."""
    right_table = catalog.tables.get(join.right.name.lower())
    right_alias = join.right.alias or join.right.name
    step = JoinStepPlan(
        right_table=join.right.name, right_alias=right_alias,
        kind=join.kind, strategy="nested",
    )
    if right_table is None:
        return step  # executor will raise "no such table" either way
    equi = _equi_condition(join, catalog)
    if equi is None:
        return step
    right_column, left_expr = equi
    rows = catalog.stats(right_table).row_count
    is_rowid = _is_rowid_column(right_table, right_column)
    index = None if is_rowid else _single_column_index(right_table, right_column)

    # Hash join: one full scan of the right side (same rows_scanned as the
    # naive materialization) plus O(1) probes.
    hash_cost = rows + left_est
    step.strategy = "hash"
    step.left_expr = left_expr
    step.right_column = right_column
    step.right_is_rowid = is_rowid

    if is_rowid or index is not None:
        if is_rowid:
            per_probe = 1.0
        elif index.unique:
            per_probe = 1.0
        else:
            per_probe = max(1.0, rows / max(1, rows // _NONUNIQUE_DISTINCT_DIVISOR))
        index_cost = left_est * (_PROBE_OVERHEAD + per_probe)
        if index_cost < hash_cost:
            step.strategy = "index"
            step.index = None if is_rowid else index.name
    return step


def plan_select_source(catalog: Catalog, source, where) -> SelectPlan:
    """Plan a SELECT's FROM clause (WHERE is only usable single-table,
    mirroring the naive pushdown rule)."""
    plan = SelectPlan()
    if source is None:
        return plan
    if isinstance(source, ast.TableRef):
        table = catalog.tables.get(source.name.lower())
        if table is not None:
            plan.scan = plan_scan(
                catalog, table, source.alias or source.name, where
            )
        return plan
    if isinstance(source, ast.Join):
        # Walk to the leftmost table, planning each join step on the way up.
        joins: list[ast.Join] = []
        node = source
        while isinstance(node, ast.Join):
            joins.append(node)
            node = node.left
        joins.reverse()
        if isinstance(node, ast.TableRef):
            base_table = catalog.tables.get(node.name.lower())
            if base_table is not None:
                plan.base = plan_scan(
                    catalog, base_table, node.alias or node.name, None
                )
        for join in joins:
            # Use the same estimate the executor's _join_plan uses, so
            # EXPLAIN always reports the strategy that would actually run.
            step = plan_join_step(
                catalog, join, estimate_source_rows(catalog, join.left)
            )
            plan.joins.append(step)
        return plan
    return plan


# -- EXPLAIN rendering ------------------------------------------------------------


def _render_expr(expr) -> str:
    if isinstance(expr, ast.Literal):
        from repro.sqlstate.values import format_value

        value = expr.value
        return f"'{value}'" if isinstance(value, str) else format_value(value)
    if isinstance(expr, ast.Parameter):
        return "?"
    if isinstance(expr, ast.ColumnRef):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, ast.Binary):
        return f"{_render_expr(expr.left)}{expr.op}{_render_expr(expr.right)}"
    if isinstance(expr, ast.Unary):
        return f"{expr.op}{_render_expr(expr.operand)}"
    if isinstance(expr, ast.FunctionCall):
        inner = "*" if expr.star else ", ".join(_render_expr(a) for a in expr.args)
        return f"{expr.name}({inner})"
    return type(expr).__name__.lower()


def _scan_line(scan: ScanPlan) -> str:
    name = scan.table
    if scan.alias.lower() != scan.table.lower():
        name = f"{scan.table} AS {scan.alias}"
    if scan.method == "seq":
        return f"SCAN {name}"
    if scan.method == "rowid-eq":
        return f"SEARCH {name} USING INTEGER PRIMARY KEY (rowid={_render_expr(scan.eq_expr)})"
    if scan.method == "index-eq":
        return (
            f"SEARCH {name} USING INDEX {scan.index} "
            f"({scan.column}={_render_expr(scan.eq_expr)})"
        )
    parts = []
    if scan.low is not None:
        parts.append(f"{scan.column}{'>' if scan.low_strict else '>='}{_render_expr(scan.low)}")
    if scan.high is not None:
        parts.append(f"{scan.column}{'<' if scan.high_strict else '<='}{_render_expr(scan.high)}")
    return f"SEARCH {name} USING INDEX {scan.index} ({' AND '.join(parts)})"


def _join_line(step: JoinStepPlan) -> str:
    name = step.right_table
    if step.right_alias.lower() != step.right_table.lower():
        name = f"{step.right_table} AS {step.right_alias}"
    left = "LEFT " if step.kind == "LEFT" else ""
    if step.strategy == "hash":
        return (
            f"{left}HASH JOIN {name} "
            f"({step.right_column}={_render_expr(step.left_expr)})"
        )
    if step.strategy == "index":
        using = (
            "INTEGER PRIMARY KEY" if step.right_is_rowid
            else f"INDEX {step.index}"
        )
        return (
            f"{left}INDEX JOIN {name} USING {using} "
            f"({step.right_column}={_render_expr(step.left_expr)})"
        )
    cross = " (cross)" if step.kind == "CROSS" else ""
    return f"{left}NESTED LOOP JOIN {name}{cross}"


def explain_statement(stmt, catalog: Catalog) -> list[str]:
    """Human/test-readable plan description, one line per step."""
    if isinstance(stmt, ast.Select):
        lines: list[str] = []
        plan = plan_select_source(catalog, stmt.source, stmt.where)
        if plan.scan is not None:
            lines.append(_scan_line(plan.scan))
        if plan.base is not None:
            lines.append(_scan_line(plan.base))
        for step in plan.joins:
            lines.append(_join_line(step))
        if not lines:
            lines.append("SCAN CONSTANT ROW")
        has_aggregate = bool(stmt.group_by)
        if not has_aggregate:
            from repro.sqlstate.executor import _collect_aggregates

            nodes: list = []
            for item in stmt.items:
                if not item.star:
                    _collect_aggregates(item.expr, nodes)
            has_aggregate = bool(nodes)
        if stmt.group_by:
            lines.append(
                f"HASH AGGREGATE ({len(stmt.group_by)} group-by "
                f"column{'s' if len(stmt.group_by) != 1 else ''})"
            )
        elif has_aggregate:
            lines.append("AGGREGATE (scalar)")
        if stmt.distinct:
            lines.append("DISTINCT")
        if stmt.order_by:
            lines.append("USE TEMP SORT FOR ORDER BY")
        return lines
    if isinstance(stmt, ast.Update):
        table = catalog.tables.get(stmt.table.lower())
        lines = [f"UPDATE {stmt.table}"]
        if table is not None:
            lines.append(_scan_line(plan_scan(catalog, table, stmt.table, stmt.where)))
        return lines
    if isinstance(stmt, ast.Delete):
        table = catalog.tables.get(stmt.table.lower())
        lines = [f"DELETE FROM {stmt.table}"]
        if table is not None:
            lines.append(_scan_line(plan_scan(catalog, table, stmt.table, stmt.where)))
        return lines
    if isinstance(stmt, ast.Insert):
        return [f"INSERT INTO {stmt.table} ({len(stmt.rows)} row"
                f"{'s' if len(stmt.rows) != 1 else ''})"]
    return [type(stmt).__name__.upper()]
