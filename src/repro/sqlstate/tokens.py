"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SqlSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
    "DELETE", "CREATE", "DROP", "TABLE", "INDEX", "UNIQUE", "ON", "IF",
    "NOT", "EXISTS", "PRIMARY", "KEY", "NULL", "DEFAULT", "AND", "OR",
    "ORDER", "BY", "ASC", "DESC", "LIMIT", "OFFSET", "GROUP", "AS", "IS",
    "IN", "LIKE", "BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION", "JOIN",
    "INNER", "LEFT", "CROSS", "BETWEEN", "DISTINCT", "CASE", "WHEN",
    "THEN", "ELSE", "END", "INTEGER", "TEXT", "REAL", "BLOB", "HAVING",
    "ALTER", "ADD", "COLUMN", "EXPLAIN",
}
# EXISTS is already a keyword (used by IF NOT EXISTS).

T_KEYWORD = "keyword"
T_IDENT = "ident"
T_NUMBER = "number"
T_STRING = "string"
T_BLOB = "blob"
T_OP = "op"
T_PARAM = "param"
T_EOF = "eof"

_OPERATORS = [
    "<>", "<=", ">=", "==", "!=", "||",
    "(", ")", ",", "*", "+", "-", "/", "%", "=", "<", ">", ".", ";",
]


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    value: object = None
    pos: int = 0

    def is_kw(self, word: str) -> bool:
        return self.kind == T_KEYWORD and self.text == word


def tokenize(sql: str) -> list[Token]:
    """Split SQL text into tokens; raises :class:`SqlSyntaxError` on junk."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise SqlSyntaxError("unterminated comment")
            i = end + 2
            continue
        if ch == "'":
            text, i = _read_string(sql, i)
            tokens.append(Token(T_STRING, text, value=text, pos=i))
            continue
        if ch == '"':
            # Double quotes delimit identifiers.
            end = sql.find('"', i + 1)
            if end == -1:
                raise SqlSyntaxError("unterminated quoted identifier")
            tokens.append(Token(T_IDENT, sql[i + 1 : end], pos=i))
            i = end + 1
            continue
        if ch in ("x", "X") and i + 1 < n and sql[i + 1] == "'":
            end = sql.find("'", i + 2)
            if end == -1:
                raise SqlSyntaxError("unterminated blob literal")
            hexpart = sql[i + 2 : end]
            try:
                blob = bytes.fromhex(hexpart)
            except ValueError:
                raise SqlSyntaxError(f"bad blob literal x'{hexpart}'") from None
            tokens.append(Token(T_BLOB, hexpart, value=blob, pos=i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            text, value, i = _read_number(sql, i)
            tokens.append(Token(T_NUMBER, text, value=value, pos=i))
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(T_KEYWORD, upper, pos=i))
            else:
                tokens.append(Token(T_IDENT, word, pos=i))
            i = j
            continue
        if ch == "?":
            j = i + 1
            while j < n and sql[j].isdigit():
                j += 1
            index = int(sql[i + 1 : j]) if j > i + 1 else None
            tokens.append(Token(T_PARAM, sql[i:j], value=index, pos=i))
            i = j
            continue
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(T_OP, op, pos=i))
                i += len(op)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {ch!r} at offset {i}")
    tokens.append(Token(T_EOF, "", pos=n))
    return tokens


def _read_string(sql: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string with '' escaping."""
    out = []
    i = start + 1
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise SqlSyntaxError("unterminated string literal")


def _read_number(sql: str, start: int) -> tuple[str, object, int]:
    i = start
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < n and sql[i] in "+-":
                i += 1
        else:
            break
    text = sql[start:i]
    try:
        value: object = float(text) if (seen_dot or seen_exp) else int(text)
    except ValueError:
        raise SqlSyntaxError(f"bad numeric literal {text!r}") from None
    return text, value, i
