"""Schema catalog: table and index metadata, persisted in its own b-tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import SqlError
from repro.sqlstate import ast
from repro.sqlstate.btree import BTree
from repro.sqlstate.pager import Pager
from repro.sqlstate.records import decode_record, encode_key, encode_record
from repro.sqlstate.values import SqlNull, affinity_of


@dataclass
class Column:
    name: str
    declared_type: str
    affinity: str
    primary_key: bool = False
    not_null: bool = False
    unique: bool = False
    default: object = SqlNull  # literal value only (evaluated at CREATE)


@dataclass
class Table:
    name: str
    columns: list[Column]
    root_page: int
    rowid_alias: Optional[int] = None  # column index aliasing the rowid
    indexes: list["Index"] = field(default_factory=list)

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name.lower() == name.lower():
                return i
        raise SqlError(f"table {self.name} has no column {name!r}")


@dataclass
class Index:
    name: str
    table: str
    columns: tuple[str, ...]
    root_page: int
    unique: bool = False


@dataclass
class TableStats:
    """Cheap planner statistics: an estimated (not authoritative) row
    count, seeded by one tree scan and maintained incrementally."""

    row_count: int


class Catalog:
    """The schema, mirrored between memory and the schema b-tree."""

    def __init__(self, pager: Pager) -> None:
        self.pager = pager
        if pager.schema_root == 0:
            tree = BTree.create(pager)
            pager.set_schema_root(tree.root_page)
        self.schema_tree = BTree(pager, pager.schema_root)
        self.tables: dict[str, Table] = {}
        self.indexes: dict[str, Index] = {}
        self._stats: dict[str, TableStats] = {}
        self._loaded_version = -1
        self.reload()

    # -- persistence -----------------------------------------------------------------

    def reload(self) -> None:
        """Rebuild the in-memory schema from the schema tree."""
        self.tables = {}
        self.indexes = {}
        self._stats = {}
        for _key, value in self.schema_tree.scan():
            row = decode_record(value)
            kind = row[0]
            if kind == "table":
                table = self._table_from_row(row)
                self.tables[table.name.lower()] = table
            elif kind == "index":
                index = Index(
                    name=row[1],
                    table=row[2],
                    root_page=row[3],
                    columns=tuple(row[5].split(",")),
                    unique=bool(row[4]),
                )
                self.indexes[index.name.lower()] = index
        for index in self.indexes.values():
            table = self.tables.get(index.table.lower())
            if table is not None:
                table.indexes.append(index)
        self._loaded_version = self.pager.schema_version

    def maybe_reload(self) -> None:
        if self.pager.schema_version != self._loaded_version:
            self.reload()

    @staticmethod
    def _table_from_row(row) -> Table:
        name, root_page, ncols = row[1], row[2], row[3]
        columns = []
        pos = 4
        for _ in range(ncols):
            columns.append(
                Column(
                    name=row[pos],
                    declared_type=row[pos + 1],
                    affinity=affinity_of(row[pos + 1]),
                    primary_key=bool(row[pos + 2] & 1),
                    not_null=bool(row[pos + 2] & 2),
                    unique=bool(row[pos + 2] & 4),
                    default=row[pos + 3],
                )
            )
            pos += 4
        table = Table(name=name, columns=columns, root_page=root_page)
        table.rowid_alias = _find_rowid_alias(columns)
        return table

    def _persist_table(self, table: Table) -> None:
        row: list = ["table", table.name, table.root_page, len(table.columns)]
        for col in table.columns:
            flags = (
                (1 if col.primary_key else 0)
                | (2 if col.not_null else 0)
                | (4 if col.unique else 0)
            )
            row.extend([col.name, col.declared_type, flags, col.default])
        self.schema_tree.insert(
            encode_key(["table", table.name.lower()]), encode_record(row)
        )
        self.pager.bump_schema_version()
        self._loaded_version = self.pager.schema_version

    def _persist_index(self, index: Index) -> None:
        row = [
            "index",
            index.name,
            index.table,
            index.root_page,
            1 if index.unique else 0,
            ",".join(index.columns),
        ]
        self.schema_tree.insert(
            encode_key(["index", index.name.lower()]), encode_record(row)
        )
        self.pager.bump_schema_version()
        self._loaded_version = self.pager.schema_version

    # -- DDL ------------------------------------------------------------------------------

    def create_table(self, stmt: ast.CreateTable, evaluate_literal) -> Optional[Table]:
        if stmt.name.lower() in self.tables:
            if stmt.if_not_exists:
                return None
            raise SqlError(f"table {stmt.name} already exists")
        columns = []
        for cdef in stmt.columns:
            default = SqlNull
            if cdef.default is not None:
                default = evaluate_literal(cdef.default)
            columns.append(
                Column(
                    name=cdef.name,
                    declared_type=cdef.declared_type,
                    affinity=affinity_of(cdef.declared_type),
                    primary_key=cdef.primary_key,
                    not_null=cdef.not_null,
                    unique=cdef.unique,
                    default=default,
                )
            )
        tree = BTree.create(self.pager)
        table = Table(name=stmt.name, columns=columns, root_page=tree.root_page)
        table.rowid_alias = _find_rowid_alias(columns)
        self.tables[table.name.lower()] = table
        self._persist_table(table)
        # Non-rowid PRIMARY KEY and UNIQUE columns get automatic unique
        # indexes, like SQLite's implicit indexes.
        for col in columns:
            needs_index = (col.primary_key and table.rowid_alias is None) or col.unique
            if needs_index:
                self.create_index(
                    ast.CreateIndex(
                        name=f"__auto_{table.name}_{col.name}",
                        table=table.name,
                        columns=(col.name,),
                        unique=True,
                    )
                )
        return table

    def create_index(self, stmt: ast.CreateIndex) -> Optional[Index]:
        if stmt.name.lower() in self.indexes:
            if stmt.if_not_exists:
                return None
            raise SqlError(f"index {stmt.name} already exists")
        table = self.table(stmt.table)
        for col in stmt.columns:
            table.column_index(col)  # validates existence
        tree = BTree.create(self.pager)
        index = Index(
            name=stmt.name,
            table=table.name,
            columns=stmt.columns,
            root_page=tree.root_page,
            unique=stmt.unique,
        )
        self.indexes[index.name.lower()] = index
        table.indexes.append(index)
        self._persist_index(index)
        return index

    def drop_index(self, name: str, if_exists: bool) -> None:
        index = self.indexes.get(name.lower())
        if index is None:
            if if_exists:
                return
            raise SqlError(f"no such index {name}")
        del self.indexes[name.lower()]
        table = self.tables.get(index.table.lower())
        if table is not None:
            table.indexes = [i for i in table.indexes if i.name != index.name]
        self.schema_tree.delete(encode_key(["index", name.lower()]))
        self.pager.bump_schema_version()
        self._loaded_version = self.pager.schema_version

    def add_column(self, table_name: str, cdef: ast.ColumnDef, evaluate_literal) -> None:
        """ALTER TABLE ADD COLUMN: schema-only; existing rows are padded
        with the default at read time (SQLite's approach)."""
        table = self.table(table_name)
        if any(c.name.lower() == cdef.name.lower() for c in table.columns):
            raise SqlError(f"duplicate column name: {cdef.name}")
        default = SqlNull if cdef.default is None else evaluate_literal(cdef.default)
        if cdef.not_null and default is SqlNull:
            raise SqlError(
                "an added NOT NULL column needs a non-null default"
            )
        table.columns.append(
            Column(
                name=cdef.name,
                declared_type=cdef.declared_type,
                affinity=affinity_of(cdef.declared_type),
                not_null=cdef.not_null,
                default=default,
            )
        )
        self._persist_table(table)

    def drop_table(self, name: str, if_exists: bool) -> None:
        table = self.tables.get(name.lower())
        if table is None:
            if if_exists:
                return
            raise SqlError(f"no such table {name}")
        del self.tables[name.lower()]
        self._stats.pop(name.lower(), None)
        self.schema_tree.delete(encode_key(["table", name.lower()]))
        for index in list(table.indexes):
            self.indexes.pop(index.name.lower(), None)
            self.schema_tree.delete(encode_key(["index", index.name.lower()]))
        self.pager.bump_schema_version()
        self._loaded_version = self.pager.schema_version

    # -- statistics ------------------------------------------------------------------------

    def stats(self, table: Table) -> TableStats:
        """Planner statistics for ``table``, counted lazily on first use.

        Estimates may go stale relative to uncommitted work or drift
        from concurrent plans being memoized; that is fine — statistics
        only steer cost choices, never correctness (plans always
        re-check the full predicate).
        """
        key = table.name.lower()
        entry = self._stats.get(key)
        if entry is None:
            entry = TableStats(row_count=BTree(self.pager, table.root_page).count())
            self._stats[key] = entry
        return entry

    def note_rows(self, table: Table, delta: int) -> None:
        """Incremental row-count maintenance from the executor's DML."""
        entry = self._stats.get(table.name.lower())
        if entry is not None:
            entry.row_count = max(0, entry.row_count + delta)

    # -- lookup ----------------------------------------------------------------------------

    def table(self, name: str) -> Table:
        table = self.tables.get(name.lower())
        if table is None:
            raise SqlError(f"no such table {name}")
        return table


def _find_rowid_alias(columns: list[Column]) -> Optional[int]:
    """An INTEGER PRIMARY KEY column aliases the rowid, as in SQLite."""
    for i, col in enumerate(columns):
        if col.primary_key and col.declared_type.upper() == "INTEGER":
            return i
    return None
