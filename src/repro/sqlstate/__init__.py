"""An embedded relational engine with a VFS — the paper's SQL state
abstraction (section 3.2).

The paper interposes SQLite between the application and the PBFT library:
the *database file* is mapped into the PBFT state region (so replication
and checkpointing see every change through modify notifications), the
*rollback journal* stays on local disk (it is recovery scaffolding, not
replicated state), and non-deterministic functions (time, randomness) are
re-implemented over the PBFT non-determinism up-calls.

This package is a from-scratch engine with the same architecture:

* :mod:`repro.sqlstate.vfs` — the virtual file system layer with an
  in-memory backend, a simulated-disk backend (fsync costs, crash
  semantics) and the **PBFT state-region backend**;
* :mod:`repro.sqlstate.pager` + :mod:`repro.sqlstate.journal` — page cache
  and rollback-journal ACID;
* :mod:`repro.sqlstate.btree` — B+trees for tables and indexes;
* tokenizer/parser/executor for the SQL subset the paper's workloads need
  (CREATE TABLE/INDEX, INSERT, SELECT with WHERE/JOIN/ORDER BY/LIMIT and
  aggregates, UPDATE, DELETE, BEGIN/COMMIT/ROLLBACK);
* :mod:`repro.sqlstate.engine` — the :class:`Database` facade.
"""

from repro.sqlstate.engine import Database
from repro.sqlstate.vfs import MemoryVfsFile, DiskModel, StateRegionVfsFile, VfsEnvironment
from repro.sqlstate.values import SqlNull

__all__ = [
    "Database",
    "MemoryVfsFile",
    "DiskModel",
    "StateRegionVfsFile",
    "VfsEnvironment",
    "SqlNull",
]
