"""The :class:`Database` facade — the engine's public API.

Mirrors the shape of SQLite's C API the paper's applications code against:
``execute`` (one statement, optional ``?`` parameters), ``executescript``
(DDL batches), explicit BEGIN/COMMIT/ROLLBACK or per-statement
autocommit, and instrumentation counters the PBFT application layer turns
into simulated CPU/disk time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.common.errors import SqlError
from repro.common.hotpath import HOTPATH
from repro.sqlstate import ast
from repro.sqlstate.catalog import Catalog
from repro.sqlstate.executor import Executor
from repro.sqlstate.pager import Pager
from repro.sqlstate.parser import parse, parse_script
from repro.sqlstate.vfs import MemoryVfsFile, VfsEnvironment, VfsFile


@dataclass
class ResultSet:
    """Rows plus column labels from a SELECT."""

    columns: list[str]
    rows: list[tuple]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self):
        """First column of the first row (or None)."""
        if not self.rows:
            return None
        return self.rows[0][0]


@dataclass
class StatementStats:
    """Instrumentation deltas for the last ``execute`` call."""

    rows_scanned: int = 0
    rows_written: int = 0
    pages_journaled: int = 0
    pages_written: int = 0
    syncs: int = 0
    statements: int = 0


_PLAN_CACHE_CAP = 256


class Database:
    """An embedded relational database over a VFS file pair."""

    def __init__(
        self,
        file: Optional[VfsFile] = None,
        journal_file: Optional[VfsFile] = None,
        page_size: int = 4096,
        env: Optional[VfsEnvironment] = None,
        journal: bool = True,
    ) -> None:
        """``journal=False`` is the paper's No-ACID mode: no rollback
        journal, no flushing per operation (section 4.2's 1155-TPS
        configuration).  Otherwise a journal is kept — on the supplied
        ``journal_file`` (typically a simulated local disk) or a free
        in-memory file."""
        self.file = file if file is not None else MemoryVfsFile()
        if journal and journal_file is None:
            journal_file = MemoryVfsFile()
        if not journal:
            journal_file = None
        self.journal_file = journal_file
        self.env = env or VfsEnvironment()
        self.pager = Pager(self.file, page_size=page_size, journal_file=journal_file)
        self.catalog = Catalog(self.pager)
        self.executor = Executor(self.catalog, self.env)
        self.explicit_transaction = False
        self.last_stats = StatementStats()
        self.total_statements = 0
        # Statement cache: SQL text → parsed AST.  The AST is pure syntax
        # (schema-independent), so it never goes stale; access-path plans
        # hang off its nodes in the executor's memo, which *does*
        # revalidate against the live catalog.  Bounded LRU.
        self._plan_cache: OrderedDict[str, object] = OrderedDict()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        # Observability hook: called after every statement (success or
        # error) with the statement's AST type name and its instrumentation
        # deltas.  The PBFT application layer uses it to put per-statement
        # and per-fsync timing on the common-clock trace.
        self.on_statement: Optional[Callable[[str, StatementStats], None]] = None

    # -- transactions ------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self.pager.in_transaction

    def begin(self) -> None:
        if self.explicit_transaction:
            raise SqlError("cannot start a transaction within a transaction")
        if not self.pager.in_transaction:
            self.pager.begin()
        self.explicit_transaction = True

    def commit(self) -> None:
        if not self.explicit_transaction:
            raise SqlError("cannot commit - no transaction is active")
        self.pager.commit()
        self.explicit_transaction = False

    def rollback(self) -> None:
        if not self.explicit_transaction:
            raise SqlError("cannot rollback - no transaction is active")
        self.pager.rollback()
        self.catalog.reload()
        self.explicit_transaction = False

    # -- statement execution ------------------------------------------------------

    def execute(self, sql: str, params: Sequence = ()):
        """Run one statement.

        Returns a :class:`ResultSet` for SELECT, an affected-row count for
        DML, and ``None`` for DDL/transaction control.  Outside an explicit
        transaction, each statement is its own (journaled, synced)
        autocommit transaction — the paper's vote-insertion workload runs
        this way.
        """
        return self._run(self._prepare(sql), tuple(params))

    def _prepare(self, sql: str):
        """Parse, going through the statement cache on the hot path."""
        if not HOTPATH.enabled:
            return parse(sql)
        stmt = self._plan_cache.get(sql)
        if stmt is not None:
            self._plan_cache.move_to_end(sql)
            self.plan_cache_hits += 1
            return stmt
        self.plan_cache_misses += 1
        stmt = parse(sql)
        self._plan_cache[sql] = stmt
        if len(self._plan_cache) > _PLAN_CACHE_CAP:
            self._plan_cache.popitem(last=False)
        return stmt

    def executescript(self, sql: str) -> None:
        """Run a semicolon-separated batch (schema setup)."""
        for stmt in parse_script(sql):
            self._run(stmt, ())

    def _run(self, stmt, params):
        self.total_statements += 1
        baseline = self._snapshot_counters()
        try:
            result = self._dispatch(stmt, params)
        finally:
            self.last_stats = self._stats_since(baseline)
            if self.on_statement is not None:
                self.on_statement(type(stmt).__name__, self.last_stats)
        return result

    def _dispatch(self, stmt, params):
        self.catalog.maybe_reload()
        if isinstance(stmt, ast.Begin):
            self.begin()
            return None
        if isinstance(stmt, ast.Commit):
            self.commit()
            return None
        if isinstance(stmt, ast.Rollback):
            self.rollback()
            return None
        if isinstance(stmt, ast.Explain):
            from repro.sqlstate.planner import explain_statement

            lines = explain_statement(stmt.statement, self.catalog)
            return ResultSet(columns=["detail"], rows=[(line,) for line in lines])
        if isinstance(stmt, ast.Select):
            columns, rows = self.executor.select(stmt, params)
            return ResultSet(columns=columns, rows=rows)
        # Everything below mutates: wrap in autocommit when needed.
        auto = not self.pager.in_transaction
        if auto:
            self.pager.begin()
        try:
            if isinstance(stmt, ast.Insert):
                result = self.executor.insert(stmt, params)
            elif isinstance(stmt, ast.Update):
                result = self.executor.update(stmt, params)
            elif isinstance(stmt, ast.Delete):
                result = self.executor.delete(stmt, params)
            elif isinstance(stmt, ast.CreateTable):
                self.catalog.create_table(stmt, self.executor.eval_literal)
                result = None
            elif isinstance(stmt, ast.CreateIndex):
                created = self.catalog.create_index(stmt)
                if created is not None:
                    self._backfill_index(created)
                result = None
            elif isinstance(stmt, ast.DropTable):
                self.catalog.drop_table(stmt.name, stmt.if_exists)
                result = None
            elif isinstance(stmt, ast.DropIndex):
                self.catalog.drop_index(stmt.name, stmt.if_exists)
                result = None
            elif isinstance(stmt, ast.AlterTableAddColumn):
                self.catalog.add_column(
                    stmt.table, stmt.column, self.executor.eval_literal
                )
                result = None
            else:
                raise SqlError(f"unsupported statement {type(stmt).__name__}")
        except Exception:
            if auto and self.pager.in_transaction:
                if self.pager.journal is not None:
                    self.pager.rollback()
                    self.catalog.reload()
                else:
                    # No-ACID mode cannot roll back; commit what happened.
                    self.pager.commit()
            raise
        if auto:
            self.pager.commit()
        return result

    def _backfill_index(self, index) -> None:
        """Populate a newly created index from existing rows."""
        from repro.sqlstate.btree import BTree
        from repro.sqlstate.records import decode_record, decode_rowid, encode_rowid

        table = self.catalog.table(index.table)
        table_tree = BTree(self.pager, table.root_page)
        index_tree = BTree(self.pager, index.root_page)
        for key, raw in table_tree.scan():
            rowid = decode_rowid(key)
            # Rows stored before an ALTER TABLE ADD COLUMN are shorter
            # than the schema; index keys must see the padded defaults.
            row = self.executor._pad_row(table, decode_record(raw))
            index_tree.insert(
                self.executor._index_key(index, table, row, rowid),
                encode_rowid(rowid),
            )

    # -- instrumentation -------------------------------------------------------------

    def _snapshot_counters(self):
        journal = self.pager.journal
        return (
            self.executor.rows_scanned,
            self.executor.rows_written,
            journal.pages_journaled_total if journal else 0,
            self.pager.pages_written,
            self._sync_count(),
        )

    def _stats_since(self, baseline) -> StatementStats:
        journal = self.pager.journal
        return StatementStats(
            rows_scanned=self.executor.rows_scanned - baseline[0],
            rows_written=self.executor.rows_written - baseline[1],
            pages_journaled=(journal.pages_journaled_total if journal else 0)
            - baseline[2],
            pages_written=self.pager.pages_written - baseline[3],
            syncs=self._sync_count() - baseline[4],
            statements=1,
        )

    def _sync_count(self) -> int:
        disk = getattr(self.journal_file, "disk", None)
        main_disk = getattr(self.file, "disk", None)
        count = 0
        if disk is not None:
            count += disk.syncs
        if main_disk is not None and main_disk is not disk:
            count += main_disk.syncs
        return count

    # -- introspection ----------------------------------------------------------------

    def table_names(self) -> list[str]:
        return sorted(t.name for t in self.catalog.tables.values())

    def crash(self) -> None:
        """Simulation: lose volatile engine state (cache, open txn)."""
        self.pager.crash()
        self.explicit_transaction = False

    def reopen(self) -> None:
        """Simulate process restart: fresh pager over the same files.

        Journal recovery — "an uncommitted transaction will be rolled back
        on the next attempt to access the database file" — happens here.
        """
        self.pager = Pager(
            self.file, page_size=self.pager.page_size, journal_file=self.journal_file
        )
        self.catalog = Catalog(self.pager)
        self.executor = Executor(self.catalog, self.env)
        self.explicit_transaction = False
