"""The rollback journal — ACID's backbone (paper section 3.2).

Before a page is modified for the first time in a transaction, its
original image is appended to the journal file.  Commit is the classic
two-step dance: sync the journal (point of no return for rollback), write
the database pages, sync the database, then invalidate the journal.  A
crash at any point either finds a valid journal (roll the pre-images
back) or an invalidated one (the transaction is durable) — never a
half-committed database.

The paper keeps the journal on *local disk* rather than in the PBFT state
region: "it allows the engine to recover in the case of system failure and
it is not actually part of the application state."
"""

from __future__ import annotations

import struct

from repro.sqlstate.vfs import VfsFile

_MAGIC = b"RJRNL\x01\x00\x00"
_HEADER = struct.Struct(">8sII")  # magic, page_size, page_count
_ENTRY_HEAD = struct.Struct(">I")  # page number


class RollbackJournal:
    """Pre-image log for one database file."""

    def __init__(self, file: VfsFile, page_size: int) -> None:
        self.file = file
        self.page_size = page_size
        self._journaled: set[int] = set()
        self._count = 0
        self.pages_journaled_total = 0

    @property
    def active(self) -> bool:
        return bool(self._journaled)

    def journaled(self, page_no: int) -> bool:
        return page_no in self._journaled

    def record(self, page_no: int, original: bytes) -> None:
        """Append one pre-image (first modification of the page this txn)."""
        if page_no in self._journaled:
            return
        if self._count == 0:
            self.file.write(0, _HEADER.pack(_MAGIC, self.page_size, 0))
        offset = _HEADER.size + self._count * (_ENTRY_HEAD.size + self.page_size)
        self.file.write(offset, _ENTRY_HEAD.pack(page_no) + original)
        self._count += 1
        self._journaled.add(page_no)
        self.pages_journaled_total += 1

    def seal(self) -> None:
        """Finalize the header and fsync: after this, rollback is possible
        even across a power failure."""
        if self._count == 0:
            return
        self.file.write(0, _HEADER.pack(_MAGIC, self.page_size, self._count))
        self.file.sync()

    def invalidate(self) -> None:
        """Commit completed: the journal no longer applies."""
        self.file.truncate(0)
        self.file.sync()
        self._journaled.clear()
        self._count = 0

    def entries(self) -> list[tuple[int, bytes]]:
        """Read back all pre-images (rollback and crash recovery)."""
        if self.file.size() < _HEADER.size:
            return []
        magic, page_size, count = _HEADER.unpack(self.file.read(0, _HEADER.size))
        if magic != _MAGIC or page_size != self.page_size:
            return []
        out = []
        entry_size = _ENTRY_HEAD.size + self.page_size
        for i in range(count):
            offset = _HEADER.size + i * entry_size
            raw = self.file.read(offset, entry_size)
            if len(raw) < entry_size:
                break  # torn tail: the header count said more than was synced
            (page_no,) = _ENTRY_HEAD.unpack_from(raw)
            out.append((page_no, raw[_ENTRY_HEAD.size :]))
        return out

    def reset_tracking(self) -> None:
        """Forget per-transaction state without touching the file (used
        after a rollback replays the pre-images)."""
        self._journaled.clear()
        self._count = 0
