"""Page cache and transaction control over a VFS file."""

from __future__ import annotations

import struct
from typing import Optional

from repro.common.errors import SqlError
from repro.sqlstate.journal import RollbackJournal
from repro.sqlstate.vfs import VfsFile

_DB_MAGIC = b"REPRODB1"
_HEADER = struct.Struct(">8sIIIII")
# magic, page_size, page_count, freelist_head, schema_root, schema_version
HEADER_PAGE = 0
_FREELIST_NEXT = struct.Struct(">I")


class Pager:
    """Reads, writes, allocates and journals fixed-size pages.

    Transactions: :meth:`begin` / :meth:`commit` / :meth:`rollback`.  With
    a journal, commit follows the sync-journal → write-db → sync-db →
    invalidate-journal protocol; without one (the paper's No-ACID
    configuration) commit just writes through.
    """

    def __init__(
        self,
        file: VfsFile,
        page_size: int = 4096,
        journal_file: Optional[VfsFile] = None,
    ) -> None:
        if page_size < 512:
            raise SqlError("page size must be at least 512 bytes")
        self.file = file
        self.page_size = page_size
        self.journal = (
            RollbackJournal(journal_file, page_size) if journal_file is not None else None
        )
        self._cache: dict[int, bytes] = {}
        self._dirty: set[int] = set()
        self.in_transaction = False
        self.page_count = 0
        self.freelist_head = 0
        self.schema_root = 0
        self.schema_version = 0
        self.commits = 0
        self.rollbacks = 0
        self.pages_written = 0
        self._open()

    # -- open / recover ----------------------------------------------------------

    def _open(self) -> None:
        if self.journal is not None:
            self._recover_if_needed()
        raw = self.file.read(0, _HEADER.size)
        # A sparse state-region file reports size 0 until written, and a
        # fresh region is all zeroes — either way, initialize; any other
        # content must carry the magic.
        if len(raw) < _HEADER.size or raw == bytes(_HEADER.size):
            self.page_count = 1
            self._write_header_to_cache()
            self._flush_all()
            return
        magic, page_size, count, freelist, schema_root, version = _HEADER.unpack(raw)
        if magic != _DB_MAGIC:
            raise SqlError("not a repro database file")
        if page_size != self.page_size:
            raise SqlError(
                f"page size mismatch: file has {page_size}, pager opened with "
                f"{self.page_size}"
            )
        self.page_count = count
        self.freelist_head = freelist
        self.schema_root = schema_root
        self.schema_version = version

    def _recover_if_needed(self) -> None:
        """Roll back a transaction interrupted by a crash.

        "An uncommitted transaction will be rolled back on the next
        attempt to access the database file" — the paper's durability
        argument for the SQLite approach.
        """
        entries = self.journal.entries()
        if not entries:
            return
        for page_no, original in entries:
            self.file.write(page_no * self.page_size, original)
        self.file.sync()
        self.journal.invalidate()
        self.recovered = True

    # -- header ------------------------------------------------------------------

    def _header_bytes(self) -> bytes:
        raw = _HEADER.pack(
            _DB_MAGIC,
            self.page_size,
            self.page_count,
            self.freelist_head,
            self.schema_root,
            self.schema_version,
        )
        return raw + bytes(self.page_size - len(raw))

    def _write_header_to_cache(self) -> None:
        self._journal_original(HEADER_PAGE)
        self._cache[HEADER_PAGE] = self._header_bytes()
        self._dirty.add(HEADER_PAGE)

    def set_schema_root(self, page_no: int) -> None:
        self.schema_root = page_no
        self._write_header_to_cache()

    def bump_schema_version(self) -> None:
        self.schema_version += 1
        self._write_header_to_cache()

    # -- page access ---------------------------------------------------------------

    def get(self, page_no: int) -> bytes:
        if page_no >= self.page_count or page_no < 0:
            raise SqlError(f"page {page_no} out of range (count {self.page_count})")
        cached = self._cache.get(page_no)
        if cached is not None:
            return cached
        raw = self.file.read(page_no * self.page_size, self.page_size)
        if len(raw) < self.page_size:
            raw = raw + bytes(self.page_size - len(raw))
        self._cache[page_no] = raw
        return raw

    def put(self, page_no: int, data: bytes) -> None:
        if len(data) != self.page_size:
            raise SqlError(f"page write of {len(data)} bytes != page size")
        if page_no >= self.page_count or page_no < 0:
            raise SqlError(f"page {page_no} out of range")
        self._journal_original(page_no)
        self._cache[page_no] = data
        self._dirty.add(page_no)

    def _journal_original(self, page_no: int) -> None:
        if self.journal is None or not self.in_transaction:
            return
        if self.journal.journaled(page_no):
            return
        if page_no >= self._pages_at_begin:
            return  # page did not exist when the transaction began
        original = self._cache.get(page_no)
        if original is None or page_no in self._dirty:
            raw = self.file.read(page_no * self.page_size, self.page_size)
            if len(raw) < self.page_size:
                raw += bytes(self.page_size - len(raw))
            original = raw
        self.journal.record(page_no, original)

    # -- allocation -------------------------------------------------------------------

    def allocate(self) -> int:
        if self.freelist_head:
            page_no = self.freelist_head
            raw = self.get(page_no)
            (next_free,) = _FREELIST_NEXT.unpack_from(raw, 1)
            self.freelist_head = next_free
            self._write_header_to_cache()
            return page_no
        page_no = self.page_count
        self.page_count += 1
        self._cache[page_no] = bytes(self.page_size)
        self._dirty.add(page_no)
        self._write_header_to_cache()
        return page_no

    def free(self, page_no: int) -> None:
        raw = bytearray(self.page_size)
        raw[0] = 0xFF  # freelist marker
        _FREELIST_NEXT.pack_into(raw, 1, self.freelist_head)
        self.put(page_no, bytes(raw))
        self.freelist_head = page_no
        self._write_header_to_cache()

    # -- transactions ---------------------------------------------------------------------

    def begin(self) -> None:
        if self.in_transaction:
            raise SqlError("transaction already active")
        self.in_transaction = True
        self._pages_at_begin = self.page_count

    def commit(self) -> None:
        if not self.in_transaction:
            raise SqlError("no active transaction")
        if self.journal is not None:
            self.journal.seal()
        self._flush_all()
        self.file.sync()
        if self.journal is not None:
            self.journal.invalidate()
        self.in_transaction = False
        self.commits += 1

    def rollback(self) -> None:
        if not self.in_transaction:
            raise SqlError("no active transaction")
        if self.journal is None:
            raise SqlError(
                "cannot roll back without a journal (No-ACID mode)"
            )
        for page_no, original in self.journal.entries():
            self.file.write(page_no * self.page_size, original)
        self.journal.invalidate()
        self._cache.clear()
        self._dirty.clear()
        # Restore header fields from the rolled-back file image.
        raw = self.file.read(0, _HEADER.size)
        _magic, _ps, count, freelist, schema_root, version = _HEADER.unpack(raw)
        self.page_count = count
        self.freelist_head = freelist
        self.schema_root = schema_root
        self.schema_version = version
        self.in_transaction = False
        self.rollbacks += 1

    def _flush_all(self) -> None:
        for page_no in sorted(self._dirty):
            self.file.write(page_no * self.page_size, self._cache[page_no])
            self.pages_written += 1
        self._dirty.clear()

    def crash(self) -> None:
        """Simulation hook: lose all volatile state (cache, open txn)."""
        self._cache.clear()
        self._dirty.clear()
        self.in_transaction = False
