"""Page cache and transaction control over a VFS file.

Clean page images live in a process-wide bounded LRU :class:`BufferPool`
shared by every open pager (one per database / replica state region),
replacing the unbounded per-pager dict this module started with.  Dirty
pages never enter the pool — each pager pins them privately until flush,
so eviction can never lose a write.  The pager also hosts a small cache
of *parsed* b-tree nodes (see :mod:`repro.sqlstate.btree`), invalidated
here on every write/rollback/crash so the two caches cannot diverge.
"""

from __future__ import annotations

import itertools
import struct
from collections import OrderedDict
from typing import Optional

from repro.common.errors import SqlError
from repro.common.hotpath import HOTPATH
from repro.sqlstate.journal import RollbackJournal
from repro.sqlstate.vfs import VfsFile

_DB_MAGIC = b"REPRODB1"
_HEADER = struct.Struct(">8sIIIII")
# magic, page_size, page_count, freelist_head, schema_root, schema_version
HEADER_PAGE = 0
_FREELIST_NEXT = struct.Struct(">I")

_NODE_CACHE_CAP = 4096

# Owner tokens must never be reused (an id() could be, after GC, which
# would let a new pager read a dead pager's pool entries).
_OWNER_IDS = itertools.count(1)


class BufferPool:
    """Bounded, shared LRU cache of clean page images.

    Keys are ``(owner, page_no)`` so pagers never see each other's pages;
    capacity is counted in pages across all owners.
    """

    def __init__(self, capacity_pages: int = 4096) -> None:
        self.capacity = capacity_pages
        self._pages: OrderedDict[tuple[int, int], bytes] = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._pages)

    def get(self, owner: int, page_no: int) -> Optional[bytes]:
        key = (owner, page_no)
        data = self._pages.get(key)
        if data is not None:
            self._pages.move_to_end(key)
        return data

    def put(self, owner: int, page_no: int, data: bytes) -> None:
        key = (owner, page_no)
        self._pages[key] = data
        self._pages.move_to_end(key)
        while len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
            self.evictions += 1

    def discard(self, owner: int, page_no: int) -> None:
        self._pages.pop((owner, page_no), None)

    def drop_owner(self, owner: int) -> None:
        for key in [k for k in self._pages if k[0] == owner]:
            del self._pages[key]


_SHARED_POOL = BufferPool()


def shared_pool() -> BufferPool:
    return _SHARED_POOL


class Pager:
    """Reads, writes, allocates and journals fixed-size pages.

    Transactions: :meth:`begin` / :meth:`commit` / :meth:`rollback`.  With
    a journal, commit follows the sync-journal → write-db → sync-db →
    invalidate-journal protocol; without one (the paper's No-ACID
    configuration) commit just writes through.
    """

    def __init__(
        self,
        file: VfsFile,
        page_size: int = 4096,
        journal_file: Optional[VfsFile] = None,
        pool: Optional[BufferPool] = None,
    ) -> None:
        if page_size < 512:
            raise SqlError("page size must be at least 512 bytes")
        self.file = file
        self.page_size = page_size
        self.journal = (
            RollbackJournal(journal_file, page_size) if journal_file is not None else None
        )
        self.pool = pool if pool is not None else _SHARED_POOL
        self._owner = next(_OWNER_IDS)
        self._dirty: dict[int, bytes] = {}  # pinned until flush
        self._nodes: dict[int, object] = {}  # parsed b-tree nodes, by page
        self.in_transaction = False
        self.page_count = 0
        self.freelist_head = 0
        self.schema_root = 0
        self.schema_version = 0
        self.commits = 0
        self.rollbacks = 0
        self.pages_written = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self._open()

    # -- open / recover ----------------------------------------------------------

    def _open(self) -> None:
        if self.journal is not None:
            self._recover_if_needed()
        raw = self.file.read(0, _HEADER.size)
        # A sparse state-region file reports size 0 until written, and a
        # fresh region is all zeroes — either way, initialize; any other
        # content must carry the magic.
        if len(raw) < _HEADER.size or raw == bytes(_HEADER.size):
            self.page_count = 1
            self._write_header_to_cache()
            self._flush_all()
            return
        magic, page_size, count, freelist, schema_root, version = _HEADER.unpack(raw)
        if magic != _DB_MAGIC:
            raise SqlError("not a repro database file")
        if page_size != self.page_size:
            raise SqlError(
                f"page size mismatch: file has {page_size}, pager opened with "
                f"{self.page_size}"
            )
        self.page_count = count
        self.freelist_head = freelist
        self.schema_root = schema_root
        self.schema_version = version

    def _recover_if_needed(self) -> None:
        """Roll back a transaction interrupted by a crash.

        "An uncommitted transaction will be rolled back on the next
        attempt to access the database file" — the paper's durability
        argument for the SQLite approach.
        """
        entries = self.journal.entries()
        if not entries:
            return
        for page_no, original in entries:
            self.file.write(page_no * self.page_size, original)
        self.file.sync()
        self.journal.invalidate()
        self.recovered = True

    # -- header ------------------------------------------------------------------

    def _header_bytes(self) -> bytes:
        raw = _HEADER.pack(
            _DB_MAGIC,
            self.page_size,
            self.page_count,
            self.freelist_head,
            self.schema_root,
            self.schema_version,
        )
        return raw + bytes(self.page_size - len(raw))

    def _write_header_to_cache(self) -> None:
        self._journal_original(HEADER_PAGE)
        self._dirty[HEADER_PAGE] = self._header_bytes()
        self.pool.discard(self._owner, HEADER_PAGE)

    def set_schema_root(self, page_no: int) -> None:
        self.schema_root = page_no
        self._write_header_to_cache()

    def bump_schema_version(self) -> None:
        self.schema_version += 1
        self._write_header_to_cache()

    # -- page access ---------------------------------------------------------------

    def get(self, page_no: int) -> bytes:
        if page_no >= self.page_count or page_no < 0:
            raise SqlError(f"page {page_no} out of range (count {self.page_count})")
        data = self._dirty.get(page_no)
        if data is not None:
            self.cache_hits += 1
            return data
        data = self.pool.get(self._owner, page_no)
        if data is not None:
            self.cache_hits += 1
            return data
        self.cache_misses += 1
        raw = self.file.read(page_no * self.page_size, self.page_size)
        if len(raw) < self.page_size:
            raw = raw + bytes(self.page_size - len(raw))
        self.pool.put(self._owner, page_no, raw)
        return raw

    def put(self, page_no: int, data: bytes) -> None:
        if len(data) != self.page_size:
            raise SqlError(f"page write of {len(data)} bytes != page size")
        if page_no >= self.page_count or page_no < 0:
            raise SqlError(f"page {page_no} out of range")
        self._journal_original(page_no)
        self._dirty[page_no] = data
        self.pool.discard(self._owner, page_no)
        self._nodes.pop(page_no, None)

    def _journal_original(self, page_no: int) -> None:
        if self.journal is None or not self.in_transaction:
            return
        if self.journal.journaled(page_no):
            return
        if page_no >= self._pages_at_begin:
            return  # page did not exist when the transaction began
        # Dirty pages diverge from the file image; the pool only ever
        # holds flushed (= on-file) bytes, so it is a valid source.
        original = None
        if page_no not in self._dirty:
            original = self.pool.get(self._owner, page_no)
        if original is None:
            raw = self.file.read(page_no * self.page_size, self.page_size)
            if len(raw) < self.page_size:
                raw += bytes(self.page_size - len(raw))
            original = raw
        self.journal.record(page_no, original)

    # -- parsed-node cache ----------------------------------------------------------

    def cached_node(self, page_no: int):
        if not HOTPATH.enabled:
            return None
        return self._nodes.get(page_no)

    def register_node(self, page_no: int, node: object) -> None:
        if not HOTPATH.enabled:
            return
        if len(self._nodes) >= _NODE_CACHE_CAP:
            self._nodes.clear()
        self._nodes[page_no] = node

    def forget_node(self, page_no: int) -> None:
        self._nodes.pop(page_no, None)

    # -- allocation -------------------------------------------------------------------

    def allocate(self) -> int:
        if self.freelist_head:
            page_no = self.freelist_head
            raw = self.get(page_no)
            (next_free,) = _FREELIST_NEXT.unpack_from(raw, 1)
            self.freelist_head = next_free
            self._write_header_to_cache()
            return page_no
        page_no = self.page_count
        self.page_count += 1
        self._dirty[page_no] = bytes(self.page_size)
        self._write_header_to_cache()
        return page_no

    def free(self, page_no: int) -> None:
        raw = bytearray(self.page_size)
        raw[0] = 0xFF  # freelist marker
        _FREELIST_NEXT.pack_into(raw, 1, self.freelist_head)
        self.put(page_no, bytes(raw))
        self.freelist_head = page_no
        self._write_header_to_cache()

    # -- transactions ---------------------------------------------------------------------

    def begin(self) -> None:
        if self.in_transaction:
            raise SqlError("transaction already active")
        self.in_transaction = True
        self._pages_at_begin = self.page_count

    def commit(self) -> None:
        if not self.in_transaction:
            raise SqlError("no active transaction")
        if self.journal is not None:
            self.journal.seal()
        self._flush_all()
        self.file.sync()
        if self.journal is not None:
            self.journal.invalidate()
        self.in_transaction = False
        self.commits += 1

    def rollback(self) -> None:
        if not self.in_transaction:
            raise SqlError("no active transaction")
        if self.journal is None:
            raise SqlError(
                "cannot roll back without a journal (No-ACID mode)"
            )
        journaled = [page_no for page_no, _original in self.journal.entries()]
        for page_no, original in self.journal.entries():
            self.file.write(page_no * self.page_size, original)
        self.journal.invalidate()
        # Journal-aware invalidation: only pages the transaction touched
        # can be stale.  Journaled pages revert on disk; dirty pages were
        # pinned outside the pool (this includes every page allocated
        # after begin()); everything else in the pool still matches the
        # file image and stays warm.
        for page_no in journaled:
            self.pool.discard(self._owner, page_no)
            self._nodes.pop(page_no, None)
        for page_no in self._dirty:
            self._nodes.pop(page_no, None)
        self._dirty.clear()
        # Restore header fields from the rolled-back file image.
        raw = self.file.read(0, _HEADER.size)
        _magic, _ps, count, freelist, schema_root, version = _HEADER.unpack(raw)
        self.page_count = count
        self.freelist_head = freelist
        self.schema_root = schema_root
        self.schema_version = version
        self.in_transaction = False
        self.rollbacks += 1

    def _flush_all(self) -> None:
        for page_no in sorted(self._dirty):
            data = self._dirty[page_no]
            self.file.write(page_no * self.page_size, data)
            self.pool.put(self._owner, page_no, data)
            self.pages_written += 1
        self._dirty.clear()

    def crash(self) -> None:
        """Simulation hook: lose all volatile state (cache, open txn)."""
        self.pool.drop_owner(self._owner)
        self._dirty.clear()
        self._nodes.clear()
        self.in_transaction = False
