"""Recursive-descent SQL parser."""

from __future__ import annotations

from typing import Optional

from repro.common.errors import SqlSyntaxError
from repro.sqlstate import ast
from repro.sqlstate.tokens import (
    T_BLOB,
    T_EOF,
    T_IDENT,
    T_KEYWORD,
    T_NUMBER,
    T_OP,
    T_PARAM,
    T_STRING,
    Token,
    tokenize,
)
from repro.sqlstate.values import SqlNull


def parse(sql: str):
    """Parse one statement; raises :class:`SqlSyntaxError` for anything else."""
    statements = parse_script(sql)
    if len(statements) != 1:
        raise SqlSyntaxError(f"expected exactly one statement, found {len(statements)}")
    return statements[0]


def parse_script(sql: str) -> list:
    """Parse a semicolon-separated sequence of statements."""
    parser = _Parser(tokenize(sql))
    statements = []
    while not parser.at_end():
        if parser.accept_op(";"):
            continue
        statements.append(parser.statement())
    return statements


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self._param_auto = 0

    # -- token plumbing --------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != T_EOF:
            self.pos += 1
        return token

    def at_end(self) -> bool:
        return self.peek().kind == T_EOF

    def accept_kw(self, *words: str) -> Optional[Token]:
        token = self.peek()
        if token.kind == T_KEYWORD and token.text in words:
            return self.next()
        return None

    def expect_kw(self, word: str) -> Token:
        token = self.accept_kw(word)
        if token is None:
            raise SqlSyntaxError(f"expected {word}, found {self.peek().text!r}")
        return token

    def accept_op(self, op: str) -> Optional[Token]:
        token = self.peek()
        if token.kind == T_OP and token.text == op:
            return self.next()
        return None

    def expect_op(self, op: str) -> Token:
        token = self.accept_op(op)
        if token is None:
            raise SqlSyntaxError(f"expected {op!r}, found {self.peek().text!r}")
        return token

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind == T_IDENT:
            self.next()
            return token.text
        # Allow non-reserved type keywords as identifiers where sensible.
        if token.kind == T_KEYWORD and token.text in ("TEXT", "BLOB", "REAL", "INTEGER", "KEY"):
            self.next()
            return token.text
        raise SqlSyntaxError(f"expected identifier, found {token.text!r}")

    # -- statements ------------------------------------------------------------

    def statement(self):
        token = self.peek()
        if token.is_kw("EXPLAIN"):
            self.next()
            return ast.Explain(statement=self.statement())
        if token.is_kw("SELECT"):
            return self.select()
        if token.is_kw("INSERT"):
            return self.insert()
        if token.is_kw("UPDATE"):
            return self.update()
        if token.is_kw("DELETE"):
            return self.delete()
        if token.is_kw("CREATE"):
            return self.create()
        if token.is_kw("DROP"):
            return self.drop()
        if token.is_kw("ALTER"):
            return self.alter()
        if token.is_kw("BEGIN"):
            self.next()
            self.accept_kw("TRANSACTION")
            return ast.Begin()
        if token.is_kw("COMMIT"):
            self.next()
            self.accept_kw("TRANSACTION")
            return ast.Commit()
        if token.is_kw("ROLLBACK"):
            self.next()
            self.accept_kw("TRANSACTION")
            return ast.Rollback()
        raise SqlSyntaxError(f"unexpected token {token.text!r}")

    def create(self):
        self.expect_kw("CREATE")
        unique = self.accept_kw("UNIQUE") is not None
        if self.accept_kw("TABLE"):
            if unique:
                raise SqlSyntaxError("UNIQUE applies to indexes, not tables")
            return self.create_table()
        self.expect_kw("INDEX")
        return self.create_index(unique)

    def create_table(self) -> ast.CreateTable:
        if_not_exists = self._if_not_exists()
        name = self.expect_ident()
        self.expect_op("(")
        columns = []
        while True:
            columns.append(self.column_def())
            if not self.accept_op(","):
                break
        self.expect_op(")")
        return ast.CreateTable(
            name=name, columns=tuple(columns), if_not_exists=if_not_exists
        )

    def column_def(self) -> ast.ColumnDef:
        name = self.expect_ident()
        type_words = []
        while True:
            token = self.peek()
            if token.kind == T_IDENT or (
                token.kind == T_KEYWORD
                and token.text in ("INTEGER", "TEXT", "REAL", "BLOB")
            ):
                type_words.append(self.next().text)
            else:
                break
        primary = not_null = unique = False
        default = None
        while True:
            if self.accept_kw("PRIMARY"):
                self.expect_kw("KEY")
                primary = True
            elif self.accept_kw("NOT"):
                self.expect_kw("NULL")
                not_null = True
            elif self.accept_kw("UNIQUE"):
                unique = True
            elif self.accept_kw("DEFAULT"):
                default = self.expression()
            else:
                break
        return ast.ColumnDef(
            name=name,
            declared_type=" ".join(type_words),
            primary_key=primary,
            not_null=not_null,
            unique=unique,
            default=default,
        )

    def create_index(self, unique: bool) -> ast.CreateIndex:
        if_not_exists = self._if_not_exists()
        name = self.expect_ident()
        self.expect_kw("ON")
        table = self.expect_ident()
        self.expect_op("(")
        columns = [self.expect_ident()]
        while self.accept_op(","):
            columns.append(self.expect_ident())
        self.expect_op(")")
        return ast.CreateIndex(
            name=name,
            table=table,
            columns=tuple(columns),
            unique=unique,
            if_not_exists=if_not_exists,
        )

    def _if_not_exists(self) -> bool:
        if self.accept_kw("IF"):
            self.expect_kw("NOT")
            self.expect_kw("EXISTS")
            return True
        return False

    def drop(self):
        self.expect_kw("DROP")
        is_index = self.accept_kw("INDEX") is not None
        if not is_index:
            self.expect_kw("TABLE")
        if_exists = False
        if self.accept_kw("IF"):
            self.expect_kw("EXISTS")
            if_exists = True
        name = self.expect_ident()
        if is_index:
            return ast.DropIndex(name=name, if_exists=if_exists)
        return ast.DropTable(name=name, if_exists=if_exists)

    def alter(self) -> ast.AlterTableAddColumn:
        self.expect_kw("ALTER")
        self.expect_kw("TABLE")
        table = self.expect_ident()
        self.expect_kw("ADD")
        self.accept_kw("COLUMN")
        column = self.column_def()
        if column.primary_key or column.unique:
            raise SqlSyntaxError(
                "ADD COLUMN cannot declare PRIMARY KEY or UNIQUE (as in SQLite)"
            )
        return ast.AlterTableAddColumn(table=table, column=column)

    def insert(self) -> ast.Insert:
        self.expect_kw("INSERT")
        self.expect_kw("INTO")
        table = self.expect_ident()
        columns: list[str] = []
        if self.accept_op("("):
            columns.append(self.expect_ident())
            while self.accept_op(","):
                columns.append(self.expect_ident())
            self.expect_op(")")
        self.expect_kw("VALUES")
        rows = []
        while True:
            self.expect_op("(")
            row = [self.expression()]
            while self.accept_op(","):
                row.append(self.expression())
            self.expect_op(")")
            rows.append(tuple(row))
            if not self.accept_op(","):
                break
        return ast.Insert(table=table, columns=tuple(columns), rows=tuple(rows))

    def update(self) -> ast.Update:
        self.expect_kw("UPDATE")
        table = self.expect_ident()
        self.expect_kw("SET")
        assignments = []
        while True:
            column = self.expect_ident()
            self.expect_op("=")
            assignments.append((column, self.expression()))
            if not self.accept_op(","):
                break
        where = self.expression() if self.accept_kw("WHERE") else None
        return ast.Update(table=table, assignments=tuple(assignments), where=where)

    def delete(self) -> ast.Delete:
        self.expect_kw("DELETE")
        self.expect_kw("FROM")
        table = self.expect_ident()
        where = self.expression() if self.accept_kw("WHERE") else None
        return ast.Delete(table=table, where=where)

    def select(self) -> ast.Select:
        self.expect_kw("SELECT")
        distinct = self.accept_kw("DISTINCT") is not None
        items = [self.select_item()]
        while self.accept_op(","):
            items.append(self.select_item())
        source = None
        if self.accept_kw("FROM"):
            source = self.table_source()
        where = self.expression() if self.accept_kw("WHERE") else None
        group_by: tuple = ()
        having = None
        if self.accept_kw("GROUP"):
            self.expect_kw("BY")
            groups = [self.expression()]
            while self.accept_op(","):
                groups.append(self.expression())
            group_by = tuple(groups)
            if self.accept_kw("HAVING"):
                having = self.expression()
        order_by: list[ast.OrderItem] = []
        if self.accept_kw("ORDER"):
            self.expect_kw("BY")
            while True:
                expr = self.expression()
                descending = False
                if self.accept_kw("DESC"):
                    descending = True
                elif self.accept_kw("ASC"):
                    pass
                order_by.append(ast.OrderItem(expr=expr, descending=descending))
                if not self.accept_op(","):
                    break
        limit = offset = None
        if self.accept_kw("LIMIT"):
            limit = self.expression()
            if self.accept_kw("OFFSET"):
                offset = self.expression()
            elif self.accept_op(","):
                # LIMIT offset, count (MySQL-compatible form SQLite allows)
                offset = limit
                limit = self.expression()
        return ast.Select(
            items=tuple(items),
            source=source,
            where=where,
            group_by=group_by,
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def select_item(self) -> ast.SelectItem:
        if self.accept_op("*"):
            return ast.SelectItem(expr=None, star=True)
        # table.* form
        token = self.peek()
        if (
            token.kind == T_IDENT
            and self.tokens[self.pos + 1].kind == T_OP
            and self.tokens[self.pos + 1].text == "."
            and self.tokens[self.pos + 2].kind == T_OP
            and self.tokens[self.pos + 2].text == "*"
        ):
            table = self.next().text
            self.next()
            self.next()
            return ast.SelectItem(expr=None, star=True, star_table=table)
        expr = self.expression()
        alias = None
        if self.accept_kw("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == T_IDENT:
            alias = self.next().text
        return ast.SelectItem(expr=expr, alias=alias)

    def table_source(self):
        left: object = self.table_ref()
        while True:
            kind = None
            if self.accept_kw("JOIN"):
                kind = "INNER"
            elif self.accept_kw("INNER"):
                self.expect_kw("JOIN")
                kind = "INNER"
            elif self.accept_kw("LEFT"):
                self.expect_kw("JOIN")
                kind = "LEFT"
            elif self.accept_kw("CROSS"):
                self.expect_kw("JOIN")
                kind = "CROSS"
            elif self.accept_op(","):
                kind = "CROSS"
            else:
                return left
            right = self.table_ref()
            on = None
            if kind != "CROSS" and self.accept_kw("ON"):
                on = self.expression()
            left = ast.Join(left=left, right=right, on=on, kind=kind)

    def table_ref(self) -> ast.TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_kw("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == T_IDENT:
            alias = self.next().text
        return ast.TableRef(name=name, alias=alias)

    # -- expressions (precedence climbing) ------------------------------------------

    def expression(self):
        return self.expr_or()

    def expr_or(self):
        left = self.expr_and()
        while self.accept_kw("OR"):
            left = ast.Binary("OR", left, self.expr_and())
        return left

    def expr_and(self):
        left = self.expr_not()
        while self.accept_kw("AND"):
            left = ast.Binary("AND", left, self.expr_not())
        return left

    def expr_not(self):
        if (
            self.peek().is_kw("NOT")
            and self.tokens[self.pos + 1].is_kw("EXISTS")
        ):
            self.next()
            self.next()
            self.expect_op("(")
            subquery = self.select()
            self.expect_op(")")
            return ast.Exists(select=subquery, negated=True)
        if self.accept_kw("NOT"):
            return ast.Unary("NOT", self.expr_not())
        if self.peek().is_kw("EXISTS"):
            self.next()
            self.expect_op("(")
            subquery = self.select()
            self.expect_op(")")
            return ast.Exists(select=subquery)
        return self.expr_comparison()

    def expr_comparison(self):
        left = self.expr_additive()
        while True:
            negated = False
            if (
                self.peek().is_kw("NOT")
                and self.tokens[self.pos + 1].kind == T_KEYWORD
                and self.tokens[self.pos + 1].text in ("IN", "LIKE", "BETWEEN")
            ):
                self.next()
                negated = True
            token = self.peek()
            if token.kind == T_OP and token.text in ("=", "==", "!=", "<>", "<", "<=", ">", ">="):
                op = self.next().text
                op = {"==": "=", "<>": "!="}.get(op, op)
                left = ast.Binary(op, left, self.expr_additive())
            elif token.is_kw("IS"):
                self.next()
                neg = self.accept_kw("NOT") is not None
                self.expect_kw("NULL")
                left = ast.IsNull(operand=left, negated=neg)
            elif token.is_kw("IN"):
                self.next()
                self.expect_op("(")
                if self.peek().is_kw("SELECT"):
                    subquery = self.select()
                    self.expect_op(")")
                    left = ast.InSelect(operand=left, select=subquery, negated=negated)
                    continue
                items = [self.expression()]
                while self.accept_op(","):
                    items.append(self.expression())
                self.expect_op(")")
                left = ast.InList(operand=left, items=tuple(items), negated=negated)
            elif token.is_kw("LIKE"):
                self.next()
                left = ast.Binary("LIKE", left, self.expr_additive())
                if negated:
                    left = ast.Unary("NOT", left)
            elif token.is_kw("BETWEEN"):
                self.next()
                low = self.expr_additive()
                self.expect_kw("AND")
                high = self.expr_additive()
                left = ast.Between(operand=left, low=low, high=high, negated=negated)
            else:
                if negated:
                    raise SqlSyntaxError("dangling NOT")
                return left

    def expr_additive(self):
        left = self.expr_multiplicative()
        while True:
            token = self.peek()
            if token.kind == T_OP and token.text in ("+", "-", "||"):
                op = self.next().text
                left = ast.Binary(op, left, self.expr_multiplicative())
            else:
                return left

    def expr_multiplicative(self):
        left = self.expr_unary()
        while True:
            token = self.peek()
            if token.kind == T_OP and token.text in ("*", "/", "%"):
                op = self.next().text
                left = ast.Binary(op, left, self.expr_unary())
            else:
                return left

    def expr_unary(self):
        if self.accept_op("-"):
            return ast.Unary("-", self.expr_unary())
        if self.accept_op("+"):
            return ast.Unary("+", self.expr_unary())
        return self.expr_primary()

    def expr_primary(self):
        token = self.peek()
        if token.kind == T_NUMBER:
            self.next()
            return ast.Literal(token.value)
        if token.kind == T_STRING:
            self.next()
            return ast.Literal(token.value)
        if token.kind == T_BLOB:
            self.next()
            return ast.Literal(token.value)
        if token.kind == T_PARAM:
            self.next()
            if token.value is not None:
                return ast.Parameter(index=token.value - 1)
            index = self._param_auto
            self._param_auto += 1
            return ast.Parameter(index=index)
        if token.is_kw("NULL"):
            self.next()
            return ast.Literal(SqlNull)
        if token.is_kw("CASE"):
            return self.case_expression()
        if self.accept_op("("):
            if self.peek().is_kw("SELECT"):
                subquery = self.select()
                self.expect_op(")")
                return ast.ScalarSubquery(select=subquery)
            expr = self.expression()
            self.expect_op(")")
            return expr
        if token.kind == T_IDENT or (
            token.kind == T_KEYWORD and token.text in ("TEXT", "BLOB", "REAL", "INTEGER")
        ):
            name = self.next().text
            if self.accept_op("("):
                return self.function_call(name)
            if self.accept_op("."):
                column = self.expect_ident()
                return ast.ColumnRef(name=column, table=name)
            return ast.ColumnRef(name=name)
        raise SqlSyntaxError(f"unexpected token {token.text!r} in expression")

    def function_call(self, name: str) -> ast.FunctionCall:
        if self.accept_op("*"):
            self.expect_op(")")
            return ast.FunctionCall(name=name.lower(), args=(), star=True)
        distinct = self.accept_kw("DISTINCT") is not None
        args = []
        if not self.accept_op(")"):
            args.append(self.expression())
            while self.accept_op(","):
                args.append(self.expression())
            self.expect_op(")")
        return ast.FunctionCall(
            name=name.lower(), args=tuple(args), distinct=distinct
        )

    def case_expression(self) -> ast.CaseExpr:
        self.expect_kw("CASE")
        operand = None
        if not self.peek().is_kw("WHEN"):
            operand = self.expression()
        whens = []
        while self.accept_kw("WHEN"):
            condition = self.expression()
            self.expect_kw("THEN")
            whens.append((condition, self.expression()))
        default = self.expression() if self.accept_kw("ELSE") else None
        self.expect_kw("END")
        if not whens:
            raise SqlSyntaxError("CASE requires at least one WHEN")
        return ast.CaseExpr(operand=operand, whens=tuple(whens), default=default)
