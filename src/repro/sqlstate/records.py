"""Row and key serialization.

Records are tag-prefixed value sequences (a simplified cousin of SQLite's
serial-type records).  Index keys use an *order-preserving* encoding so
B+tree byte comparison matches SQL value comparison — the property the
b-tree relies on for range scans.
"""

from __future__ import annotations

import struct

from repro.common.errors import SqlError
from repro.sqlstate.values import SqlNull, SqlValue

_TAG_NULL = 0
_TAG_INT = 1
_TAG_REAL = 2
_TAG_TEXT = 3
_TAG_BLOB = 4

_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")


def encode_record(values: list[SqlValue]) -> bytes:
    """Serialize a row."""
    parts = [bytes([len(values)])] if len(values) < 256 else None
    if parts is None:
        raise SqlError("rows are limited to 255 columns")
    for value in values:
        if value is SqlNull:
            parts.append(bytes([_TAG_NULL]))
        elif isinstance(value, bool):
            parts.append(bytes([_TAG_INT]) + _I64.pack(int(value)))
        elif isinstance(value, int):
            parts.append(bytes([_TAG_INT]) + _I64.pack(value))
        elif isinstance(value, float):
            parts.append(bytes([_TAG_REAL]) + _F64.pack(value))
        elif isinstance(value, str):
            raw = value.encode()
            parts.append(bytes([_TAG_TEXT]) + _U32.pack(len(raw)) + raw)
        elif isinstance(value, bytes):
            parts.append(bytes([_TAG_BLOB]) + _U32.pack(len(value)) + value)
        else:
            raise SqlError(f"cannot store value of type {type(value).__name__}")
    return b"".join(parts)


def decode_record(data: bytes) -> list[SqlValue]:
    """Deserialize a row."""
    if not data:
        raise SqlError("empty record")
    count = data[0]
    pos = 1
    values: list[SqlValue] = []
    for _ in range(count):
        tag = data[pos]
        pos += 1
        if tag == _TAG_NULL:
            values.append(SqlNull)
        elif tag == _TAG_INT:
            values.append(_I64.unpack_from(data, pos)[0])
            pos += 8
        elif tag == _TAG_REAL:
            values.append(_F64.unpack_from(data, pos)[0])
            pos += 8
        elif tag in (_TAG_TEXT, _TAG_BLOB):
            length = _U32.unpack_from(data, pos)[0]
            pos += 4
            raw = data[pos : pos + length]
            pos += length
            values.append(raw.decode() if tag == _TAG_TEXT else bytes(raw))
        else:
            raise SqlError(f"corrupt record: unknown tag {tag}")
    return values


# -- order-preserving key encoding -------------------------------------------------
#
# Byte-comparable encoding: class byte first (NULL < numbers < text < blob),
# then a monotone payload.  Integers and reals share the number class via a
# sign-flipped float encoding (SQLite also compares ints and reals
# numerically).


def _encode_number(value: float) -> bytes:
    if value == 0.0:
        value = 0.0  # -0.0 compares equal to 0.0; encode them identically
    raw = _F64.pack(float(value))
    as_int = int.from_bytes(raw, "big")
    if as_int & (1 << 63):
        as_int ^= (1 << 64) - 1  # negative: flip everything
    else:
        as_int |= 1 << 63  # non-negative: flip the sign bit
    return as_int.to_bytes(8, "big")


def _escape_bytes(raw: bytes) -> bytes:
    """0x00-free encoding terminated by 0x00 0x00, preserving order."""
    return raw.replace(b"\x00", b"\x00\xff") + b"\x00\x00"


def encode_key(values: list[SqlValue]) -> bytes:
    """Order-preserving encoding of a key tuple."""
    parts = []
    for value in values:
        if value is SqlNull:
            parts.append(b"\x01")
        elif isinstance(value, (bool, int, float)):
            parts.append(b"\x02" + _encode_number(float(value)))
        elif isinstance(value, str):
            parts.append(b"\x03" + _escape_bytes(value.encode()))
        elif isinstance(value, bytes):
            parts.append(b"\x04" + _escape_bytes(value))
        else:
            raise SqlError(f"cannot index value of type {type(value).__name__}")
    return b"".join(parts)


def encode_rowid(rowid: int) -> bytes:
    """Table keys: rowids as big-endian signed 8-byte integers (offset so
    byte order equals numeric order)."""
    return struct.pack(">Q", rowid + (1 << 63))


def decode_rowid(key: bytes) -> int:
    return struct.unpack(">Q", key)[0] - (1 << 63)
