"""repro — a reproduction of Chondros, Kokordelis & Roussopoulos,
"On the Practicality of 'Practical' Byzantine Fault Tolerance"
(MIDDLEWARE 2012).

The package contains the complete system the paper studies and extends:

* :mod:`repro.pbft` — the Castro-Liskov PBFT middleware with all the
  toggleable optimizations of the paper's Table 1;
* :mod:`repro.membership` — the paper's dynamic client-membership
  extension (section 3.1);
* :mod:`repro.sqlstate` — the paper's SQL/ACID state abstraction: an
  embedded relational engine whose database file lives inside the PBFT
  state region (section 3.2);
* :mod:`repro.apps` — the motivating e-voting application and benchmark
  services;
* :mod:`repro.harness` — the evaluation harness that regenerates the
  paper's Table 1, Figure 4 and Figure 5;
* substrates: :mod:`repro.sim` (discrete-event kernel), :mod:`repro.net`
  (lossy datagram fabric), :mod:`repro.crypto` (MD5/UMAC-style
  MACs/Rabin/threshold signatures), :mod:`repro.statemgr` (paged state,
  Merkle tree, checkpoints).

Quick start::

    from repro.pbft import PbftConfig, build_cluster

    cluster = build_cluster(PbftConfig(), seed=1)
    result = cluster.invoke_and_wait(cluster.clients[0], b"hello")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
