"""The event-queue simulator and cancellable timers."""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.common.errors import ConfigError
from repro.common.hotpath import HOTPATH


class Timer:
    """A handle to a scheduled event that can be cancelled or rescheduled.

    PBFT replicas and clients use many timers (request retransmission,
    view-change, checkpoint, authenticator rebroadcast).  Cancellation is
    lazy: a cancelled timer stays in the heap but its callback is skipped.
    """

    __slots__ = ("deadline", "callback", "cancelled", "fired")

    def __init__(self, deadline: int, callback: Callable[[], None]) -> None:
        self.deadline = deadline
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the timer's callback from running."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the timer is armed and has neither fired nor been cancelled."""
        return not self.cancelled and not self.fired


class Simulator:
    """A deterministic discrete-event simulator.

    Events scheduled for the same instant run in scheduling order (a
    monotonically increasing tiebreak sequence guarantees heap stability),
    which keeps runs bit-for-bit reproducible.
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._queue: list[tuple[int, int, Timer]] = []
        self._seq: int = 0
        self._events_run: int = 0
        self._events_cancelled: int = 0
        self._max_queue_len: int = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Total number of event callbacks executed so far."""
        return self._events_run

    @property
    def events_scheduled(self) -> int:
        """Total number of events ever scheduled."""
        return self._seq

    @property
    def events_cancelled(self) -> int:
        """Events popped after cancellation (scheduled but never run)."""
        return self._events_cancelled

    @property
    def max_queue_len(self) -> int:
        """High-water mark of the event queue."""
        return self._max_queue_len

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def collect_metrics(self, registry, prefix: str = "sim.") -> None:
        """Publish event-loop counters into a metrics registry."""
        registry.gauge(prefix + "now_ns").set(self._now)
        registry.gauge(prefix + "events_run").set(self._events_run)
        registry.gauge(prefix + "events_scheduled").set(self._seq)
        registry.gauge(prefix + "events_cancelled").set(self._events_cancelled)
        registry.gauge(prefix + "pending_events").set(len(self._queue))
        registry.gauge(prefix + "max_queue_len").set(self._max_queue_len)

    def schedule(self, delay: int, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` to run ``delay`` nanoseconds from now."""
        if delay < 0:
            raise ConfigError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, when: int, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` to run at absolute time ``when``."""
        if when < self._now:
            raise ConfigError(
                f"cannot schedule at t={when} which is before now={self._now}"
            )
        timer = Timer(when, callback)
        heapq.heappush(self._queue, (when, self._seq, timer))
        self._seq += 1
        if len(self._queue) > self._max_queue_len:
            self._max_queue_len = len(self._queue)
        return timer

    def schedule_anonymous(self, when: int, callback: Callable[[], None]) -> None:
        """Schedule a fire-and-forget event with no cancellation handle.

        The hot path (packet delivery, CPU-queue completions) schedules an
        event per datagram and never cancels it, so the :class:`Timer`
        handle is pure overhead there; this queues the bare callable under
        the same ``(when, seq)`` ordering key, making the event sequence
        identical to :meth:`schedule_at`'s.  With the hot-path caches off
        it falls back to a full Timer, reproducing the seed's allocations.
        """
        if not HOTPATH.enabled:
            self.schedule_at(when, callback)
            return
        if when < self._now:
            raise ConfigError(
                f"cannot schedule at t={when} which is before now={self._now}"
            )
        heapq.heappush(self._queue, (when, self._seq, callback))
        self._seq += 1
        if len(self._queue) > self._max_queue_len:
            self._max_queue_len = len(self._queue)

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains (or ``max_events`` callbacks ran)."""
        budget = max_events if max_events is not None else float("inf")
        while self._queue and budget > 0:
            self._pop_and_run()
            budget -= 1

    def run_until(self, deadline: int) -> None:
        """Run all events with time <= ``deadline``; advance the clock to it.

        Events scheduled beyond the deadline stay queued, so a later
        ``run_until`` continues seamlessly.
        """
        while self._queue and self._queue[0][0] <= deadline:
            self._pop_and_run()
        if deadline > self._now:
            self._now = deadline

    def run_for(self, duration: int) -> None:
        """Run for ``duration`` nanoseconds of simulated time."""
        self.run_until(self._now + duration)

    def _pop_and_run(self) -> None:
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        if event.__class__ is Timer:
            if event.cancelled:
                self._events_cancelled += 1
                return
            event.fired = True
            self._events_run += 1
            event.callback()
        else:
            # A bare callable from schedule_anonymous: nothing to cancel.
            self._events_run += 1
            event()
