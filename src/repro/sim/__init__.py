"""Deterministic discrete-event simulation kernel.

The paper's evaluation ran on an 8-machine cluster; this reproduction runs
the same middleware on a simulated cluster instead (see DESIGN.md section 1).
The kernel is a classic event-queue simulator:

* time is an integer nanosecond counter (:mod:`repro.common.units`);
* events are ``(time, tiebreak, callback)`` triples in a binary heap;
* all randomness flows from named, seeded streams so a run is exactly
  reproducible from its seed.
"""

from repro.sim.simulator import Simulator, Timer
from repro.sim.rng import RngStreams

__all__ = ["Simulator", "Timer", "RngStreams"]
