"""Named, seeded random streams.

Different subsystems (packet loss, crypto key generation, workload think
times) must not share one RNG: an extra draw in one subsystem would perturb
every other and destroy run-to-run comparability across configurations.
Each stream is derived deterministically from the root seed and its name.
"""

from __future__ import annotations

import hashlib
import random


class RngStreams:
    """A factory of independent deterministic :class:`random.Random` streams."""

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same (seed, name) pair always yields an identically-seeded
        stream, regardless of creation order.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        material = f"{self._seed}:{name}".encode()
        derived = int.from_bytes(hashlib.sha256(material).digest()[:8], "big")
        stream = random.Random(derived)
        self._streams[name] = stream
        return stream
