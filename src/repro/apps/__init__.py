"""Applications over the PBFT middleware.

* :mod:`repro.apps.sqlapp` — the generic SQL application shim: a
  :class:`~repro.sqlstate.engine.Database` whose file lives in the PBFT
  state region (paper section 3.2);
* :mod:`repro.apps.evoting` — the paper's motivating application: an
  Internet e-voting service (vote = one row INSERT, results = read-only
  aggregate queries);
* :mod:`repro.apps.kvstore` — a small key-value service directly on the
  paged state (exercises the raw state-management contract);
* :mod:`repro.apps.unreplicated` — the centralized baseline the paper's
  introduction starts from.
"""

from repro.apps.sqlapp import SqlApplication, SqlCosts, encode_sql_op, decode_sql_op, decode_rows_reply
from repro.apps.evoting import EvotingApplication, EvotingClient
from repro.apps.preservation import PreservationApplication, ArchiveClient
from repro.apps.kvstore import KvApplication, encode_put, encode_get
from repro.apps.unreplicated import UnreplicatedServer, UnreplicatedClient, build_unreplicated

__all__ = [
    "SqlApplication",
    "SqlCosts",
    "encode_sql_op",
    "decode_sql_op",
    "decode_rows_reply",
    "EvotingApplication",
    "EvotingClient",
    "PreservationApplication",
    "ArchiveClient",
    "KvApplication",
    "encode_put",
    "encode_get",
    "UnreplicatedServer",
    "UnreplicatedClient",
    "build_unreplicated",
]
