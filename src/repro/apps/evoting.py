"""The e-voting service — the paper's motivating application.

"Clients (on behalf of users/voters) connect to the voting service, view
the election procedures to which they have a right to participate, send
the user's vote, and potentially reconnect at a later point to view the
progress and/or results of the election." (paper section 1)

Casting a vote is exactly the operation the paper benchmarks in section
4.2: "the insertion of a single row into a database table ... a simple
key and value text (representing voter identity and accompanying vote),
in addition to a timestamp and a random value" — the timestamp and random
value deliberately exercise the non-determinism up-calls so that replies
must still be identical across replicas.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.apps.sqlapp import (
    SqlApplication,
    SqlCosts,
    decode_rows_reply,
    encode_sql_op,
)
from repro.crypto.digests import md5_digest
from repro.pbft.client import PbftClient

EVOTING_SCHEMA = """
CREATE TABLE elections (
    id INTEGER PRIMARY KEY,
    title TEXT NOT NULL,
    open_from INTEGER,
    open_until INTEGER
);
CREATE TABLE candidates (
    id INTEGER PRIMARY KEY,
    election_id INTEGER NOT NULL,
    name TEXT NOT NULL
);
CREATE TABLE voters (
    id INTEGER PRIMARY KEY,
    election_id INTEGER NOT NULL,
    username TEXT NOT NULL,
    credential TEXT NOT NULL
);
CREATE UNIQUE INDEX idx_voter_election ON voters(username);
CREATE TABLE ballots (
    id INTEGER PRIMARY KEY,
    election_id INTEGER NOT NULL,
    voter TEXT NOT NULL,
    vote TEXT NOT NULL,
    cast_at INTEGER NOT NULL,
    receipt BLOB NOT NULL
);
CREATE UNIQUE INDEX idx_ballot_voter ON ballots(voter);
CREATE INDEX idx_ballot_election ON ballots(election_id);
"""


class EvotingApplication(SqlApplication):
    """The replicated server side of the voting service."""

    def __init__(self, acid: bool = True, costs: Optional[SqlCosts] = None) -> None:
        super().__init__(schema_sql=EVOTING_SCHEMA, acid=acid, costs=costs)

    def authorize_join(self, idbuf: bytes) -> Optional[int]:
        """Dynamic-membership authorization (paper section 3.1): the
        identification buffer carries ``username:credential``; the voter
        table is the credential store; the principal is the voter row id,
        so one voter can hold only one live session."""
        try:
            username, credential = idbuf.decode().split(":", 1)
        except (UnicodeDecodeError, ValueError):
            return None
        result = self.db.execute(
            "SELECT id, credential FROM voters WHERE username = ?", (username,)
        )
        if not result.rows:
            return None
        voter_id, stored = result.rows[0]
        if stored != credential:
            return None
        return int(voter_id)


class EvotingClient:
    """Client-side helper: turns voting actions into PBFT operations."""

    def __init__(self, client: PbftClient, username: str = "") -> None:
        self.client = client
        self.username = username

    # -- administration (run before the polls open) ------------------------------

    def create_election(self, election_id: int, title: str, callback=None):
        return self._submit(
            "INSERT INTO elections (id, title, open_from, open_until) "
            "VALUES (?, ?, 0, 9223372036854775807)",
            (election_id, title),
            callback,
        )

    def add_candidate(self, election_id: int, name: str, callback=None):
        return self._submit(
            "INSERT INTO candidates (election_id, name) VALUES (?, ?)",
            (election_id, name),
            callback,
        )

    def register_voter(
        self, election_id: int, username: str, credential: str, callback=None
    ):
        return self._submit(
            "INSERT INTO voters (election_id, username, credential) VALUES (?, ?, ?)",
            (election_id, username, credential),
            callback,
        )

    # -- voting --------------------------------------------------------------------

    def cast_vote(self, election_id: int, vote: str, callback=None):
        """The section 4.2 benchmark operation: one INSERT whose row also
        carries the agreed timestamp and an agreed 'random' receipt."""
        return self._submit(
            "INSERT INTO ballots (election_id, voter, vote, cast_at, receipt) "
            "VALUES (?, ?, ?, now(), randomblob(16))",
            (election_id, self.username or f"client{self.client.node_id}", vote),
            callback,
        )

    def view_results(self, election_id: int, callback=None):
        """Read-only tally; exercises the read-only optimization path."""
        op = encode_sql_op(
            "SELECT vote, COUNT(*) AS tally FROM ballots WHERE election_id = ? "
            "GROUP BY vote ORDER BY tally DESC, vote",
            (election_id,),
        )
        wrapped = self._wrap_callback(callback)
        return self.client.invoke(op, readonly=True, callback=wrapped)

    def my_ballot(self, callback=None):
        op = encode_sql_op(
            "SELECT vote, cast_at FROM ballots WHERE voter = ?",
            (self.username or f"client{self.client.node_id}",),
        )
        wrapped = self._wrap_callback(callback)
        return self.client.invoke(op, readonly=True, callback=wrapped)

    # -- plumbing --------------------------------------------------------------------

    def _submit(self, sql: str, params: tuple, callback):
        op = encode_sql_op(sql, params)
        return self.client.invoke(op, callback=self._wrap_callback(callback))

    @staticmethod
    def _wrap_callback(callback: Optional[Callable]):
        if callback is None:
            return None

        def wrapped(reply: bytes, latency: int) -> None:
            callback(decode_rows_reply(reply), latency)

        return wrapped


def voter_credential(username: str) -> str:
    """Deterministic demo credential (a real deployment distributes these
    out of band)."""
    return md5_digest(b"credential:" + username.encode()).hex()[:16]
