"""The centralized baseline.

"The current version is centralized" — the paper's starting point.  One
server process, plain request/reply datagrams, no agreement, no
replication, no fault tolerance.  Useful for putting the BFT overhead
numbers in context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.fabric import Address, Host, NetworkFabric, Packet
from repro.pbft.config import PbftConfig
from repro.pbft.replica import Application, NullApplication
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator

_SERVER_PORT = 7000
_CLIENT_PORT = 7100


@dataclass(frozen=True)
class _Req:
    client: int
    req_id: int
    op: bytes

    def body_size(self) -> int:
        return 13 + len(self.op)


@dataclass(frozen=True)
class _Resp:
    client: int
    req_id: int
    result: bytes

    def body_size(self) -> int:
        return 13 + len(self.result)


class UnreplicatedServer:
    """One host, one application, no replication."""

    def __init__(self, config: PbftConfig, host: Host, app: Application) -> None:
        self.config = config
        self.host = host
        self.app = app
        self.socket = host.fabric.bind(host.name, _SERVER_PORT)
        self.socket.on_receive(self._on_packet)
        self.executed = 0
        from repro.statemgr.pages import PagedState

        self.state = PagedState(config.state_pages, config.page_size)
        app.bind_state(self.state, config.library_pages * config.page_size)

    def _on_packet(self, packet: Packet) -> None:
        req = packet.payload
        if not isinstance(req, _Req):
            return
        costs = self.config.costs
        cost = costs.msg_recv_ns + costs.bytes_cost(req.body_size())
        self.host.execute(cost, lambda: self._serve(req, packet.src))

    def _serve(self, req: _Req, reply_to: Address) -> None:
        self.host.charge_cpu(self.app.execute_cost_ns(req.op, False))
        result = self.app.execute(req.op, req.client, self.host.local_time(), False)
        self.host.charge_cpu(self.app.take_accumulated_cost())
        self.state.end_of_execution()
        self.executed += 1
        resp = _Resp(client=req.client, req_id=req.req_id, result=result)
        costs = self.config.costs
        self.host.charge_cpu(costs.msg_send_ns + costs.bytes_cost(resp.body_size()))
        self.socket.send(reply_to, resp, resp.body_size(), kind="_Resp")


class UnreplicatedClient:
    """Closed-loop client for the baseline server."""

    def __init__(
        self, client_id: int, config: PbftConfig, host: Host, port: int, server: Address
    ) -> None:
        self.client_id = client_id
        self.config = config
        self.host = host
        self.server = server
        self.socket = host.fabric.bind(host.name, port)
        self.socket.on_receive(self._on_packet)
        self.next_req_id = 0
        self.pending: Optional[tuple[_Req, Callable, int]] = None
        self.completed_ops = 0
        self.latencies_ns: list[int] = []
        self._timer = None

    def invoke(self, op: bytes, callback=None) -> None:
        self.next_req_id += 1
        req = _Req(client=self.client_id, req_id=self.next_req_id, op=op)
        self.pending = (req, callback, self.host.sim.now)
        self._send(req)

    def _send(self, req: _Req) -> None:
        costs = self.config.costs
        self.host.charge_cpu(costs.msg_send_ns + costs.bytes_cost(req.body_size()))
        self.socket.send(self.server, req, req.body_size(), kind="_Req")
        self._timer = self.host.sim.schedule(
            self.config.client_retransmit_ns, self._retransmit
        )

    def _retransmit(self) -> None:
        if self.pending is not None:
            self._send(self.pending[0])

    def _on_packet(self, packet: Packet) -> None:
        resp = packet.payload
        if not isinstance(resp, _Resp) or self.pending is None:
            return
        req, callback, sent_at = self.pending
        if resp.req_id != req.req_id:
            return
        if self._timer is not None:
            self._timer.cancel()
        self.pending = None
        self.completed_ops += 1
        latency = self.host.sim.now - sent_at
        self.latencies_ns.append(latency)
        if callback is not None:
            callback(resp.result, latency)


@dataclass
class UnreplicatedDeployment:
    sim: Simulator
    fabric: NetworkFabric
    server: UnreplicatedServer
    clients: list[UnreplicatedClient]

    def run_for(self, duration_ns: int) -> None:
        self.sim.run_for(duration_ns)

    def total_completed(self) -> int:
        return sum(c.completed_ops for c in self.clients)


def build_unreplicated(
    config: Optional[PbftConfig] = None,
    seed: int = 1,
    app_factory: Optional[Callable[[], Application]] = None,
    client_hosts: int = 4,
) -> UnreplicatedDeployment:
    """Build the centralized deployment: 1 server host, N clients."""
    config = config or PbftConfig()
    sim = Simulator()
    rng = RngStreams(seed)
    fabric = NetworkFabric(sim, rng)
    server_host = fabric.add_host("server0")
    app = app_factory() if app_factory else NullApplication()
    server = UnreplicatedServer(config, server_host, app)
    hosts = [fabric.add_host(f"clienthost{i}") for i in range(client_hosts)]
    clients = []
    for index in range(config.num_clients):
        client = UnreplicatedClient(
            client_id=index,
            config=config,
            host=hosts[index % client_hosts],
            port=_CLIENT_PORT + index,
            server=(server_host.name, _SERVER_PORT),
        )
        clients.append(client)
    return UnreplicatedDeployment(sim=sim, fabric=fabric, server=server, clients=clients)
