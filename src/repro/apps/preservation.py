"""A digital-preservation archive — the paper's other motivating domain.

"More and more applications require utmost security and reliability to be
both trustworthy to users and successful in use (e.g, electronic voting
and digital preservation)." (paper section 1)

The archive stores document *fingerprints* and custody events in the
replicated database: ingest registers a document's digest; periodic audits
append integrity attestations (timestamped with the agreed clock); any
tampering with a stored fingerprint is detectable by quorum disagreement.
The access pattern is the classic preservation workload: write-once
ingest, append-only audit trail, read-mostly verification.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.apps.sqlapp import (
    SqlApplication,
    SqlCosts,
    decode_rows_reply,
    encode_sql_op,
)
from repro.crypto.digests import md5_digest
from repro.pbft.client import PbftClient

PRESERVATION_SCHEMA = """
CREATE TABLE documents (
    id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    fingerprint BLOB NOT NULL,
    size INTEGER NOT NULL,
    ingested_at INTEGER NOT NULL
);
CREATE UNIQUE INDEX idx_doc_name ON documents(name);
CREATE TABLE custody_events (
    id INTEGER PRIMARY KEY,
    document TEXT NOT NULL,
    event TEXT NOT NULL,
    detail TEXT,
    at INTEGER NOT NULL
);
CREATE INDEX idx_custody_doc ON custody_events(document);
"""


class PreservationApplication(SqlApplication):
    """The replicated archive service."""

    def __init__(self, acid: bool = True, costs: Optional[SqlCosts] = None) -> None:
        super().__init__(schema_sql=PRESERVATION_SCHEMA, acid=acid, costs=costs)


class ArchiveClient:
    """Client-side helper for archive operations."""

    def __init__(self, client: PbftClient) -> None:
        self.client = client

    def ingest(self, name: str, content: bytes, callback=None):
        """Register a document: its fingerprint enters custody, with the
        agreed ingest timestamp."""
        fingerprint = md5_digest(content)
        return self._submit(
            "INSERT INTO documents (name, fingerprint, size, ingested_at) "
            "VALUES (?, ?, ?, now())",
            (name, fingerprint, len(content)),
            callback,
        )

    def record_audit(self, name: str, verdict: str, callback=None):
        """Append an integrity attestation to the custody trail."""
        return self._submit(
            "INSERT INTO custody_events (document, event, detail, at) "
            "VALUES (?, 'audit', ?, now())",
            (name, verdict),
            callback,
        )

    def verify(self, name: str, content: bytes, callback: Callable):
        """Check content against the custody fingerprint (read-only)."""
        fingerprint = md5_digest(content)
        op = encode_sql_op(
            "SELECT fingerprint FROM documents WHERE name = ?", (name,)
        )

        def wrapped(reply: bytes, latency: int) -> None:
            rows = decode_rows_reply(reply)
            if not rows:
                callback("unknown-document", latency)
            elif rows[0][0] == fingerprint:
                callback("intact", latency)
            else:
                callback("TAMPERED", latency)

        return self.client.invoke(op, readonly=True, callback=wrapped)

    def custody_trail(self, name: str, callback=None):
        op = encode_sql_op(
            "SELECT event, detail, at FROM custody_events WHERE document = ? "
            "ORDER BY id",
            (name,),
        )
        return self.client.invoke(op, readonly=True, callback=self._wrap(callback))

    def holdings(self, callback=None):
        op = encode_sql_op(
            "SELECT COUNT(*), SUM(size) FROM documents"
        )
        return self.client.invoke(op, readonly=True, callback=self._wrap(callback))

    def _submit(self, sql: str, params: tuple, callback):
        return self.client.invoke(
            encode_sql_op(sql, params), callback=self._wrap(callback)
        )

    @staticmethod
    def _wrap(callback):
        if callback is None:
            return None

        def wrapped(reply: bytes, latency: int) -> None:
            callback(decode_rows_reply(reply), latency)

        return wrapped
