"""A key-value service directly on the paged state region.

Exercises the raw state-management contract (modify-before-write, fixed
slots) without the SQL layer — the style of application the original PBFT
library was actually comfortable with, for contrast with
:mod:`repro.apps.sqlapp`.
"""

from __future__ import annotations

import struct

from repro.common.errors import StateError
from repro.common.units import MICROSECOND
from repro.crypto.digests import md5_digest
from repro.pbft.replica import Application
from repro.pbft.wire import Decoder, Encoder

_OP_PUT = 0x01
_OP_GET = 0x02

_SLOT = struct.Struct(">B16sH")  # in_use, key digest, value length


def encode_put(key: bytes, value: bytes) -> bytes:
    return Encoder().u8(_OP_PUT).blob(key).blob(value).finish()


def encode_get(key: bytes) -> bytes:
    return Encoder().u8(_OP_GET).blob(key).finish()


def keys_of_op(op: bytes) -> tuple[bytes, ...]:
    """The keys a kv operation touches — the sharding layer's routing and
    locking unit (see :mod:`repro.shard`).  Unknown opcodes touch nothing."""
    dec = Decoder(op)
    kind = dec.u8()
    if kind in (_OP_PUT, _OP_GET):
        return (dec.blob(),)
    return ()


def op_is_readonly(op: bytes) -> bool:
    return op[:1] == bytes((_OP_GET,))


class KvApplication(Application):
    """Fixed-slot hash table over the state region.

    Keys hash to one of ``num_slots`` fixed-size slots (open addressing
    with linear probing); each slot holds the key digest and up to
    ``value_size`` bytes of value.
    """

    def __init__(self, num_slots: int = 512, value_size: int = 256) -> None:
        self.num_slots = num_slots
        self.value_size = value_size
        self.slot_size = _SLOT.size + value_size
        self.state = None
        self.app_offset = 0
        self.puts = 0
        self.gets = 0

    def bind_state(self, state, app_offset: int) -> None:
        needed = self.num_slots * self.slot_size
        if app_offset + needed > state.size:
            raise StateError(
                f"kv store needs {needed} bytes, state has "
                f"{state.size - app_offset}"
            )
        self.state = state
        self.app_offset = app_offset

    def execute(self, op: bytes, client_id: int, nondet_ts: int, readonly: bool) -> bytes:
        dec = Decoder(op)
        kind = dec.u8()
        if kind == _OP_PUT:
            key = dec.blob()
            value = dec.blob()
            return self._put(key, value)
        if kind == _OP_GET:
            return self._get(dec.blob())
        return b"\x00ERR bad op"

    def execute_cost_ns(self, op: bytes, readonly: bool) -> int:
        return 5 * MICROSECOND

    def _slot_offset(self, slot: int) -> int:
        return self.app_offset + slot * self.slot_size

    def _find_slot(self, digest: bytes) -> tuple[int, bool]:
        """(slot, exists): the slot holding the key, or the first free one."""
        start = int.from_bytes(digest[:4], "big") % self.num_slots
        first_free = -1
        for probe in range(self.num_slots):
            slot = (start + probe) % self.num_slots
            raw = self.state.read(self._slot_offset(slot), _SLOT.size)
            in_use, stored, _length = _SLOT.unpack(raw)
            if in_use and stored == digest:
                return slot, True
            if not in_use and first_free < 0:
                first_free = slot
        if first_free < 0:
            raise StateError("kv store is full")
        return first_free, False

    def _put(self, key: bytes, value: bytes) -> bytes:
        if len(value) > self.value_size:
            return b"\x00ERR value too large"
        digest = md5_digest(key)
        slot, _exists = self._find_slot(digest)
        offset = self._slot_offset(slot)
        self.state.modify(offset, self.slot_size)
        self.state.write(offset, _SLOT.pack(1, digest, len(value)) + value)
        self.puts += 1
        return b"\x01OK"

    def _get(self, key: bytes) -> bytes:
        digest = md5_digest(key)
        slot, exists = self._find_slot(digest)
        self.gets += 1
        if not exists:
            return b"\x00MISS"
        raw = self.state.read(self._slot_offset(slot), self.slot_size)
        _in_use, _digest, length = _SLOT.unpack(raw[: _SLOT.size])
        return b"\x01" + raw[_SLOT.size : _SLOT.size + length]

    # -- live rebalancing hooks (driven by repro.shard.txapp) -----------------
    # The migration unit for a kv store is a hash range over the first four
    # digest bytes — the same position the shard directory routes by, so
    # "what the directory sends here" and "what migration moves away" are
    # the same set by construction.

    def _range_of(self, unit) -> tuple[int, int]:
        if unit[0] != "range":
            raise StateError("kv stores migrate key ranges, not tables")
        return unit[1], unit[2]

    def migrate_export(self, unit, cursor: int, budget: int):
        """Serialize (digest, value) records for slots >= ``cursor`` whose
        position falls in the unit, up to ~``budget`` bytes; returns
        (chunk, next_cursor, done).  Deterministic given frozen contents."""
        lo, hi = self._range_of(unit)
        records = []
        used = 0
        slot = cursor
        while slot < self.num_slots and used < budget:
            raw = self.state.read(self._slot_offset(slot), self.slot_size)
            in_use, digest, length = _SLOT.unpack(raw[: _SLOT.size])
            if in_use and lo <= int.from_bytes(digest[:4], "big") < hi:
                records.append((digest, raw[_SLOT.size : _SLOT.size + length]))
                used += _SLOT.size + length
            slot += 1
        enc = Encoder()
        enc.sequence(records, lambda e, r: e.raw(r[0]).blob(r[1]))
        return enc.finish(), slot, slot >= self.num_slots

    def migrate_install(self, unit, chunk: bytes) -> None:
        self._range_of(unit)
        dec = Decoder(chunk)
        for _ in range(dec.u32()):
            digest = dec.raw(16)
            value = dec.blob()
            slot, _exists = self._find_slot(digest)
            offset = self._slot_offset(slot)
            self.state.modify(offset, self.slot_size)
            self.state.write(offset, _SLOT.pack(1, digest, len(value)) + value)

    def migrate_purge(self, unit) -> None:
        """Clear every slot in the unit.  Safe under linear probing because
        ``_find_slot`` scans all slots rather than stopping at the first
        free one, so emptying a slot never hides a later chain member."""
        lo, hi = self._range_of(unit)
        empty = _SLOT.pack(0, bytes(16), 0)
        for slot in range(self.num_slots):
            offset = self._slot_offset(slot)
            raw = self.state.read(offset, _SLOT.size)
            in_use, digest, _length = _SLOT.unpack(raw)
            if in_use and lo <= int.from_bytes(digest[:4], "big") < hi:
                self.state.modify(offset, _SLOT.size)
                self.state.write(offset, empty)
