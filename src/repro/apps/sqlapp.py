"""The SQL application shim: PBFT state region + embedded engine.

This is the paper's section 3.2 architecture end to end:

* the **database file** is a sparse file mapped onto the PBFT state
  region's application partition (every write triggers the library's
  modify notification, so checkpointing/state transfer just work);
* the **rollback journal** lives on the replica's local simulated disk —
  it is recovery scaffolding, not replicated state — and its fsyncs are
  what make ACID cost what it costs (section 4.2);
* **non-determinism** (``now()``, ``random()``) comes from the agreed
  pre-prepare data via :class:`~repro.sqlstate.vfs.VfsEnvironment`.

Operations are encoded SQL statements with parameters; replies are
encoded result rows (or an affected-row count).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SqlError
from repro.common.units import MICROSECOND
from repro.crypto.digests import md5_digest
from repro.pbft.replica import Application
from repro.pbft.wire import Decoder, Encoder
from repro.sqlstate.engine import Database, ResultSet
from repro.sqlstate.records import decode_record, encode_record
from repro.sqlstate.vfs import DiskModel, MemoryVfsFile, StateRegionVfsFile, VfsEnvironment
from repro.sqlstate.values import SqlNull

_OP_SQL = 0x01


def encode_sql_op(sql: str, params: tuple = ()) -> bytes:
    """Encode one SQL operation for submission through PBFT."""
    normalized = [None if p is SqlNull else p for p in params]
    record_params = [SqlNull if p is None else p for p in normalized]
    return (
        Encoder()
        .u8(_OP_SQL)
        .blob(sql.encode())
        .blob(encode_record(record_params))
        .finish()
    )


def decode_sql_op(op: bytes) -> tuple[str, tuple]:
    dec = Decoder(op)
    if dec.u8() != _OP_SQL:
        raise SqlError("not a SQL operation")
    sql = dec.blob().decode()
    params = tuple(decode_record(dec.blob()))
    return sql, params


_TABLE_INTRODUCERS = frozenset({"from", "into", "update", "join", "table"})
_STOP_WORDS = frozenset(
    {"select", "where", "set", "values", "on", "as", "order", "group",
     "limit", "inner", "left", "outer", "cross", "if", "not", "exists"}
)


def tables_of_sql(sql: str) -> tuple[str, ...]:
    """The table names a statement references, in first-mention order.

    This is the sharding layer's routing unit for SQL (tables, not rows:
    SQL tables are few and heavy, so :mod:`repro.shard` places and locks
    whole tables).  A word-level scan over the statement — after FROM /
    INTO / UPDATE / JOIN / TABLE, identifiers (comma-separated lists
    included) are tables — is exact for the dialect the embedded engine
    accepts, which has no subqueries in FROM and no quoted table names.
    """
    words = sql.replace(",", " , ").replace("(", " ( ").replace(";", " ").split()
    tables: list[str] = []
    # "idle" -> introducer seen: "table" -> name taken: "alias" (a comma
    # returns to "table" so comma-separated FROM lists keep collecting).
    state = "idle"
    for word in words:
        lowered = word.lower()
        if lowered in _TABLE_INTRODUCERS:
            state = "table"
            continue
        if state == "table":
            if lowered in _STOP_WORDS or not (word[0].isalpha() or word[0] == "_"):
                state = "idle"
                continue
            if lowered not in tables:
                tables.append(lowered)
            state = "alias"
        elif state == "alias":
            if lowered == ",":
                state = "table"
            elif lowered in _STOP_WORDS or not (word[0].isalpha() or word[0] == "_"):
                state = "idle"
            # any other identifier is an alias: stay, a comma may follow
    return tuple(tables)


def encode_rows_reply(result: ResultSet) -> bytes:
    enc = Encoder().u8(1).u32(len(result.rows))
    for row in result.rows:
        enc.blob(encode_record(list(row)))
    return enc.finish()


def decode_rows_reply(reply: bytes):
    """Decode a reply: list of row tuples, or an int count, or None."""
    dec = Decoder(reply)
    kind = dec.u8()
    if kind == 0:
        return None
    if kind == 1:
        count = dec.u32()
        return [tuple(decode_record(dec.blob())) for _ in range(count)]
    if kind == 2:
        return dec.u64()
    if kind == 3:
        raise SqlError(dec.blob().decode())
    raise SqlError(f"bad reply kind {kind}")


@dataclass(frozen=True)
class SqlCosts:
    """Simulated costs of SQL work (calibrated for Figure 5 / section 4.2)."""

    parse_ns: int = 40 * MICROSECOND
    per_row_written_ns: int = 60 * MICROSECOND
    per_row_scanned_ns: int = 4 * MICROSECOND
    per_page_journaled_ns: int = 25 * MICROSECOND
    fsync_ns: int = 400 * MICROSECOND
    disk_write_ns: int = 15 * MICROSECOND


class SqlApplication(Application):
    """A PBFT application whose whole state is a relational database."""

    def __init__(
        self,
        schema_sql: str = "",
        acid: bool = True,
        costs: SqlCosts | None = None,
    ) -> None:
        self.schema_sql = schema_sql
        self.acid = acid
        self.costs = costs or SqlCosts()
        self.env = VfsEnvironment()
        self.db: Database | None = None
        self.state = None
        self.app_offset = 0
        self._accumulated_ns = 0
        self._request_counter = 0
        self._tracer = None
        self._track = ""
        self._metrics: tuple | None = None  # engine counters, see attach_obs
        self.disk = DiskModel(
            charge=self._charge,
            sync_ns=self.costs.fsync_ns,
            write_ns_per_page=self.costs.disk_write_ns,
        )

    # -- Application interface ------------------------------------------------------

    def bind_state(self, state, app_offset: int) -> None:
        self.state = state
        self.app_offset = app_offset
        self._open_database(fresh=True)

    def _open_database(self, fresh: bool) -> None:
        file = StateRegionVfsFile(self.state, self.app_offset)
        journal_file = MemoryVfsFile(disk=self.disk) if self.acid else None
        self.db = Database(
            file=file,
            journal_file=journal_file,
            env=self.env,
            journal=self.acid,
        )
        if self._tracer is not None:
            self.db.on_statement = self._on_statement
        if fresh and self.schema_sql and not self.db.table_names():
            self.db.executescript(self.schema_sql)
            self.state.end_of_execution()

    def attach_obs(self, obs, track: str) -> None:
        """Put per-statement and per-fsync timing on the replica's track,
        and register the engine's planner/cache counters."""
        self._tracer = obs.tracer
        self._track = track
        if self.db is not None:
            self.db.on_statement = self._on_statement
        self.disk.observer = self._on_disk_op
        registry = getattr(obs, "registry", None)
        if registry is not None:
            self._metrics = tuple(
                registry.counter(f"{track}.sql.{name}")
                for name in (
                    "rows_scanned",
                    "index_lookups",
                    "plan_cache_hits",
                    "plan_cache_misses",
                    "buffer_pool_hits",
                    "buffer_pool_misses",
                )
            )

    def _engine_counters(self) -> tuple[int, ...]:
        db = self.db
        return (
            db.executor.rows_scanned,
            db.executor.index_lookups,
            db.plan_cache_hits,
            db.plan_cache_misses,
            db.pager.cache_hits,
            db.pager.cache_misses,
        )

    def _on_statement(self, stmt_kind: str, stats) -> None:
        tracer = self._tracer
        if tracer is None or not tracer.enabled:
            return
        now = tracer.clock()
        cost = (
            self._statement_cost_ns(stats)
            + stats.syncs * self.costs.fsync_ns
            + stats.pages_written * self.costs.disk_write_ns
        )
        tracer.complete(
            self._track, f"sql.{stmt_kind}", now, now + cost, cat="sql",
            args={
                "rows_scanned": stats.rows_scanned,
                "rows_written": stats.rows_written,
                "pages_journaled": stats.pages_journaled,
                "pages_written": stats.pages_written,
                "syncs": stats.syncs,
            },
        )

    def _on_disk_op(self, kind: str, cost_ns: int) -> None:
        tracer = self._tracer
        if tracer is None or not tracer.enabled or kind != "sync":
            return
        tracer.event(
            self._track, "fsync", cat="sql.disk", args={"cost_ns": cost_ns}
        )

    def on_state_installed(self) -> None:
        """Pages were replaced wholesale: reopen over the new contents.

        The journal is local scaffolding; the transferred state is a
        committed snapshot, so the journal is simply discarded.
        """
        if self.db is not None and self.db.journal_file is not None:
            self.db.journal_file.truncate(0)
        self._open_database(fresh=False)

    def execute(self, op: bytes, client_id: int, nondet_ts: int, readonly: bool) -> bytes:
        sql, params = decode_sql_op(op)
        self._request_counter += 1
        # Seed from (agreed timestamp, client, operation bytes): identical
        # at every replica AND stable across log replay/rollback, so
        # random() results never diverge the state roots.
        seed = md5_digest(
            nondet_ts.to_bytes(8, "big", signed=True)
            + client_id.to_bytes(8, "big")
            + md5_digest(op)
        )
        self.env.set_from_nondet(nondet_ts, seed)
        before = self._engine_counters() if self._metrics is not None else None
        try:
            try:
                result = self.db.execute(sql, params)
            except SqlError as exc:
                # Errors are part of the deterministic reply, not a crash.
                message = str(exc).encode()
                return Encoder().u8(3).blob(message).finish()
        finally:
            if before is not None:
                after = self._engine_counters()
                for counter, was, now in zip(self._metrics, before, after):
                    if now > was:
                        counter.inc(now - was)
        self._accumulated_ns += self._statement_cost_ns(self.db.last_stats)
        if isinstance(result, ResultSet):
            return encode_rows_reply(result)
        if isinstance(result, int):
            return Encoder().u8(2).u64(result).finish()
        return Encoder().u8(0).finish()

    def _statement_cost_ns(self, stats) -> int:
        """Engine CPU cost of one statement (excludes journal disk time,
        which :class:`DiskModel` charges separately)."""
        return (
            self.costs.parse_ns
            + stats.rows_written * self.costs.per_row_written_ns
            + stats.rows_scanned * self.costs.per_row_scanned_ns
            + stats.pages_journaled * self.costs.per_page_journaled_ns
        )

    def execute_cost_ns(self, op: bytes, readonly: bool) -> int:
        return 0  # all cost is accounted dynamically via take_accumulated_cost

    def take_accumulated_cost(self) -> int:
        """Simulated time accrued by the last execution (engine work plus
        journal disk traffic); the replica charges it to its host CPU."""
        cost = self._accumulated_ns
        self._accumulated_ns = 0
        return cost

    def _charge(self, ns: int) -> None:
        self._accumulated_ns += ns

    def authorize_join(self, idbuf: bytes) -> int | None:
        """Default authorization: any non-empty identification buffer is a
        principal (hash of the buffer).  Applications override."""
        if not idbuf:
            return None
        return int.from_bytes(md5_digest(idbuf)[:6], "big")

    # -- live rebalancing hooks (driven by repro.shard.txapp) -----------------
    # The migration unit for SQL is a whole table — the same unit the
    # shard directory places and the transaction layer locks.  The
    # destination group's schema must already define the table (groups are
    # built from a common schema); rows arrive as encoded records and are
    # re-inserted positionally, so rowids are reassigned deterministically
    # at the destination.

    def _table_of(self, unit) -> str:
        if unit[0] != "table":
            raise SqlError("SQL applications migrate tables, not key ranges")
        return unit[1]

    def migrate_export(self, unit, cursor: int, budget: int):
        """Rows ``cursor..`` of ``SELECT * FROM <table>``, up to ~``budget``
        encoded bytes; returns (chunk, next_cursor, done).  The scan order
        is the B-tree's, identical at every replica; the table is frozen,
        so re-running the SELECT per chunk sees stable contents."""
        table = self._table_of(unit)
        result = self.db.execute(f"SELECT * FROM {table}")
        rows = result.rows if isinstance(result, ResultSet) else []
        self._accumulated_ns += self._statement_cost_ns(self.db.last_stats)
        records = []
        used = 0
        index = cursor
        while index < len(rows) and used < budget:
            record = encode_record(list(rows[index]))
            records.append(record)
            used += len(record)
            index += 1
        enc = Encoder()
        enc.sequence(records, lambda e, r: e.blob(r))
        return enc.finish(), index, index >= len(rows)

    def migrate_install(self, unit, chunk: bytes) -> None:
        table = self._table_of(unit)
        dec = Decoder(chunk)
        for _ in range(dec.u32()):
            row = tuple(decode_record(dec.blob()))
            placeholders = ", ".join("?" for _ in row)
            self.db.execute(
                f"INSERT INTO {table} VALUES ({placeholders})", row
            )
            self._accumulated_ns += self._statement_cost_ns(self.db.last_stats)

    def migrate_purge(self, unit) -> None:
        table = self._table_of(unit)
        self.db.execute(f"DELETE FROM {table}")
        self._accumulated_ns += self._statement_cost_ns(self.db.last_stats)
