"""Per-session state — the paper's section 3.3.2 proposal, implemented.

"The current implementation of the PBFT protocol purposely ignores the
notion of client-specific state. ... With our addition of application
level sign-on messages to the protocol, resulting in identification of
specific sessions, a library-level subsystem can be developed that will
map parts of the state to a specific session.  This would enable easier
porting of stateful applications to the BFT world."

:class:`SessionStateManager` gives each joined client a fixed-size slot
inside the *library partition* of the replicated state region: written
during request execution (so it is totally ordered and deterministic),
checkpointed and transferred with everything else, and wiped when the
session ends (Leave, termination by a new session, or stale-session GC).
"""

from __future__ import annotations

import struct

from repro.common.errors import StateError

_SLOT_HEADER = struct.Struct(">H")  # used length


class SessionStateManager:
    """Fixed-size per-session slots in the library partition."""

    def __init__(self, replica, base_offset: int, slot_bytes: int = 128) -> None:
        self.replica = replica
        self.base_offset = base_offset
        self.slot_bytes = slot_bytes
        self.capacity = replica.config.max_node_entries
        needed = base_offset + self.capacity * self.stride
        available = replica.config.library_pages * replica.config.page_size
        if needed > available:
            raise StateError(
                f"session state needs {needed} library bytes, "
                f"partition has {available}"
            )

    @property
    def stride(self) -> int:
        return _SLOT_HEADER.size + self.slot_bytes

    def _offset_for(self, client_id: int) -> int:
        membership = self.replica.membership
        if membership is None or client_id not in membership.redirection:
            raise StateError(f"client {client_id} has no live session")
        slot = membership.redirection[client_id]
        return self.base_offset + slot * self.stride

    # -- the application-facing API -------------------------------------------

    def read(self, client_id: int) -> bytes:
        """The session's stored state (empty bytes if never written)."""
        offset = self._offset_for(client_id)
        state = self.replica.state
        (length,) = _SLOT_HEADER.unpack(state.read(offset, _SLOT_HEADER.size))
        if length == 0 or length > self.slot_bytes:
            return b""
        return state.read(offset + _SLOT_HEADER.size, length)

    def write(self, client_id: int, data: bytes) -> None:
        """Store session state; must run inside request execution so every
        replica applies the identical write."""
        if len(data) > self.slot_bytes:
            raise StateError(
                f"session state of {len(data)} bytes exceeds the "
                f"{self.slot_bytes}-byte slot"
            )
        offset = self._offset_for(client_id)
        state = self.replica.state
        state.modify(offset, self.stride)
        state.write(offset, _SLOT_HEADER.pack(len(data)) + data)

    # -- lifecycle hooks (called by the membership manager) ----------------------

    def wipe_slot(self, slot: int) -> None:
        """Session ended: its state must not leak to the slot's next owner."""
        offset = self.base_offset + slot * self.stride
        state = self.replica.state
        state.modify(offset, self.stride)
        state.write(offset, bytes(self.stride))
