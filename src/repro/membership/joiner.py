"""Client-side join/leave flows (paper section 3.1, Figure 2).

The join sequence reproduced here is exactly the paper's UML diagram:

1. the client multicasts its address, public key and a nonce (phase 1);
2. each replica answers with a deterministic challenge, sent to the
   *claimed* address;
3. after f+1 matching challenges the client computes the response and
   submits phase 2 as a *system request*, which is totally ordered with
   all other requests and executed by the middleware on every replica;
4. the reply carries the newly assigned client identifier, under which all
   further requests are authenticated with the session keys shipped in
   phase 2.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.errors import ProtocolError
from repro.membership.messages import (
    Join2Payload,
    JoinChallenge,
    JoinPhase1,
    REPLY_PREFIX_LEN,
    compute_response,
    encode_leave_op,
)
from repro.pbft.client import PbftClient, PendingOp
from repro.pbft.messages import Request
from repro.pbft.node import replica_address


class JoinState:
    """Tracks one client's in-progress join."""

    def __init__(
        self,
        client: PbftClient,
        idbuf: bytes,
        rng,
        callback: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.client = client
        self.idbuf = idbuf
        self.callback = callback
        self.nonce = bytes(rng.randrange(256) for _ in range(16))
        self.challenges: dict[bytes, set[int]] = {}
        self.phase2_sent = False
        self.completed = False
        self.timer = None

    # -- phase 1 -------------------------------------------------------------------

    def start(self) -> None:
        self.client.join_state = self
        self._send_phase1()

    def _phase1_msg(self) -> JoinPhase1:
        pair = self.client.keys.client_keys[self.client.node_id]
        host, port = self.client.socket.address
        bits = pair.public.n.bit_length()
        return JoinPhase1(
            temp_client=self.client.node_id,
            pubkey_n=pair.public.n.to_bytes((bits + 7) // 8, "big"),
            nonce=self.nonce,
            host=host,
            port=port,
        )

    def _send_phase1(self) -> None:
        msg = self._phase1_msg()
        for rid in range(self.client.config.n):
            # Self-certifying: the public key rides in the message itself,
            # and address ownership is what the challenge round proves.
            self.client.send_plain(replica_address(rid, self.client.group_prefix), msg)
        self.timer = self.client.host.sim.schedule(
            self.client.config.client_retransmit_ns, self._on_timeout
        )

    def _on_timeout(self) -> None:
        if self.completed or self.phase2_sent:
            return
        self._send_phase1()

    # -- challenge collection ------------------------------------------------------------

    def dispatch(self, env) -> None:
        if isinstance(env.msg, JoinChallenge):
            self.on_challenge(env.msg)

    def on_challenge(self, msg: JoinChallenge) -> None:
        if self.phase2_sent or msg.temp_client != self.client.node_id:
            return
        voters = self.challenges.setdefault(msg.challenge, set())
        voters.add(msg.sender)
        if len(voters) >= self.client.config.weak_quorum:
            self._send_phase2(msg.challenge)

    # -- phase 2 ---------------------------------------------------------------------------

    def _send_phase2(self, challenge: bytes) -> None:
        self.phase2_sent = True
        if self.timer is not None:
            self.timer.cancel()
        client = self.client
        phase1 = self._phase1_msg()
        payload = Join2Payload(
            temp_client=client.node_id,
            pubkey_n=phase1.pubkey_n,
            nonce=self.nonce,
            response=compute_response(challenge, self.nonce),
            idbuf=self.idbuf,
            session_keys=tuple(
                (rid, key.key)
                for (kind, rid), key in sorted(client.session_keys.items())
                if kind == "replica"
            ),
            host=phase1.host,
            port=phase1.port,
        )
        client.next_req_id += 1
        request = Request(
            client=client.node_id,
            req_id=client.next_req_id,
            op=payload.encode_op(),
            big=True,  # joins are always multicast to the whole group
        )
        client.pending = PendingOp(
            request=request,
            callback=self._on_join_reply,
            sent_at=client.host.sim.now,
            signed=True,
        )
        client._transmit(first=True)

    def _on_join_reply(self, result: bytes, latency: int) -> None:
        self.completed = True
        self.client.join_state = None
        if not result.startswith(b"JOINED"):
            raise ProtocolError(f"join refused: {result!r}")
        external_id = int.from_bytes(result[REPLY_PREFIX_LEN:], "big")
        # Keep signing material reachable under the service-assigned id.
        pair = self.client.keys.client_keys.get(self.client.node_id)
        if pair is not None:
            self.client.keys.client_keys[external_id] = pair
        self.client.node_id = external_id
        self.client.joined = True
        if self.callback is not None:
            self.callback(external_id)


def join_client(
    client: PbftClient,
    idbuf: bytes,
    rng,
    callback: Optional[Callable[[int], None]] = None,
) -> JoinState:
    """Begin the two-phase join for ``client``; returns the join tracker."""
    state = JoinState(client, idbuf, rng, callback)
    state.start()
    return state


def leave_client(
    client: PbftClient, callback: Optional[Callable[[bytes, int], None]] = None
) -> None:
    """Submit a Leave system request; the session ends when it executes."""
    client.invoke(encode_leave_op(), callback=callback)
