"""Membership wire messages and the system-operation payloads.

Phase 1 of the join and the challenge are plain transport-level messages
(there is nothing to order yet).  Phase 2 and Leave are *system requests*:
their payloads are packed into a normal :class:`repro.pbft.messages.Request`
op whose first byte is :data:`repro.pbft.replica.SYSTEM_OP_PREFIX`, giving
them the same total order as every application request.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ProtocolError
from repro.crypto.digests import DIGEST_SIZE, md5_digest
from repro.pbft.messages import WireMemo
from repro.pbft.wire import Decoder, Encoder

SYSTEM_OP_PREFIX = 0xFF
SYS_JOIN2 = 1
SYS_LEAVE = 2
SYS_RECONFIG = 3

# Replica-reconfiguration actions (ordered system ops; see
# repro.pbft.reconfig).  The group stays 3f+1 *slots*; a reconfiguration
# fills a vacant slot, vacates one, or replaces a slot's incarnation.
RECONFIG_JOIN = 1
RECONFIG_LEAVE = 2
RECONFIG_REPLACE = 3

# Join replies are b"JOINED" + 8-byte external id.
REPLY_PREFIX_LEN = 6


@dataclass(frozen=True)
class JoinPhase1(WireMemo):
    """Phase 1: announce address, public key, nonce, and await a challenge."""

    TAG = 20

    temp_client: int
    pubkey_n: bytes  # Rabin modulus, big-endian
    nonce: bytes
    host: str
    port: int

    def encode(self) -> bytes:
        return (
            Encoder()
            .u8(self.TAG)
            .u32(self.temp_client)
            .blob(self.pubkey_n)
            .blob(self.nonce)
            .blob(self.host.encode())
            .u16(self.port)
            .finish()
        )

    @classmethod
    def decode(cls, dec: Decoder) -> "JoinPhase1":
        if dec.u8() != cls.TAG:
            raise ProtocolError("not a JoinPhase1")
        return cls(
            temp_client=dec.u32(),
            pubkey_n=dec.blob(),
            nonce=dec.blob(),
            host=dec.blob().decode(),
            port=dec.u16(),
        )

    def body_size(self) -> int:
        return (
            1 + 4 + (4 + len(self.pubkey_n)) + (4 + len(self.nonce))
            + (4 + len(self.host.encode())) + 2
        )


@dataclass(frozen=True)
class JoinChallenge(WireMemo):
    """A replica's challenge, sent to the claimed address.

    The challenge is computed deterministically from the join data, so
    every correct replica issues the same one and phase 2 can be validated
    identically group-wide.
    """

    TAG = 21

    temp_client: int
    challenge: bytes
    sender: int

    def encode(self) -> bytes:
        return (
            Encoder()
            .u8(self.TAG)
            .u16(self.sender)
            .u32(self.temp_client)
            .raw(self.challenge)
            .finish()
        )

    @classmethod
    def decode(cls, dec: Decoder) -> "JoinChallenge":
        if dec.u8() != cls.TAG:
            raise ProtocolError("not a JoinChallenge")
        return cls(
            sender=dec.u16(), temp_client=dec.u32(), challenge=dec.raw(DIGEST_SIZE)
        )

    def body_size(self) -> int:
        return 1 + 2 + 4 + DIGEST_SIZE


def compute_challenge(pubkey_n: bytes, nonce: bytes, epoch: int = 0) -> bytes:
    """The deterministic challenge every correct replica derives."""
    return md5_digest(b"join-challenge:" + pubkey_n + nonce + epoch.to_bytes(8, "big"))


def compute_response(challenge: bytes, nonce: bytes) -> bytes:
    """The phase-2 response; requires having received the challenge."""
    return md5_digest(b"join-response:" + challenge + nonce)


@dataclass(frozen=True)
class Join2Payload:
    """The system-op payload of a phase-2 join request."""

    temp_client: int
    pubkey_n: bytes
    nonce: bytes
    response: bytes
    idbuf: bytes  # application-level identification buffer
    session_keys: tuple[tuple[int, bytes], ...]  # (replica, key) "encrypted"
    host: str
    port: int

    def encode_op(self) -> bytes:
        enc = Encoder().u8(SYSTEM_OP_PREFIX).u8(SYS_JOIN2)
        enc.u32(self.temp_client)
        enc.blob(self.pubkey_n)
        enc.blob(self.nonce)
        enc.raw(self.response)
        enc.blob(self.idbuf)
        enc.sequence(self.session_keys, lambda e, rk: e.u16(rk[0]).raw(rk[1]))
        enc.blob(self.host.encode())
        enc.u16(self.port)
        return enc.finish()

    @classmethod
    def decode_op(cls, op: bytes) -> "Join2Payload":
        dec = Decoder(op)
        if dec.u8() != SYSTEM_OP_PREFIX or dec.u8() != SYS_JOIN2:
            raise ProtocolError("not a Join2 system op")
        return cls(
            temp_client=dec.u32(),
            pubkey_n=dec.blob(),
            nonce=dec.blob(),
            response=dec.raw(DIGEST_SIZE),
            idbuf=dec.blob(),
            session_keys=tuple(dec.sequence(lambda d: (d.u16(), d.raw(16)))),
            host=dec.blob().decode(),
            port=dec.u16(),
        )


def encode_leave_op() -> bytes:
    return bytes([SYSTEM_OP_PREFIX, SYS_LEAVE])


@dataclass(frozen=True)
class ReconfigPayload:
    """The system-op payload of a replica-reconfiguration request.

    ``incarnation`` disambiguates successive occupants of the same slot:
    a replace bumps it, and the epoch gate rejects agreement traffic from
    the slot's previous incarnation afterwards.
    """

    action: int  # RECONFIG_JOIN | RECONFIG_LEAVE | RECONFIG_REPLACE
    slot: int
    incarnation: int

    def encode_op(self) -> bytes:
        return (
            Encoder()
            .u8(SYSTEM_OP_PREFIX)
            .u8(SYS_RECONFIG)
            .u8(self.action)
            .u16(self.slot)
            .u32(self.incarnation)
            .finish()
        )

    @classmethod
    def decode_op(cls, op: bytes) -> "ReconfigPayload":
        dec = Decoder(op)
        if dec.u8() != SYSTEM_OP_PREFIX or dec.u8() != SYS_RECONFIG:
            raise ProtocolError("not a Reconfig system op")
        action = dec.u8()
        if action not in (RECONFIG_JOIN, RECONFIG_LEAVE, RECONFIG_REPLACE):
            raise ProtocolError(f"unknown reconfig action {action}")
        return cls(action=action, slot=dec.u16(), incarnation=dec.u32())


def encode_reconfig_op(action: int, slot: int, incarnation: int = 0) -> bytes:
    return ReconfigPayload(
        action=action, slot=slot, incarnation=incarnation
    ).encode_op()


def system_op_kind(op: bytes) -> int | None:
    """Return SYS_JOIN2/SYS_LEAVE/SYS_RECONFIG for a system op, else None."""
    if len(op) >= 2 and op[0] == SYSTEM_OP_PREFIX:
        return op[1]
    return None
