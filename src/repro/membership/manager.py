"""The replica-side membership manager.

Owns the client table and the redirection table, executes Join/Leave
system requests deterministically, and persists the table into the
*library partition* of the shared state region so membership state is
checkpointed, transferred, and rolled back with everything else — the
paper's requirement that "the replicas need to identify each client in an
identical (deterministic) manner ... this leads us to store the client
identifiers in the shared state of the service."
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ProtocolError
from repro.crypto.mac import MacKey
from repro.crypto.rabin import RabinPublicKey
from repro.membership.messages import (
    Join2Payload,
    JoinChallenge,
    JoinPhase1,
    SYS_JOIN2,
    SYS_LEAVE,
    SYS_RECONFIG,
    compute_challenge,
    compute_response,
    system_op_kind,
)

# Fixed-size slot layout inside the library partition, so per-request
# activity timestamps update in place without rewriting the whole table.
_HEADER = struct.Struct(">IQI")  # magic, next_external_id, entry_count
_MAGIC = 0x4D454D42  # "MEMB"
_ENTRY = struct.Struct(">BIqq16sH64sB")
# in_use, external_id, principal, last_active, host(16), port, pubkey(64), keylen
_ENTRY_SIZE = _ENTRY.size

EXTERNAL_ID_BASE = 50_000

REPLY_JOINED = b"JOINED"
REPLY_DENIED = b"DENIED"
REPLY_FULL = b"FULL"
REPLY_LEFT = b"LEFT"


@dataclass
class ClientEntry:
    slot: int
    external_id: int
    principal: int
    last_active: int
    host: str
    port: int
    pubkey_n: bytes


class MembershipManager:
    """Dynamic client management for one replica (paper section 3.1)."""

    def __init__(self, replica) -> None:
        self.replica = replica
        self.config = replica.config
        self.table: dict[int, ClientEntry] = {}  # external id -> entry
        self.redirection: dict[int, int] = {}  # external id -> slot
        self.by_principal: dict[int, int] = {}  # principal -> external id
        self.free_slots: list[int] = list(range(self.config.max_node_entries))
        self.next_external = EXTERNAL_ID_BASE
        self.pending_joins: dict[int, JoinPhase1] = {}  # temp id -> phase 1
        # Addresses of recently departed clients, kept just long enough to
        # deliver the Leave acknowledgement.
        self.recently_left: dict[int, tuple[str, int]] = {}
        self.stats = replica.stats
        self._persist_header()
        # The section 3.3.2 extension: per-session state slots, placed in
        # the library partition right after the client table.
        from repro.membership.sessions import SessionStateManager

        table_end = self._slot_offset(self.config.max_node_entries)
        self.session_state = SessionStateManager(replica, base_offset=table_end)

    # -- request admission (the redirection-table check) -------------------------

    def admit_request(self, req) -> bool:
        """Cheap pre-check before signature work: is the sender known?

        "When a client request arrives, the system first checks to see if
        the identifier exists in the redirection table before going into
        the more lengthy process of verifying its signature."
        """
        kind = system_op_kind(req.op)
        if kind == SYS_JOIN2:
            return True  # joins are from not-yet-members by definition
        if kind == SYS_RECONFIG:
            # Replica reconfiguration is an operator action authenticated
            # like any request; it must not depend on the client table
            # (the operator may be a statically configured client).
            return True
        return req.client in self.redirection

    # -- phase 1 / challenge ------------------------------------------------------

    def dispatch(self, env) -> None:
        if isinstance(env.msg, JoinPhase1):
            self.on_join_phase1(env.msg)

    def on_join_phase1(self, msg: JoinPhase1) -> None:
        self.pending_joins[msg.temp_client] = msg
        challenge = compute_challenge(msg.pubkey_n, msg.nonce)
        reply = JoinChallenge(
            temp_client=msg.temp_client,
            challenge=challenge,
            sender=self.replica.node_id,
        )
        # Sent to the *claimed* address: only its true owner will ever see
        # the challenge, which is the anti-spoofing point of phase 1.
        self.replica.send_plain((msg.host, msg.port), reply)
        self.stats["join_challenges_sent"] += 1

    # -- ordered execution ----------------------------------------------------------

    def execute_system(self, req, nondet_ts: int) -> bytes:
        kind = system_op_kind(req.op)
        if kind == SYS_JOIN2:
            return self._execute_join(req, nondet_ts)
        if kind == SYS_LEAVE:
            return self._execute_leave(req)
        raise ProtocolError(f"unknown system op kind {kind}")

    def _execute_join(self, req, nondet_ts: int) -> bytes:
        payload = Join2Payload.decode_op(req.op)
        challenge = compute_challenge(payload.pubkey_n, payload.nonce)
        if payload.response != compute_response(challenge, payload.nonce):
            self.stats["joins_denied"] += 1
            return REPLY_DENIED
        principal = self.replica.app.authorize_join(payload.idbuf)
        if principal is None:
            self.stats["joins_denied"] += 1
            return REPLY_DENIED
        if not self.free_slots:
            self._collect_stale_sessions(nondet_ts)
        if not self.free_slots:
            self.stats["joins_denied_full"] += 1
            return REPLY_FULL
        # Single live session per principal: terminate any previous one.
        previous = self.by_principal.get(principal)
        if previous is not None:
            self._remove_client(previous)
            self.stats["sessions_terminated"] += 1
        slot = self.free_slots.pop(0)
        external_id = self.next_external
        self.next_external += 1
        entry = ClientEntry(
            slot=slot,
            external_id=external_id,
            principal=principal,
            last_active=nondet_ts,
            host=payload.host,
            port=payload.port,
            pubkey_n=payload.pubkey_n,
        )
        self.table[external_id] = entry
        self.redirection[external_id] = slot
        self.by_principal[principal] = external_id
        for rid, key_bytes in payload.session_keys:
            if rid == self.replica.node_id:
                key = MacKey(key_bytes)
                self.replica.install_session_key("client", external_id, key)
                # The join *reply* still addresses the temporary id, so the
                # session key must be reachable under it too.
                self.replica.install_session_key("client", payload.temp_client, key)
        # Keep the pending record so the reply can be addressed/verified
        # under the temporary id; bound the dict against join floods.
        if len(self.pending_joins) > 4 * self.config.max_node_entries:
            oldest = next(iter(self.pending_joins))
            del self.pending_joins[oldest]
        self._persist_entry(entry)
        self._persist_header()
        self.stats["joins_completed"] += 1
        return REPLY_JOINED + external_id.to_bytes(8, "big")

    def _execute_leave(self, req) -> bytes:
        if req.client in self.table:
            self._remove_client(req.client, keep_session_for_reply=True)
            self.stats["leaves_completed"] += 1
        return REPLY_LEFT

    def _remove_client(self, external_id: int, keep_session_for_reply: bool = False) -> None:
        entry = self.table.pop(external_id, None)
        if entry is None:
            return
        self.redirection.pop(external_id, None)
        if self.by_principal.get(entry.principal) == external_id:
            del self.by_principal[entry.principal]
        self.free_slots.append(entry.slot)
        self.free_slots.sort()
        if keep_session_for_reply:
            # The Leave acknowledgement still has to reach the departing
            # client; the redirection table already blocks anything else.
            self.recently_left[external_id] = (entry.host, entry.port)
            if len(self.recently_left) > self.config.max_node_entries:
                self.recently_left.pop(next(iter(self.recently_left)))
        else:
            self.replica.session_keys.pop(("client", external_id), None)
        self.replica.reqstore.forget_client(external_id)
        self._erase_slot(entry.slot)
        self.session_state.wipe_slot(entry.slot)
        self._persist_header()

    def _collect_stale_sessions(self, now_ts: int) -> None:
        """Evict sessions idle longer than the configured threshold."""
        threshold = now_ts - self.config.session_stale_ns
        stale = [
            ext for ext, entry in self.table.items() if entry.last_active < threshold
        ]
        for ext in sorted(stale):
            self._remove_client(ext)
            self.stats["stale_sessions_collected"] += 1

    # -- per-request bookkeeping -------------------------------------------------------

    def touch(self, client_id: int, nondet_ts: int) -> None:
        """Record request activity (primary-timestamped, so deterministic)."""
        entry = self.table.get(client_id)
        if entry is None or entry.last_active >= nondet_ts:
            return
        entry.last_active = nondet_ts
        # last_active sits after (in_use:1, external:4, principal:8).
        offset = self._slot_offset(entry.slot) + 1 + 4 + 8
        state = self.replica.state
        state.modify(offset, 8)
        state.write(offset, struct.pack(">q", nondet_ts))

    # -- lookups used by the replica --------------------------------------------------

    def client_public(self, client_id: int) -> Optional[RabinPublicKey]:
        entry = self.table.get(client_id)
        if entry is not None:
            return RabinPublicKey(int.from_bytes(entry.pubkey_n, "big"))
        pending = self.pending_joins.get(client_id)
        if pending is not None:
            return RabinPublicKey(int.from_bytes(pending.pubkey_n, "big"))
        return None

    def client_address(self, client_id: int):
        entry = self.table.get(client_id)
        if entry is not None:
            return (entry.host, entry.port)
        pending = self.pending_joins.get(client_id)
        if pending is not None:
            return (pending.host, pending.port)
        return self.recently_left.get(client_id)

    # -- persistence into the library partition ------------------------------------------

    def _slot_offset(self, slot: int) -> int:
        return _HEADER.size + slot * _ENTRY_SIZE

    def _persist_header(self) -> None:
        state = self.replica.state
        data = _HEADER.pack(_MAGIC, self.next_external, len(self.table))
        state.modify(0, _HEADER.size)
        state.write(0, data)

    def _persist_entry(self, entry: ClientEntry) -> None:
        state = self.replica.state
        host = entry.host.encode()[:16].ljust(16, b"\0")
        pubkey = entry.pubkey_n[:64].ljust(64, b"\0")
        data = _ENTRY.pack(
            1,
            entry.external_id,
            entry.principal,
            entry.last_active,
            host,
            entry.port,
            pubkey,
            len(entry.pubkey_n),
        )
        offset = self._slot_offset(entry.slot)
        state.modify(offset, _ENTRY_SIZE)
        state.write(offset, data)

    def _erase_slot(self, slot: int) -> None:
        state = self.replica.state
        offset = self._slot_offset(slot)
        state.modify(offset, _ENTRY_SIZE)
        state.write(offset, bytes(_ENTRY_SIZE))

    def reload_from_state(self) -> None:
        """Rebuild the in-memory tables from the library partition after a
        state transfer, rollback, or restart."""
        state = self.replica.state
        magic, next_external, _count = _HEADER.unpack(state.read(0, _HEADER.size))
        self.table.clear()
        self.redirection.clear()
        self.by_principal.clear()
        self.free_slots = []
        if magic != _MAGIC:
            # Fresh (all-zero) state: nothing persisted yet.
            self.next_external = EXTERNAL_ID_BASE
            self.free_slots = list(range(self.config.max_node_entries))
            self._persist_header()
            return
        self.next_external = next_external
        for slot in range(self.config.max_node_entries):
            raw = state.read(self._slot_offset(slot), _ENTRY_SIZE)
            in_use, external, principal, last_active, host, port, pubkey, keylen = (
                _ENTRY.unpack(raw)
            )
            if not in_use:
                self.free_slots.append(slot)
                continue
            entry = ClientEntry(
                slot=slot,
                external_id=external,
                principal=principal,
                last_active=last_active,
                host=host.rstrip(b"\0").decode(),
                port=port,
                pubkey_n=pubkey[:keylen],
            )
            self.table[external] = entry
            self.redirection[external] = slot
            self.by_principal[principal] = external
