"""Dynamic client membership — the paper's first contribution (section 3.1).

PBFT assumes every node knows every other a priori.  This package adds the
paper's extension: clients join and leave the replicated service at run
time while replicas stay statically bound to one another.

Design, following the paper:

* **Join/Leave are system requests** that travel the normal request
  life-cycle, so all membership changes are totally ordered with
  application requests and every replica processes them against the same
  shared state.  They are handled by the middleware and invisible to the
  application.
* **Two-phase join with a challenge** — phase 1 announces the client's
  address, public key and a nonce; replicas answer with a deterministic
  challenge sent to the *claimed* address; only a client that truly owns
  the address can compute the phase-2 response.  This blocks the
  phony-address node-table exhaustion attack.
* **Application-level identification buffer** — phase 2 carries an opaque
  buffer (e.g. user id + password) that the application authorizes; the
  middleware then enforces a single live session per principal, bounding
  the damage of a distributed credential attack.
* **Redirection table** — arbitrary client identifiers map to node-table
  slots, checked before any expensive signature work.
* **Timestamp-based stale-session cleanup** — requests carry the primary's
  timestamp; joins that find the table full evict sessions idle longer
  than a threshold, or are denied.

The client-table state lives in the *library partition* of the shared
state region, so it is checkpointed, transferred and rolled back together
with application state.
"""

from repro.membership.messages import JoinPhase1, JoinChallenge
from repro.membership.manager import MembershipManager
from repro.membership.joiner import join_client, leave_client
from repro.membership.sessions import SessionStateManager

__all__ = [
    "JoinPhase1",
    "JoinChallenge",
    "MembershipManager",
    "join_client",
    "leave_client",
    "SessionStateManager",
]
