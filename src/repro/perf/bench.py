"""Wall-clock benchmarks of the simulator itself.

Everything else in the harness measures the *modeled* system — simulated
TPS, simulated latency.  This module measures the *simulator*: how many
simulated client operations the host CPU grinds through per wall-clock
second.  That number bounds every sweep in the repo (Table 1 is ~20 runs,
the fault campaign hundreds), so it is the reproduction's real capacity
limit — ROADMAP's "as fast as the hardware allows".

Each scenario is run twice in one process: once with the hot-path caches
disabled (:mod:`repro.common.hotpath` off reproduces the seed
implementation's behaviour — fresh encodes per send, one HMAC key
schedule per MAC, per-leaf Merkle refreshes) and once with them enabled.
Because the caches are pure memos, both runs must produce *identical
simulated results*; the harness asserts this, making every benchmark run
a differential test.  The before/after ratio is therefore an honest
apples-to-apples measure of the caches on the same host, and — unlike
absolute ops/sec — transfers across machines, which is what the CI
perf-smoke compares against the committed baseline.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import tempfile
import time

from repro.common.hotpath import hotpath_caches
from repro.harness.measure import Measurement, run_null_workload, run_sql_workload
from repro.pbft.config import PbftConfig

# CI tolerance: the smoke job fails if the measured cache speedup falls
# more than this fraction below the committed baseline's, or (opt-in) if
# absolute ops/sec does.
REGRESSION_TOLERANCE = 0.20

SCHEMA_VERSION = 1


def _scenario_result(measurement: Measurement, wall_s: float) -> dict:
    return {
        "wall_s": round(wall_s, 4),
        "completed": measurement.completed,
        "sim_ops_per_wall_s": round(measurement.completed / wall_s, 2) if wall_s else 0.0,
        "sim_tps": round(measurement.tps, 2),
        "sim_p50_latency_us": round(measurement.p50_latency_ns / 1000, 1),
        "sim_p99_latency_us": round(measurement.p99_latency_ns / 1000, 1),
    }


def _check_identical(name: str, before: dict, after: dict) -> None:
    """The caches must not change simulated results — bit for bit."""
    keys = ("completed", "sim_tps", "sim_p50_latency_us", "sim_p99_latency_us")
    for key in keys:
        if before[key] != after[key]:
            raise AssertionError(
                f"{name}: hot-path caches changed simulated results — "
                f"{key}: {before[key]} (caches off) vs {after[key]} (on)"
            )


def _run(runner, optimized: bool, **kwargs) -> tuple[dict, Measurement]:
    """One timed run with the GC parked outside the measured window.

    A collection landing inside one mode's window but not the other's
    would skew the ratio; collecting up front and disabling the GC for
    the (seconds-long, allocation-bounded) run removes that noise source.
    """
    with hotpath_caches(optimized):
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            measurement = runner(**kwargs)
            wall = time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()
    return _scenario_result(measurement, wall), measurement


def _run_pair(
    scenario: str, runner, *, repeats: int, cluster_hook=None, **kwargs
) -> tuple[dict, dict]:
    """Interleave caches-off / caches-on runs; keep the best wall per mode.

    Interleaving (off, on, off, on, ...) cancels slow host drift —
    thermal throttling or a co-tenant load ramp hits both modes equally
    instead of whichever mode happened to run last.  Best-of-N is the
    standard estimator for "how fast does this code run absent external
    interference": wall-clock noise on a shared host is strictly
    additive, so the minimum is the least-contaminated sample.  Every
    rep's simulated results are asserted identical across both modes and
    all repeats, so each extra rep is also an extra differential test.
    """
    best: dict[bool, dict] = {}
    for _ in range(max(1, repeats)):
        for optimized in (False, True):
            kw = dict(kwargs)
            if optimized and cluster_hook is not None:
                kw["cluster_hook"] = cluster_hook
            result, _ = _run(runner, optimized, **kw)
            prev = best.get(optimized)
            if prev is None:
                best[optimized] = result
            else:
                _check_identical(scenario, prev, result)
                if result["wall_s"] < prev["wall_s"]:
                    best[optimized] = result
    _check_identical(scenario, best[False], best[True])
    return best[False], best[True]


def _phase_breakdown(runner, **kwargs) -> dict:
    """One short traced run for the per-phase latency split (repro.obs).

    Traced separately so tracer overhead never pollutes the wall-clock
    numbers; the split itself is simulated data, so it is deterministic
    and cache-independent.
    """
    fd, path = tempfile.mkstemp(suffix=".trace.json")
    os.close(fd)
    try:
        measurement = runner(trace_path=path, **kwargs)
    finally:
        os.unlink(path)
    return {
        phase: round(ns / 1000, 1)
        for phase, ns in measurement.phase_latency_ns.items()
    }


def bench_normal_case(
    *,
    payload_size: int = 1024,
    warmup_s: float = 0.1,
    measure_s: float = 0.4,
    seed: int = 3,
    real_crypto: bool = True,
    include_phases: bool = True,
    repeats: int = 3,
    config: PbftConfig | None = None,
    workload_label: str | None = None,
) -> dict:
    """The paper's normal-case loop (null ops, MACs, real crypto on).

    ``real_crypto=True`` exercises the full hot path — HMAC tags are
    actually computed and checked — so the MAC cache's effect is visible,
    exactly as it would be in a native implementation.  ``config`` lets
    callers vary protocol knobs (e.g. ``congestion_window`` pipelining)
    while keeping the same differential methodology.
    """
    mac_stats = {}

    def capture(cluster):
        mac_stats["cache"] = cluster.keys.mac_cache

    config = config or PbftConfig()
    kwargs = dict(
        config=config,
        name="hotpath-null",
        payload_size=payload_size,
        warmup_s=warmup_s,
        measure_s=measure_s,
        seed=seed,
        real_crypto=real_crypto,
    )
    before, after = _run_pair(
        "normal-case", run_null_workload, repeats=repeats, cluster_hook=capture, **kwargs
    )
    result = {
        "workload": workload_label
        or (
            "null-op closed loop, n=4, MACs, real crypto"
            if real_crypto
            else "null-op closed loop, n=4, MACs, fake crypto"
        ),
        "before": before,
        "after": after,
        "speedup": round(
            after["sim_ops_per_wall_s"] / before["sim_ops_per_wall_s"], 3
        ),
        "mac_cache": mac_stats["cache"].stats(),
    }
    if include_phases:
        with hotpath_caches(True):
            result["phase_latency_us"] = _phase_breakdown(
                run_null_workload, **kwargs
            )
    return result


def bench_sql_evoting(
    *,
    warmup_s: float = 0.2,
    measure_s: float = 0.6,
    seed: int = 3,
    real_crypto: bool = True,
    include_phases: bool = True,
    repeats: int = 2,
) -> dict:
    """The e-voting SQL workload (section 4.2): one ballot INSERT per op."""
    mac_stats = {}

    def capture(cluster):
        mac_stats["cache"] = cluster.keys.mac_cache

    config = PbftConfig()
    kwargs = dict(
        config=config,
        name="hotpath-sql",
        warmup_s=warmup_s,
        measure_s=measure_s,
        seed=seed,
        real_crypto=real_crypto,
    )
    before, after = _run_pair(
        "sql-evoting", run_sql_workload, repeats=repeats, cluster_hook=capture, **kwargs
    )
    result = {
        "workload": "e-voting ballot INSERT (ACID), n=4, MACs",
        "before": before,
        "after": after,
        "speedup": round(
            after["sim_ops_per_wall_s"] / before["sim_ops_per_wall_s"], 3
        ),
        "mac_cache": mac_stats["cache"].stats(),
    }
    if include_phases:
        with hotpath_caches(True):
            result["phase_latency_us"] = _phase_breakdown(run_sql_workload, **kwargs)
    return result


def run_hotpath_bench(
    *, smoke: bool = False, seed: int = 3, include_phases: bool = True
) -> dict:
    """Run both scenarios and assemble the ``BENCH_hotpath.json`` payload.

    ``smoke`` shortens the measured windows and repeat counts for CI; the
    speedup *ratio* is window-length-insensitive (both runs shrink
    together), which is why the smoke comparison stays meaningful.
    """
    scale = 0.5 if smoke else 1.0
    scenarios = {
        "null_normal_case": bench_normal_case(
            warmup_s=0.1 * scale,
            measure_s=0.4 * scale,
            seed=seed,
            include_phases=include_phases,
            repeats=2 if smoke else 3,
        ),
        "sql_evoting": bench_sql_evoting(
            warmup_s=0.2 * scale,
            measure_s=0.6 * scale,
            seed=seed,
            include_phases=include_phases,
            repeats=1 if smoke else 2,
        ),
        # Pipelining data point (ROADMAP: request pipelining): with a
        # congestion window of 4 the primary runs up to 4 pre-prepares
        # concurrently instead of strictly serializing agreement.  Same
        # differential methodology; the interesting comparison is this
        # scenario's simulated TPS/latency against null_normal_case's.
        "null_pipelined_cw4": bench_normal_case(
            warmup_s=0.1 * scale,
            measure_s=0.4 * scale,
            seed=seed,
            include_phases=include_phases,
            repeats=2 if smoke else 3,
            config=PbftConfig(congestion_window=4),
            workload_label="null-op closed loop, n=4, MACs, real crypto, "
            "congestion_window=4 (pipelined)",
        ),
    }
    return {
        "schema": SCHEMA_VERSION,
        "what": "wall-clock simulator throughput, hot-path caches off vs on",
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "smoke": smoke,
        "scenarios": scenarios,
    }


def compare_to_baseline(
    current: dict,
    baseline: dict,
    tolerance: float = REGRESSION_TOLERANCE,
    check_absolute: bool = False,
) -> list[str]:
    """Regression check against a committed baseline; returns violations.

    The primary check is the cache *speedup ratio*, which is
    machine-independent.  ``check_absolute`` additionally compares raw
    sim-ops/sec — only meaningful when baseline and current ran on
    comparable hardware, so it is opt-in.
    """
    problems: list[str] = []
    for name, base in baseline.get("scenarios", {}).items():
        cur = current.get("scenarios", {}).get(name)
        if cur is None:
            problems.append(f"{name}: scenario missing from current run")
            continue
        floor = base["speedup"] * (1 - tolerance)
        if cur["speedup"] < floor:
            problems.append(
                f"{name}: cache speedup regressed — {cur['speedup']:.3f}x vs "
                f"baseline {base['speedup']:.3f}x (floor {floor:.3f}x)"
            )
        if check_absolute:
            base_ops = base["after"]["sim_ops_per_wall_s"]
            cur_ops = cur["after"]["sim_ops_per_wall_s"]
            if cur_ops < base_ops * (1 - tolerance):
                problems.append(
                    f"{name}: sim-ops/sec regressed — {cur_ops:.0f} vs "
                    f"baseline {base_ops:.0f}"
                )
    return problems


def format_bench(results: dict) -> str:
    """Human-readable summary of a :func:`run_hotpath_bench` payload."""
    lines = [
        results.get(
            "what",
            "wall-clock bench (sim-ops/sec = simulated client ops "
            "completed per wall-clock second)",
        ),
        "",
    ]
    for name, sc in results["scenarios"].items():
        before, after = sc["before"], sc["after"]
        lines.append(f"{name}: {sc['workload']}")
        lines.append(
            f"  caches off: {before['sim_ops_per_wall_s']:>9.1f} ops/s "
            f"({before['completed']} ops in {before['wall_s']:.2f}s wall)"
        )
        lines.append(
            f"  caches on:  {after['sim_ops_per_wall_s']:>9.1f} ops/s "
            f"({after['completed']} ops in {after['wall_s']:.2f}s wall)"
        )
        lines.append(f"  speedup:    {sc['speedup']:.2f}x")
        mac = sc.get("mac_cache")
        if mac:
            total = mac["hits"] + mac["misses"]
            rate = (100.0 * mac["hits"] / total) if total else 0.0
            lines.append(
                f"  mac cache:  {mac['hits']} hits / {mac['misses']} misses "
                f"({rate:.0f}% hit rate)"
            )
        phases = sc.get("phase_latency_us")
        if phases:
            split = ", ".join(f"{k}={v:.0f}us" for k, v in phases.items())
            lines.append(f"  sim phases: {split}")
        lines.append("")
    return "\n".join(lines)


def write_bench_json(results: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=False)
        fh.write("\n")
