"""Wall-clock benchmarks of the SQL engine's cost-based hot path.

Companion to :mod:`repro.perf.bench`, focused on the query engine: the
statement/plan cache, the cost-based planner (index point and range
scans, hash and index-nested-loop joins, hash aggregation), the shared
buffer pool, and the b-tree node cache.  Every scenario runs twice in
one process — planner and caches off (the seed's parse-and-scan
behaviour) and on — and asserts the two modes produce *identical*
results before reporting the wall-clock ratio:

* the two replicated scenarios assert identical simulated metrics
  (completed ops, TPS, p50/p99 latency) **and** identical replica state
  digests, exactly like the hot-path bench;
* the unreplicated engine micro-benchmark asserts a digest over every
  query's result rows plus a final full-table dump.

The replicated scenarios intentionally use *metric-parity* query shapes
(bare indexed equalities, equi hash joins, hash aggregation) so the
planner cannot change ``rows_scanned`` — the quantity the simulated
cost model charges — and the differential assertion stays exact.  The
shapes where the planner *reduces* work (range scans, AND-conjunct
narrowing, ranged DML) are exercised by the engine micro scenario,
where correctness is checked on the actual rows instead.
"""

from __future__ import annotations

import gc
import hashlib
import platform
import time

from repro.common.hotpath import HOTPATH, hotpath_caches
from repro.harness.measure import run_analytics_workload, run_sql_workload
from repro.pbft.config import PbftConfig
from repro.perf.bench import SCHEMA_VERSION, _run_pair


def _digest_checked(runner, digests: dict):
    """Wrap a workload runner to record the replica state root per mode.

    ``digests`` maps ``HOTPATH.enabled`` → state-root hex; a repeat that
    disagrees with an earlier run of the same mode fails immediately
    (the simulation is deterministic, so any variation is a bug)."""

    def wrapped(**kwargs):
        measurement = runner(**kwargs)
        root = measurement.extras.get("state_root")
        if root is None:
            raise AssertionError("workload did not record a state root")
        mode = HOTPATH.enabled
        prev = digests.setdefault(mode, root)
        if prev != root:
            raise AssertionError(
                f"state root varied across repeats (caches {'on' if mode else 'off'})"
            )
        return measurement

    return wrapped


def _assert_digests_match(scenario: str, digests: dict) -> None:
    if digests.get(False) != digests.get(True):
        raise AssertionError(
            f"{scenario}: planner changed the replicated database state — "
            f"{digests.get(False)} (off) vs {digests.get(True)} (on)"
        )


def bench_sql_evoting_fig5(
    *,
    warmup_s: float = 0.2,
    measure_s: float = 0.6,
    seed: int = 3,
    real_crypto: bool = True,
    repeats: int = 2,
) -> dict:
    """The paper's Figure 5 workload: one ballot INSERT per request, ACID.

    The INSERT goes through the statement cache (one parse total instead
    of one per request per replica) and the UNIQUE-voter probe through
    the node cache and buffer pool; the planner picks the same unique
    index probe the naive path does, so simulated metrics are identical.
    """
    digests: dict = {}
    before, after = _run_pair(
        "sql-evoting-fig5",
        _digest_checked(run_sql_workload, digests),
        repeats=repeats,
        config=PbftConfig(),
        name="sql-evoting-fig5",
        warmup_s=warmup_s,
        measure_s=measure_s,
        seed=seed,
        real_crypto=real_crypto,
    )
    _assert_digests_match("sql-evoting-fig5", digests)
    return {
        "workload": "e-voting ballot INSERT (ACID), n=4, MACs — Figure 5",
        "before": before,
        "after": after,
        "speedup": round(
            after["sim_ops_per_wall_s"] / before["sim_ops_per_wall_s"], 3
        ),
        "state_root": digests[True],
    }


def bench_sql_analytics(
    *,
    warmup_s: float = 0.2,
    measure_s: float = 0.6,
    seed: int = 3,
    real_crypto: bool = True,
    repeats: int = 2,
) -> dict:
    """Multi-table analytics under replication: order INSERTs interleaved
    with two-table equi-join + GROUP BY rollups over the growing table."""
    digests: dict = {}
    before, after = _run_pair(
        "sql-analytics",
        _digest_checked(run_analytics_workload, digests),
        repeats=repeats,
        config=PbftConfig(),
        name="sql-analytics",
        warmup_s=warmup_s,
        measure_s=measure_s,
        seed=seed,
        real_crypto=real_crypto,
    )
    _assert_digests_match("sql-analytics", digests)
    return {
        "workload": "order INSERTs + join/aggregate rollups (ACID), n=4, MACs",
        "before": before,
        "after": after,
        "speedup": round(
            after["sim_ops_per_wall_s"] / before["sim_ops_per_wall_s"], 3
        ),
        "state_root": digests[True],
    }


# -- unreplicated engine micro-benchmark -------------------------------------------


_MICRO_SCHEMA = (
    "CREATE TABLE items (id INTEGER PRIMARY KEY, sku TEXT NOT NULL UNIQUE, "
    "category TEXT NOT NULL, price REAL NOT NULL, qty INTEGER NOT NULL);"
    "CREATE INDEX idx_items_category ON items(category);"
    "CREATE INDEX idx_items_price ON items(price);"
    "CREATE TABLE categories (name TEXT NOT NULL, floor_price REAL NOT NULL);"
)


def _engine_micro_workload(rows: int, iters: int) -> tuple[str, dict]:
    """Build a two-table database, then run a fixed query/DML mix.

    Returns (result digest, engine counter snapshot).  The digest folds
    in every statement's result rows plus a final ordered dump of the
    whole fact table, so any planner bug — wrong rows, wrong order,
    corrupted writes — changes it.
    """
    from repro.sqlstate.engine import Database

    db = Database()
    db.executescript(_MICRO_SCHEMA)
    for c in range(10):
        db.execute(
            "INSERT INTO categories (name, floor_price) VALUES (?, ?)",
            (f"cat{c}", float(c)),
        )
    for i in range(rows):
        db.execute(
            "INSERT INTO items (sku, category, price, qty) VALUES (?, ?, ?, ?)",
            (f"sku-{i}", f"cat{i % 10}", ((i * 37) % 1000) / 10.0, i % 50),
        )

    digest = hashlib.md5()

    def run(sql: str, params: tuple = ()):
        result = db.execute(sql, params)
        rows_out = result.rows if hasattr(result, "rows") else result
        digest.update(repr(rows_out).encode())

    statements = 0
    for j in range(iters):
        run("SELECT id, price, qty FROM items WHERE sku = ?", (f"sku-{(j * 13) % rows}",))
        run(
            "SELECT COUNT(*), SUM(qty) FROM items WHERE price >= ? AND price < ?",
            (float(j % 80), float(j % 80 + 15)),
        )
        run(
            "SELECT id FROM items WHERE category = ? AND qty > ? ORDER BY id",
            (f"cat{j % 10}", 40),
        )
        run(
            "SELECT c.floor_price, COUNT(*) FROM items i "
            "JOIN categories c ON i.category = c.name "
            "GROUP BY c.floor_price ORDER BY c.floor_price"
        )
        run(
            "SELECT category, COUNT(*), SUM(price) FROM items "
            "GROUP BY category ORDER BY category"
        )
        run("SELECT sku FROM items WHERE id = ?", (1 + (j * 7) % rows,))
        statements += 6
        if j % 10 == 0:
            run(
                "UPDATE items SET qty = qty + 1 WHERE price BETWEEN ? AND ?",
                (float(j % 60), float(j % 60 + 5)),
            )
            statements += 1
    run("SELECT * FROM items ORDER BY id")
    statements += 1
    return digest.hexdigest(), {
        "statements": statements,
        "plan_cache": {"hits": db.plan_cache_hits, "misses": db.plan_cache_misses},
        "buffer_pool": {"hits": db.pager.cache_hits, "misses": db.pager.cache_misses},
        "rows_scanned": db.executor.rows_scanned,
        "index_lookups": db.executor.index_lookups,
    }


def _timed(fn, optimized: bool):
    """One timed run with the GC parked, mirroring bench._run."""
    with hotpath_caches(optimized):
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            out = fn()
            wall = time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()
    return wall, out


def bench_engine_micro(
    *, rows: int = 300, iters: int = 160, repeats: int = 2
) -> dict:
    """Unreplicated engine micro: the shapes the planner actually narrows.

    Point lookups, range scans, AND-conjunct narrowing, a hash join, hash
    aggregation, rowid probes, and a ranged UPDATE — run against the raw
    :class:`Database` so wall-clock measures only engine work.  Results
    are digest-checked across modes and repeats.
    """
    best: dict[bool, dict] = {}
    digests: dict = {}
    stats_by_mode: dict[bool, dict] = {}
    for _ in range(max(1, repeats)):
        for optimized in (False, True):
            wall, (digest, stats) = _timed(
                lambda: _engine_micro_workload(rows, iters), optimized
            )
            prev = digests.setdefault(optimized, digest)
            if prev != digest:
                raise AssertionError(
                    "engine-micro: digest varied across repeats "
                    f"(caches {'on' if optimized else 'off'})"
                )
            stats_by_mode[optimized] = stats
            result = {
                "wall_s": round(wall, 4),
                "completed": stats["statements"],
                "sim_ops_per_wall_s": round(stats["statements"] / wall, 2),
            }
            entry = best.get(optimized)
            if entry is None or result["wall_s"] < entry["wall_s"]:
                best[optimized] = result
    if digests[False] != digests[True]:
        raise AssertionError(
            "engine-micro: planner changed query results — "
            f"{digests[False]} (off) vs {digests[True]} (on)"
        )
    return {
        "workload": "unreplicated engine micro: point/range/conjunct lookups, "
        "hash join, hash aggregate, ranged UPDATE "
        f"({rows} rows, {iters} iterations)",
        "before": best[False],
        "after": best[True],
        "speedup": round(
            best[True]["sim_ops_per_wall_s"] / best[False]["sim_ops_per_wall_s"], 3
        ),
        "digest": digests[True],
        "plan_cache": stats_by_mode[True]["plan_cache"],
        "buffer_pool": stats_by_mode[True]["buffer_pool"],
        "rows_scanned": {
            "naive": stats_by_mode[False]["rows_scanned"],
            "planned": stats_by_mode[True]["rows_scanned"],
        },
        "index_lookups": stats_by_mode[True]["index_lookups"],
    }


def run_sql_bench(*, smoke: bool = False, seed: int = 3) -> dict:
    """Run all three scenarios and assemble the ``BENCH_sql.json`` payload.

    ``smoke`` halves the repeats and the micro workload but keeps the
    replicated scenarios' measurement windows at full length: unlike the
    protocol hot path, the SQL speedup ratio is *not* window-insensitive
    (plan-cache misses, stat seeding and pool warmup are fixed costs that
    dilute short windows), so shrinking the window would systematically
    under-report the ratio and trip the CI floor.
    """
    scenarios = {
        "sql_evoting_fig5": bench_sql_evoting_fig5(
            seed=seed,
            repeats=1 if smoke else 2,
        ),
        "analytics_replicated": bench_sql_analytics(
            seed=seed,
            repeats=1 if smoke else 2,
        ),
        "engine_micro": bench_engine_micro(
            rows=150 if smoke else 300,
            iters=60 if smoke else 160,
            repeats=1 if smoke else 2,
        ),
    }
    return {
        "schema": SCHEMA_VERSION,
        "what": "SQL engine wall-clock throughput, planner/caches off vs on",
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "smoke": smoke,
        "scenarios": scenarios,
    }
