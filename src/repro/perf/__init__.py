"""Wall-clock performance harness for the simulator's hot path."""

from repro.perf.bench import (
    REGRESSION_TOLERANCE,
    bench_normal_case,
    bench_sql_evoting,
    compare_to_baseline,
    format_bench,
    run_hotpath_bench,
    write_bench_json,
)
from repro.perf.sqlbench import (
    bench_engine_micro,
    bench_sql_analytics,
    bench_sql_evoting_fig5,
    run_sql_bench,
)

__all__ = [
    "REGRESSION_TOLERANCE",
    "bench_engine_micro",
    "bench_normal_case",
    "bench_sql_analytics",
    "bench_sql_evoting",
    "bench_sql_evoting_fig5",
    "compare_to_baseline",
    "format_bench",
    "run_hotpath_bench",
    "run_sql_bench",
    "write_bench_json",
]
