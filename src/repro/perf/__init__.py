"""Wall-clock performance harness for the simulator's hot path."""

from repro.perf.bench import (
    REGRESSION_TOLERANCE,
    bench_normal_case,
    bench_sql_evoting,
    compare_to_baseline,
    format_bench,
    run_hotpath_bench,
    write_bench_json,
)

__all__ = [
    "REGRESSION_TOLERANCE",
    "bench_normal_case",
    "bench_sql_evoting",
    "compare_to_baseline",
    "format_bench",
    "run_hotpath_bench",
    "write_bench_json",
]
