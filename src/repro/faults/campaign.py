"""The campaign runner: schedules × seeds, invariants checked after each.

One *run* builds a fresh deterministic cluster, drives a closed-loop
client workload, lets a :class:`~repro.faults.injector.FaultInjector`
apply one :class:`~repro.faults.schedule.FaultSchedule`, waits for every
fault to heal, drains outstanding operations, and then checks the
protocol invariants of :mod:`repro.faults.invariants`.  A *campaign*
sweeps a list of schedules across a list of RNG seeds.

Everything is deterministic in (schedule, seed): a failing run can be
re-executed with tracing enabled to produce a Chrome trace plus a
minimized protocol event log for forensics — which is exactly what
happens automatically when ``artifact_dir`` is set.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.common.units import MILLISECOND
from repro.obs import Observability
from repro.pbft.cluster import Cluster, build_cluster
from repro.pbft.config import PbftConfig
from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    Violation,
    check_agreement,
    check_checkpoint_monotone,
    check_flood_liveness,
    check_liveness,
    check_membership_safety,
    check_no_committed_loss,
)
from repro.faults.schedule import FaultSchedule

PAYLOAD = bytes(128)


def campaign_config() -> PbftConfig:
    """The small/fast cluster configuration campaigns run against."""
    return PbftConfig(
        num_clients=3,
        checkpoint_interval=16,
        log_window=32,
        client_retransmit_ns=60 * MILLISECOND,
        client_retransmit_cap_ns=500 * MILLISECOND,
        view_change_timeout_ns=250 * MILLISECOND,
        status_interval_ns=100 * MILLISECOND,
        # Overload defenses sized for the Byzantine-client schedules: a
        # small queue budget so floods actually press against it, a tight
        # size limit for the oversized-client run, and a penalty box that
        # trips well inside a spam window.
        pending_queue_budget=32,
        max_request_bytes=4096,
        penalty_box_threshold=5,
        penalty_box_ns=200 * MILLISECOND,
        busy_retry_hint_ns=20 * MILLISECOND,
        client_busy_backoff_ns=20 * MILLISECOND,
        client_busy_backoff_cap_ns=200 * MILLISECOND,
    )


@dataclass
class RunResult:
    """Verdict of one (schedule, seed) run."""

    schedule: str
    seed: int
    violations: list[Violation]
    invoked_ops: int
    completed_ops: int
    max_view: int
    sim_time_ns: int
    fault_log: list[str] = field(default_factory=list)
    artifacts: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class CampaignResult:
    """All runs of one schedules × seeds sweep."""

    runs: list[RunResult]

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.runs)

    @property
    def failed_runs(self) -> list[RunResult]:
        return [run for run in self.runs if not run.ok]


def _start_workload(
    cluster: Cluster,
    invoked: list[tuple[int, int]],
    completed: list[tuple[int, int]],
    completed_at_ns: list[int],
    issuing: dict[str, bool],
) -> None:
    for client in cluster.clients:

        def submit(client=client) -> None:
            def done(_res, _lat) -> None:
                completed.append((client.node_id, req.req_id))
                completed_at_ns.append(cluster.sim.now)
                if issuing["on"]:
                    submit(client)

            req = client.invoke(PAYLOAD, callback=done)
            invoked.append((client.node_id, req.req_id))

        submit()


def _execute(
    schedule: FaultSchedule,
    seed: int,
    config: PbftConfig,
    run_ns: int,
    drain_ns: int,
    settle_ns: int,
    trace: bool,
) -> tuple[RunResult, Cluster]:
    obs = Observability(tracing=trace)
    cluster = build_cluster(config, seed=seed, real_crypto=False, obs=obs)
    injector = FaultInjector(cluster, schedule)
    invoked: list[tuple[int, int]] = []
    completed: list[tuple[int, int]] = []
    completed_at_ns: list[int] = []
    issuing = {"on": True}
    _start_workload(cluster, invoked, completed, completed_at_ns, issuing)
    injector.start()

    step = 10 * MILLISECOND
    # Main phase: at least run_ns, extended until every fault has applied
    # and healed (bounded so a never-firing trigger cannot hang the run).
    deadline = cluster.sim.now + run_ns
    hard_cap = deadline + drain_ns
    while cluster.sim.now < deadline or (
        not injector.quiescent and cluster.sim.now < hard_cap
    ):
        cluster.run_for(step)
    if not injector.quiescent:
        injector.log.append(
            f"WARNING: {len(injector.pending)} fault(s) never triggered and "
            f"{injector.open_heals} heal(s) still open at the hard cap"
        )

    # Drain: stop issuing new work, let in-flight operations finish.
    issuing["on"] = False
    drain_deadline = cluster.sim.now + drain_ns
    while (
        any(client.pending is not None for client in cluster.clients)
        and cluster.sim.now < drain_deadline
    ):
        cluster.run_for(step)
    # Settle: no client traffic; status gossip catches stragglers up
    # before the committed-loss check examines their watermarks.
    cluster.run_for(settle_ns)

    injector.stop()
    cluster.stop_clients()

    violations = (
        check_agreement(cluster)
        + check_no_committed_loss(cluster, completed)
        + check_checkpoint_monotone(injector.stability_samples)
        + check_liveness(cluster, invoked, completed)
        + check_flood_liveness(injector.client_fault_windows, completed_at_ns)
        + check_membership_safety(cluster)
    )
    result = RunResult(
        schedule=schedule.name,
        seed=seed,
        violations=violations,
        invoked_ops=len(invoked),
        completed_ops=len(completed),
        max_view=max(r.view for r in cluster.replicas),
        sim_time_ns=cluster.sim.now,
        fault_log=list(injector.log),
    )
    return result, cluster


def _dump_artifacts(
    result: RunResult, cluster: Cluster, artifact_dir: str
) -> list[str]:
    """Chrome trace + minimized protocol event log for a failed run."""
    os.makedirs(artifact_dir, exist_ok=True)
    stem = os.path.join(artifact_dir, f"{result.schedule}-seed{result.seed}")
    trace_path = stem + ".trace.json"
    events_path = stem + ".events.jsonl"
    cluster.obs.write_chrome_trace(trace_path)
    keep_cats = ("pbft", "net.drop", "client")
    with open(events_path, "w", encoding="utf-8") as fh:
        for violation in result.violations:
            fh.write(json.dumps({"violation": str(violation)}) + "\n")
        for line in result.fault_log:
            fh.write(json.dumps({"fault": line.strip()}) + "\n")
        for event in cluster.obs.tracer.events:
            if event.kind != "instant":
                continue
            if not event.cat.startswith(keep_cats):
                continue
            fh.write(
                json.dumps(
                    {
                        "ts": event.ts,
                        "track": event.track,
                        "name": event.name,
                        "cat": event.cat,
                        "args": event.args,
                    }
                )
                + "\n"
            )
    return [trace_path, events_path]


def run_schedule(
    schedule: FaultSchedule,
    seed: int,
    config: PbftConfig | None = None,
    run_ns: int = 1200 * MILLISECOND,
    drain_ns: int = 3000 * MILLISECOND,
    settle_ns: int = 400 * MILLISECOND,
    trace: bool = False,
    artifact_dir: str | None = None,
) -> RunResult:
    """Run one schedule at one seed; dump forensics if an invariant broke.

    The artifact pass re-executes the identical (schedule, seed) pair with
    tracing enabled — determinism makes the re-run reproduce the failure,
    so the trace captures the actual violating execution without paying
    for tracing on healthy runs.
    """
    config = config or campaign_config()
    result, cluster = _execute(
        schedule, seed, config, run_ns, drain_ns, settle_ns, trace
    )
    if result.violations and artifact_dir is not None:
        if not trace:
            # Deterministic re-run with the tracer on.
            traced, cluster = _execute(
                schedule, seed, config, run_ns, drain_ns, settle_ns, trace=True
            )
            traced.artifacts = _dump_artifacts(traced, cluster, artifact_dir)
            return traced
        result.artifacts = _dump_artifacts(result, cluster, artifact_dir)
    return result


def run_campaign(
    schedules: list[FaultSchedule],
    seeds: list[int],
    config: PbftConfig | None = None,
    run_ns: int = 1200 * MILLISECOND,
    drain_ns: int = 3000 * MILLISECOND,
    settle_ns: int = 400 * MILLISECOND,
    artifact_dir: str | None = None,
) -> CampaignResult:
    """Sweep every schedule across every seed."""
    runs = [
        run_schedule(
            schedule,
            seed,
            config=config,
            run_ns=run_ns,
            drain_ns=drain_ns,
            settle_ns=settle_ns,
            artifact_dir=artifact_dir,
        )
        for schedule in schedules
        for seed in seeds
    ]
    return CampaignResult(runs=runs)
