"""Built-in fault schedules: the standard campaign sweep.

Each schedule targets one of the robustness mechanisms the paper found
fragile in practice: view changes (primary crash, mute, equivocation),
recovery and key re-learning (backup crash/restart), and the
retransmission paths (partitions, loss, duplication, reordering).
Timings assume the :func:`repro.faults.campaign.campaign_config` cluster
(250 ms view-change timeout, 60 ms client retransmit base).
"""

from __future__ import annotations

from repro.common.units import MILLISECOND
from repro.faults.schedule import (
    CrashReplica,
    EquivocatingPrimary,
    FaultSchedule,
    FloodingClient,
    InvalidMacSpammer,
    LinkDisturbance,
    MarkovChurn,
    MutePrimary,
    OversizedClient,
    PartitionFault,
    ReplicaReplace,
    Trigger,
)


def primary_crash_restart() -> FaultSchedule:
    return FaultSchedule(
        name="primary-crash-restart",
        description="Crash the view-0 primary mid-run; it restarts after "
        "the group has changed views and must rejoin via recovery.",
        faults=(
            CrashReplica(
                replica=0,
                at=Trigger(at_ns=300 * MILLISECOND),
                restart_after_ns=400 * MILLISECOND,
            ),
        ),
    )


def backup_crash_restart() -> FaultSchedule:
    return FaultSchedule(
        name="backup-crash-restart",
        description="Crash a backup once real work has committed (seq "
        "trigger); its restart exercises checkpoint restore and "
        "session-key re-learning without a view change.",
        faults=(
            CrashReplica(
                replica=2,
                at=Trigger(at_seq=20),
                restart_after_ns=300 * MILLISECOND,
            ),
        ),
    )


def primary_partition() -> FaultSchedule:
    return FaultSchedule(
        name="primary-partition",
        description="Isolate the primary from every backup; clients keep "
        "reaching it, so only their multicast retransmissions let the "
        "backups depose it.  The heal readmits the deposed primary.",
        faults=(
            PartitionFault(
                group_a=frozenset({"replica0"}),
                group_b=frozenset({"replica1", "replica2", "replica3"}),
                start=Trigger(at_ns=250 * MILLISECOND),
                heal_after_ns=450 * MILLISECOND,
            ),
        ),
    )


def lossy_replica_links() -> FaultSchedule:
    return FaultSchedule(
        name="lossy-replica-links",
        description="A 5% drop window on every replica-to-replica link: "
        "agreement quorums form only through retransmission backstops "
        "(status gossip, checkpoint retries).",
        faults=(
            LinkDisturbance(
                src="replica*",
                dst="replica*",
                start=Trigger(at_ns=200 * MILLISECOND),
                duration_ns=500 * MILLISECOND,
                drop_probability=0.05,
            ),
        ),
    )


def delay_and_duplicate() -> FaultSchedule:
    return FaultSchedule(
        name="delay-and-duplicate",
        description="3 ms of added one-way delay plus 20% duplication on "
        "all links: timers fire spuriously and every dedup path "
        "(at-most-once execution, vote sets) gets exercised.",
        faults=(
            LinkDisturbance(
                start=Trigger(at_ns=200 * MILLISECOND),
                duration_ns=500 * MILLISECOND,
                extra_delay_ns=3 * MILLISECOND,
                duplicate_probability=0.2,
            ),
        ),
    )


def reorder_storm() -> FaultSchedule:
    return FaultSchedule(
        name="reorder-storm",
        description="30% of replica-bound datagrams arrive far out of "
        "order: prepares before pre-prepares, commits before prepares — "
        "the out-of-order tolerance of the log machinery.",
        faults=(
            LinkDisturbance(
                dst="replica*",
                start=Trigger(at_ns=200 * MILLISECOND),
                duration_ns=500 * MILLISECOND,
                reorder_probability=0.3,
            ),
        ),
    )


def mute_primary() -> FaultSchedule:
    return FaultSchedule(
        name="mute-primary",
        description="The primary falls silent without crashing: it still "
        "receives and executes, but sends nothing.  Only client "
        "retransmissions arm the backups' view-change timers.",
        faults=(
            MutePrimary(
                start=Trigger(at_ns=300 * MILLISECOND),
                duration_ns=400 * MILLISECOND,
            ),
        ),
    )


def equivocating_primary() -> FaultSchedule:
    return FaultSchedule(
        name="equivocating-primary",
        description="A Byzantine primary assigns conflicting pre-prepares "
        "for the same sequence numbers; the split quorum forces a view "
        "change that must preserve every committed operation.",
        faults=(
            EquivocatingPrimary(
                start=Trigger(at_ns=250 * MILLISECOND),
                duration_ns=300 * MILLISECOND,
            ),
        ),
    )


def flooding_client() -> FaultSchedule:
    return FaultSchedule(
        name="flooding-client",
        description="A registered Byzantine client fire-hoses requests at "
        "the primary without awaiting replies; the per-client in-flight "
        "cap must hold it to one slot per cycle while honest clients "
        "keep completing inside the flood window.",
        faults=(
            FloodingClient(
                start=Trigger(at_ns=250 * MILLISECOND),
                duration_ns=400 * MILLISECOND,
                # Far faster than the group's execution cycle, so several
                # flood requests always race one admitted slot.
                interval_ns=MILLISECOND // 4,
            ),
        ),
    )


def invalid_mac_spammer() -> FaultSchedule:
    return FaultSchedule(
        name="invalid-mac-spammer",
        description="An unregistered principal sprays garbage-MAC requests "
        "at every replica; after penalty_box_threshold failures each "
        "replica mutes it and drops the rest at header-peek cost.",
        faults=(
            InvalidMacSpammer(
                start=Trigger(at_ns=250 * MILLISECOND),
                duration_ns=300 * MILLISECOND,
                interval_ns=1 * MILLISECOND,
            ),
        ),
    )


def oversized_client() -> FaultSchedule:
    return FaultSchedule(
        name="oversized-client",
        description="A registered client submits operations at twice the "
        "max_request_bytes limit; each is rejected with BUSY/oversized "
        "before consuming queue space.",
        faults=(
            OversizedClient(
                start=Trigger(at_ns=250 * MILLISECOND),
                duration_ns=300 * MILLISECOND,
                interval_ns=10 * MILLISECOND,
            ),
        ),
    )


def replace_replica_under_loss() -> FaultSchedule:
    return FaultSchedule(
        name="replace-replica-under-loss",
        description="Order a RECONFIG_REPLACE for a backup slot while every "
        "link drops 1% of datagrams; the fresh machine must bootstrap via "
        "state transfer with zero committed-op loss and the epoch history "
        "agreeing group-wide (invariant #7).",
        faults=(
            LinkDisturbance(
                start=Trigger(at_ns=100 * MILLISECOND),
                duration_ns=1500 * MILLISECOND,
                drop_probability=0.01,
            ),
            ReplicaReplace(
                slot=2,
                at=Trigger(at_ns=400 * MILLISECOND, at_seq=16),
            ),
        ),
    )


def backup_markov_churn() -> FaultSchedule:
    return FaultSchedule(
        name="backup-markov-churn",
        description="A backup alternates exponentially distributed up/down "
        "periods (two-state Markov fail/repair, up~Exp(400ms), "
        "down~Exp(100ms)); every repair exercises restart recovery while "
        "the rest of the group keeps the quorum alive.",
        faults=(
            MarkovChurn(
                replica=3,
                mean_up_ns=400 * MILLISECOND,
                mean_down_ns=100 * MILLISECOND,
                duration_ns=1500 * MILLISECOND,
                start=Trigger(at_ns=200 * MILLISECOND),
            ),
        ),
    )


def builtin_schedules() -> list[FaultSchedule]:
    """The default campaign: every built-in schedule, in sweep order."""
    return [
        primary_crash_restart(),
        backup_crash_restart(),
        primary_partition(),
        lossy_replica_links(),
        delay_and_duplicate(),
        reorder_storm(),
        mute_primary(),
        equivocating_primary(),
        flooding_client(),
        invalid_mac_spammer(),
        oversized_client(),
        replace_replica_under_loss(),
        backup_markov_churn(),
    ]
