"""Protocol invariants checked after every fault-campaign run.

Eight checks, matching the paper's safety and liveness claims (plus the
sharding and membership layers' contracts):

* **agreement** — replicas never diverge: state roots match at every
  shared stable checkpoint and execution journals agree on every shared
  sequence number;
* **no committed-op loss** — an operation the client observed as
  completed survives every view change: a quorum of live replicas holds
  its per-client execution watermark;
* **monotone checkpoint stability** — a replica's stable checkpoint
  sequence never moves backwards, crash/restart included;
* **client liveness** — once every fault has healed and the drain window
  has passed, no invoked operation is left incomplete;
* **flood liveness** — honest clients keep completing work *during*
  Byzantine-client disturbances, not merely after they heal;
* **cross-shard atomicity** (#6, sharded topologies only) — no
  transaction commits on one shard and aborts on another, regardless of
  partitions, coordinator crashes, and recovery races;
* **membership safety** (#7) — replicas agree on the configuration
  history: epoch boundaries land at the same sequence numbers
  everywhere, and no operation executes under two different epochs;
* **migration safety** (#8, sharded topologies only) — across a live
  rebalance no committed write is lost and no key is served by two
  groups at once: every committed key is readable at exactly the group
  the final directory names as its owner.

Checks return :class:`Violation` lists rather than raising, so a
campaign can keep sweeping and report everything it found.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pbft.cluster import Cluster


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    invariant: str
    description: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.description}"


def check_agreement(cluster: Cluster) -> list[Violation]:
    """State roots and execution journals must agree wherever they overlap."""
    violations: list[Violation] = []
    replicas = cluster.replicas
    for seq in sorted({r.checkpoints.stable_seq for r in replicas}):
        roots = {
            r.node_id: cp.root
            for r in replicas
            if (cp := r.checkpoints.get(seq)) is not None
        }
        if len(set(roots.values())) > 1:
            violations.append(
                Violation(
                    "agreement",
                    f"divergent state roots at stable seq {seq}: "
                    + ", ".join(
                        f"replica{rid}={root.hex()[:8]}"
                        for rid, root in sorted(roots.items())
                    ),
                )
            )
    for i, a in enumerate(replicas):
        for b in replicas[i + 1 :]:
            for seq in sorted(set(a.exec_journal) & set(b.exec_journal)):
                ra = [(r.client, r.req_id) for r in a.exec_journal[seq][1]]
                rb = [(r.client, r.req_id) for r in b.exec_journal[seq][1]]
                if ra != rb:
                    violations.append(
                        Violation(
                            "agreement",
                            f"journal divergence at seq {seq} between "
                            f"replica{a.node_id} ({ra}) and "
                            f"replica{b.node_id} ({rb})",
                        )
                    )
    return violations


def check_no_committed_loss(
    cluster: Cluster, completed: list[tuple[int, int]]
) -> list[Violation]:
    """Every client-completed op must survive on a quorum of live replicas.

    A completed op was committed (the client held f+1 stable or 2f+1
    tentative replies), so after view changes and recoveries a quorum of
    live replicas must still carry its per-client execution watermark —
    the watermark is checkpoint-durable, so losing it means the view
    change dropped a committed operation.
    """
    violations: list[Violation] = []
    live = [r for r in cluster.replicas if not r.crashed]
    needed = min(cluster.config.quorum, len(live))
    # Only the highest completed req_id per client matters: watermarks are
    # monotone per client.
    latest: dict[int, int] = {}
    for client_id, req_id in completed:
        latest[client_id] = max(latest.get(client_id, -1), req_id)
    for client_id, req_id in sorted(latest.items()):
        holders = [
            r.node_id
            for r in live
            if r.reqstore.last_executed_req.get(client_id, -1) >= req_id
        ]
        if len(holders) < needed:
            violations.append(
                Violation(
                    "committed-loss",
                    f"client {client_id} op {req_id} completed at the client "
                    f"but only replicas {holders} (need {needed}) still "
                    f"carry its execution watermark",
                )
            )
    return violations


def check_checkpoint_monotone(
    stability_samples: dict[int, list[int]],
) -> list[Violation]:
    """A replica's stable checkpoint seq must never regress."""
    violations: list[Violation] = []
    for rid, samples in sorted(stability_samples.items()):
        for earlier, later in zip(samples, samples[1:]):
            if later < earlier:
                violations.append(
                    Violation(
                        "checkpoint-monotone",
                        f"replica{rid} stable checkpoint regressed "
                        f"{earlier} -> {later}",
                    )
                )
                break  # one report per replica is enough
    return violations


def check_flood_liveness(
    client_fault_windows: list[tuple[int, int]],
    completed_at_ns: list[int],
) -> list[Violation]:
    """Honest clients must keep completing work *during* a client-side
    attack (flood, MAC spam, oversized spam), not merely after it heals.

    ``client_fault_windows`` comes from the injector; ``completed_at_ns``
    are the completion timestamps of the honest workload.  Graceful
    degradation means goodput inside the window stays above zero.
    """
    from repro.common.units import MILLISECOND

    violations: list[Violation] = []
    for start, end in client_fault_windows:
        inside = sum(1 for t in completed_at_ns if start <= t <= end)
        if inside == 0:
            violations.append(
                Violation(
                    "flood-liveness",
                    f"no honest operation completed inside the "
                    f"Byzantine-client window "
                    f"{start / MILLISECOND:.0f}ms-{end / MILLISECOND:.0f}ms",
                )
            )
    return violations


def check_liveness(
    cluster: Cluster, invoked: list[tuple[int, int]], completed: list[tuple[int, int]]
) -> list[Violation]:
    """After faults heal and the drain window passes, nothing is pending."""
    missing = sorted(set(invoked) - set(completed))
    return [
        Violation(
            "liveness",
            f"client {client_id} op {req_id} never completed after faults healed",
        )
        for client_id, req_id in missing
    ]


def check_membership_safety(cluster: Cluster) -> list[Violation]:
    """Invariant #7: replicas agree on the configuration history.

    Two clauses, both over live replicas:

    * **epoch-mark agreement** — wherever two replicas both recorded an
      epoch boundary, they recorded it at the same sequence number: the
      (boundary_seq, epoch) marks of one are a prefix-consistent subset
      of the other's (a bootstrapping replica that adopted state past a
      boundary legitimately misses older marks);
    * **same seq, same configuration** — for every sequence number two
      replicas both executed, :meth:`ReconfigManager.epoch_at` returns
      the same epoch, so no operation was executed under two different
      configurations.
    """
    violations: list[Violation] = []
    live = [r for r in cluster.replicas if not r.crashed]
    for i, a in enumerate(live):
        for b in live[i + 1 :]:
            by_epoch_a = {e: s for s, e in a.reconfig.epoch_marks}
            by_epoch_b = {e: s for s, e in b.reconfig.epoch_marks}
            for epoch in sorted(set(by_epoch_a) & set(by_epoch_b)):
                if by_epoch_a[epoch] != by_epoch_b[epoch]:
                    violations.append(
                        Violation(
                            "membership-safety",
                            f"epoch {epoch} installed at seq "
                            f"{by_epoch_a[epoch]} on replica{a.node_id} but "
                            f"seq {by_epoch_b[epoch]} on replica{b.node_id}",
                        )
                    )
            for seq in sorted(set(a.exec_journal) & set(b.exec_journal)):
                ea = a.reconfig.epoch_at(seq)
                eb = b.reconfig.epoch_at(seq)
                if ea != eb:
                    violations.append(
                        Violation(
                            "membership-safety",
                            f"seq {seq} executed under epoch {ea} at "
                            f"replica{a.node_id} but epoch {eb} at "
                            f"replica{b.node_id}",
                        )
                    )
    return violations


def check_cross_shard_atomicity(groups: list[Cluster]) -> list[Violation]:
    """Invariant #6: a transaction's outcome is the same at every shard.

    Each shard's :class:`~repro.shard.txapp.ShardTxApplication` records
    every transaction it applied (1 = committed, 0 = aborted) in
    replicated state.  Two things must hold after the campaign's
    reconciliation sweep:

    * within one shard, no two live replicas recorded *different*
      outcomes for the same transaction (a replica that lags and has no
      record yet is fine — the agreement invariant covers state
      convergence);
    * across shards, every transaction's recorded outcomes agree — the
      "committed on one shard, aborted on another" bug this invariant
      exists to catch.
    """
    violations: list[Violation] = []
    per_shard: dict[int, dict[bytes, int]] = {}
    for shard, group in enumerate(groups):
        merged: dict[bytes, int] = {}
        for replica in group.replicas:
            if replica.crashed:
                continue
            outcomes = getattr(replica.app, "outcomes", None)
            if outcomes is None:
                continue
            for txid, outcome in outcomes().items():
                if txid in merged and merged[txid] != outcome:
                    violations.append(
                        Violation(
                            "cross-shard-atomicity",
                            f"shard {shard}: replicas disagree on txn "
                            f"{txid.hex()[:8]} "
                            f"({merged[txid]} vs {outcome})",
                        )
                    )
                merged[txid] = outcome
        per_shard[shard] = merged
    by_txid: dict[bytes, dict[int, int]] = {}
    for shard, merged in per_shard.items():
        for txid, outcome in merged.items():
            by_txid.setdefault(txid, {})[shard] = outcome
    for txid, shard_outcomes in sorted(by_txid.items()):
        if len(set(shard_outcomes.values())) > 1:
            detail = ", ".join(
                f"shard{shard}={'commit' if oc else 'abort'}"
                for shard, oc in sorted(shard_outcomes.items())
            )
            violations.append(
                Violation(
                    "cross-shard-atomicity",
                    f"txn {txid.hex()[:8]} has mixed outcomes: {detail}",
                )
            )
    return violations


def check_migration_safety(
    groups: list[Cluster],
    directory,
    writes: dict[bytes, bytes],
) -> list[Violation]:
    """Invariant #8: a live migration loses nothing and splits nothing.

    ``writes`` maps every key the workload observed as *committed* to its
    last committed value.  After the run (and any mid-run rebalancing),
    two things must hold against the kv replies of each group's live
    replicas:

    * **nothing lost** — the group the final directory names as the
      key's owner serves the committed value;
    * **nothing split** — no *other* group still serves the key: the
      source of a move must answer with a redirect or a miss, never with
      data, or a stale router could read (and a retried write could
      land) on both sides of a finished move.

    Reads go through the replicas' own execute path (readonly), so a
    frozen or tombstoned unit answers exactly as it would answer a
    client.
    """
    from repro.apps.kvstore import encode_get
    from repro.shard.txapp import is_tx_reply

    violations: list[Violation] = []
    readers = []
    for group in groups:
        replica = next((r for r in group.replicas if not r.crashed), None)
        readers.append(replica.app if replica is not None else None)
    for key, value in sorted(writes.items()):
        owner = directory.shard_of_key(key)
        for shard, app in enumerate(readers):
            if app is None:
                continue
            reply = app.execute(encode_get(key), 0, 0, True)
            served = not is_tx_reply(reply) and reply[:1] == b"\x01"
            if shard == owner:
                if not served:
                    violations.append(
                        Violation(
                            "migration-safety",
                            f"committed key {key!r} unreadable at its owner "
                            f"shard {shard}",
                        )
                    )
                elif value not in reply:
                    violations.append(
                        Violation(
                            "migration-safety",
                            f"owner shard {shard} serves a wrong value for "
                            f"committed key {key!r}",
                        )
                    )
            elif served:
                violations.append(
                    Violation(
                        "migration-safety",
                        f"key {key!r} is served by shard {shard} AND its "
                        f"owner shard {owner} after the move",
                    )
                )
    return violations
