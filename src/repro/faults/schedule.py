"""Declarative fault schedules.

A :class:`FaultSchedule` is data, not code: a named list of fault
declarations, each bound to a :class:`Trigger` saying *when* it fires
(wall-clock time, committed sequence number, and/or installed view) and,
where applicable, how long the disturbance lasts.  The
:class:`~repro.faults.injector.FaultInjector` turns the declarations into
concrete actions against a running cluster; keeping the two apart means a
schedule can be swept across RNG seeds, printed in a report, and replayed
exactly when an invariant fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.units import MILLISECOND


@dataclass(frozen=True)
class Trigger:
    """When a fault fires: every specified condition must hold.

    ``at_ns`` compares against simulated time; ``at_seq`` against the
    highest committed sequence number on any live replica; ``at_view``
    against the highest installed view.  A trigger with no conditions
    fires immediately.
    """

    at_ns: int | None = None
    at_seq: int | None = None
    at_view: int | None = None

    def ready(self, now_ns: int, max_seq: int, max_view: int) -> bool:
        if self.at_ns is not None and now_ns < self.at_ns:
            return False
        if self.at_seq is not None and max_seq < self.at_seq:
            return False
        if self.at_view is not None and max_view < self.at_view:
            return False
        return True

    def describe(self) -> str:
        parts = []
        if self.at_ns is not None:
            parts.append(f"t>={self.at_ns / MILLISECOND:.0f}ms")
        if self.at_seq is not None:
            parts.append(f"seq>={self.at_seq}")
        if self.at_view is not None:
            parts.append(f"view>={self.at_view}")
        return " and ".join(parts) if parts else "immediately"


@dataclass(frozen=True)
class CrashReplica:
    """Crash one replica; optionally restart it after a delay."""

    replica: int
    at: Trigger = field(default_factory=Trigger)
    restart_after_ns: int | None = 400 * MILLISECOND

    def describe(self) -> str:
        tail = (
            f", restart +{self.restart_after_ns / MILLISECOND:.0f}ms"
            if self.restart_after_ns is not None
            else ", no restart"
        )
        return f"crash replica{self.replica} ({self.at.describe()}{tail})"


@dataclass(frozen=True)
class PartitionFault:
    """Cut every link between two host groups, then heal exactly those."""

    group_a: frozenset[str]
    group_b: frozenset[str]
    start: Trigger = field(default_factory=Trigger)
    heal_after_ns: int = 400 * MILLISECOND

    def describe(self) -> str:
        return (
            f"partition {sorted(self.group_a)} | {sorted(self.group_b)} "
            f"({self.start.describe()}, heal +{self.heal_after_ns / MILLISECOND:.0f}ms)"
        )


@dataclass(frozen=True)
class LinkDisturbance:
    """A windowed per-link drop/delay/duplicate/reorder disturbance.

    ``src``/``dst`` are host-name patterns (``fnmatch`` style, e.g.
    ``"replica*"``); the window opens at ``start`` and closes after
    ``duration_ns``.
    """

    src: str = "*"
    dst: str = "*"
    start: Trigger = field(default_factory=Trigger)
    duration_ns: int = 400 * MILLISECOND
    drop_probability: float = 0.0
    extra_delay_ns: int = 0
    duplicate_probability: float = 0.0
    reorder_probability: float = 0.0

    def describe(self) -> str:
        effects = []
        if self.drop_probability:
            effects.append(f"drop {self.drop_probability:.0%}")
        if self.extra_delay_ns:
            effects.append(f"delay +{self.extra_delay_ns / MILLISECOND:.1f}ms")
        if self.duplicate_probability:
            effects.append(f"dup {self.duplicate_probability:.0%}")
        if self.reorder_probability:
            effects.append(f"reorder {self.reorder_probability:.0%}")
        return (
            f"disturb {self.src}->{self.dst} [{', '.join(effects) or 'no-op'}] "
            f"({self.start.describe()}, {self.duration_ns / MILLISECOND:.0f}ms window)"
        )


@dataclass(frozen=True)
class MutePrimary:
    """Silence the *current* primary: it receives but sends nothing.

    Models a live process behind a dead NIC — the silent-primary failure
    only client retransmissions and view-change timers can detect.
    """

    start: Trigger = field(default_factory=Trigger)
    duration_ns: int = 400 * MILLISECOND

    def describe(self) -> str:
        return (
            f"mute primary ({self.start.describe()}, "
            f"{self.duration_ns / MILLISECOND:.0f}ms)"
        )


@dataclass(frozen=True)
class EquivocatingPrimary:
    """Make the *current* primary assign conflicting pre-prepares.

    Backups split between two batch digests; neither side can gather a
    commit quorum, so the window ends in a view change that must not lose
    committed operations.
    """

    start: Trigger = field(default_factory=Trigger)
    duration_ns: int = 300 * MILLISECOND

    def describe(self) -> str:
        return (
            f"equivocating primary ({self.start.describe()}, "
            f"{self.duration_ns / MILLISECOND:.0f}ms)"
        )


@dataclass(frozen=True)
class FloodingClient:
    """A registered Byzantine client firing requests far faster than it
    waits for replies, aimed at the primary's batching queue.

    The admission pipeline should hold it to one in-flight operation
    (``inflight_capped`` strikes the rest) while honest clients keep
    completing work — the flood-liveness invariant checks exactly that.
    """

    start: Trigger = field(default_factory=Trigger)
    duration_ns: int = 400 * MILLISECOND
    interval_ns: int = 2 * MILLISECOND
    payload_bytes: int = 128

    def describe(self) -> str:
        return (
            f"flooding client, 1 req/{self.interval_ns / MILLISECOND:.2f}ms "
            f"at the primary ({self.start.describe()}, "
            f"{self.duration_ns / MILLISECOND:.0f}ms)"
        )


@dataclass(frozen=True)
class InvalidMacSpammer:
    """An unregistered principal spraying garbage-MAC requests at every
    replica: the penalty-box workload.  Every datagram fails
    authentication; after ``penalty_box_threshold`` failures the sender
    is muted and the rest of the flood is dropped at header-peek cost.
    """

    start: Trigger = field(default_factory=Trigger)
    duration_ns: int = 300 * MILLISECOND
    interval_ns: int = 1 * MILLISECOND
    payload_bytes: int = 128

    def describe(self) -> str:
        return (
            f"invalid-MAC spammer, 1 msg/{self.interval_ns / MILLISECOND:.1f}ms "
            f"to all replicas ({self.start.describe()}, "
            f"{self.duration_ns / MILLISECOND:.0f}ms)"
        )


@dataclass(frozen=True)
class OversizedClient:
    """A registered client submitting operations beyond
    ``max_request_bytes``; every one must be rejected with a
    BUSY/oversized reply before touching the queue.  ``payload_bytes``
    of ``None`` means twice the configured limit.
    """

    start: Trigger = field(default_factory=Trigger)
    duration_ns: int = 300 * MILLISECOND
    interval_ns: int = 10 * MILLISECOND
    payload_bytes: int | None = None

    def describe(self) -> str:
        size = "2x limit" if self.payload_bytes is None else f"{self.payload_bytes}B"
        return (
            f"oversized-request client ({size}, {self.start.describe()}, "
            f"{self.duration_ns / MILLISECOND:.0f}ms)"
        )


@dataclass(frozen=True)
class MarkovChurn:
    """Continuous-time fail/repair churn on one replica.

    The replica alternates exponentially distributed up/down periods (a
    two-state Markov chain) for ``duration_ns``: crash after ~Exp(mean_up),
    restart after ~Exp(mean_down), repeat.  The analytic steady-state
    availability of one replica is ``mean_up / (mean_up + mean_down)``;
    :func:`repro.harness.membershipbench.analytic_availability` lifts that
    to the 2f+1-of-n quorum availability the campaign measures against.
    """

    replica: int
    mean_up_ns: int = 400 * MILLISECOND
    mean_down_ns: int = 100 * MILLISECOND
    duration_ns: int = 2000 * MILLISECOND
    start: Trigger = field(default_factory=Trigger)

    def describe(self) -> str:
        return (
            f"markov churn replica{self.replica} "
            f"(up~Exp({self.mean_up_ns / MILLISECOND:.0f}ms), "
            f"down~Exp({self.mean_down_ns / MILLISECOND:.0f}ms), "
            f"{self.start.describe()}, "
            f"{self.duration_ns / MILLISECOND:.0f}ms window)"
        )


@dataclass(frozen=True)
class ReplicaReplace:
    """Replace the replica in one slot with a brand-new machine.

    The injector submits the ordered RECONFIG_REPLACE system op through a
    client, waits for it to commit, and then performs the physical swap
    (:meth:`repro.pbft.cluster.Cluster.replace_replica`): fresh keys,
    empty state, bootstrap via status gossip and state transfer.
    """

    slot: int
    at: Trigger = field(default_factory=Trigger)

    def describe(self) -> str:
        return f"replace replica{self.slot} ({self.at.describe()})"


Fault = (
    CrashReplica
    | PartitionFault
    | LinkDisturbance
    | MutePrimary
    | EquivocatingPrimary
    | FloodingClient
    | InvalidMacSpammer
    | OversizedClient
    | MarkovChurn
    | ReplicaReplace
)


@dataclass(frozen=True)
class FaultSchedule:
    """A named, ordered set of fault declarations for one campaign run."""

    name: str
    description: str
    faults: tuple[Fault, ...]

    def validate(self, n: int) -> None:
        if not self.name:
            raise ConfigError("fault schedule needs a name")
        for fault in self.faults:
            if isinstance(fault, CrashReplica) and not 0 <= fault.replica < n:
                raise ConfigError(
                    f"schedule {self.name!r} crashes unknown replica {fault.replica}"
                )
            if isinstance(fault, MarkovChurn):
                if not 0 <= fault.replica < n:
                    raise ConfigError(
                        f"schedule {self.name!r} churns unknown replica "
                        f"{fault.replica}"
                    )
                if fault.mean_up_ns <= 0 or fault.mean_down_ns <= 0:
                    raise ConfigError(
                        f"schedule {self.name!r}: churn means must be positive"
                    )
            if isinstance(fault, ReplicaReplace) and not 0 <= fault.slot < n:
                raise ConfigError(
                    f"schedule {self.name!r} replaces unknown slot {fault.slot}"
                )

    def describe(self) -> list[str]:
        return [fault.describe() for fault in self.faults]
