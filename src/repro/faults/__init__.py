"""repro.faults — deterministic fault-injection campaigns.

Declarative :class:`FaultSchedule`s (crash/restart, partitions, windowed
link disturbances, mute and equivocating primaries) are applied to a
running cluster by a polling :class:`FaultInjector`; the campaign runner
sweeps schedules × RNG seeds and checks the protocol invariants after
every run — agreement, no committed-op loss, monotone checkpoint
stability, client liveness, flood liveness, cross-shard atomicity, and
membership safety.  On violation it re-runs the identical
(schedule, seed) pair with tracing enabled and dumps a Chrome trace plus
a minimized event log via :mod:`repro.obs`.
"""

from repro.faults.campaign import (
    CampaignResult,
    RunResult,
    campaign_config,
    run_campaign,
    run_schedule,
)
from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    Violation,
    check_agreement,
    check_checkpoint_monotone,
    check_flood_liveness,
    check_liveness,
    check_membership_safety,
    check_no_committed_loss,
)
from repro.faults.library import builtin_schedules
from repro.faults.schedule import (
    CrashReplica,
    EquivocatingPrimary,
    FaultSchedule,
    FloodingClient,
    InvalidMacSpammer,
    LinkDisturbance,
    MarkovChurn,
    MutePrimary,
    OversizedClient,
    PartitionFault,
    ReplicaReplace,
    Trigger,
)

__all__ = [
    "CampaignResult",
    "CrashReplica",
    "EquivocatingPrimary",
    "FaultInjector",
    "FaultSchedule",
    "FloodingClient",
    "InvalidMacSpammer",
    "LinkDisturbance",
    "MarkovChurn",
    "MutePrimary",
    "OversizedClient",
    "PartitionFault",
    "ReplicaReplace",
    "RunResult",
    "Trigger",
    "Violation",
    "builtin_schedules",
    "campaign_config",
    "check_agreement",
    "check_checkpoint_monotone",
    "check_flood_liveness",
    "check_liveness",
    "check_membership_safety",
    "check_no_committed_loss",
    "run_campaign",
    "run_schedule",
]
