"""The fault injector: applies a schedule to a running cluster.

A deterministic polling loop on the cluster's simulator evaluates every
pending fault's :class:`~repro.faults.schedule.Trigger` against the
current time / committed sequence / installed view, applies those that
fire through the hooks in :mod:`repro.net.fabric` and
:mod:`repro.pbft.replica`, and schedules the matching heal (restart,
unpartition, window close, unmute).  Each poll also samples per-replica
checkpoint stability for the monotonicity invariant.

Polling (rather than callbacks buried in the protocol) keeps injection
deterministic and external: the replicas under test never know the
campaign exists.
"""

from __future__ import annotations

from repro.common.units import MILLISECOND
from repro.net.fabric import LinkFault
from repro.pbft.cluster import Cluster
from repro.faults.schedule import (
    CrashReplica,
    EquivocatingPrimary,
    FaultSchedule,
    LinkDisturbance,
    MutePrimary,
    PartitionFault,
)


class FaultInjector:
    """Drives one :class:`FaultSchedule` against one :class:`Cluster`."""

    def __init__(
        self,
        cluster: Cluster,
        schedule: FaultSchedule,
        poll_interval_ns: int = 2 * MILLISECOND,
    ) -> None:
        schedule.validate(cluster.config.n)
        self.cluster = cluster
        self.schedule = schedule
        self.poll_interval_ns = poll_interval_ns
        self.pending = list(schedule.faults)
        self.open_heals = 0  # restarts/heals scheduled but not yet fired
        self.log: list[str] = []  # human-readable applied-fault journal
        # replica id -> list of sampled checkpoint stable seqs (only while
        # the replica is up), for the monotone-stability invariant.
        self.stability_samples: dict[int, list[int]] = {
            r.node_id: [] for r in cluster.replicas
        }
        self._timer = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        self._arm()

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def quiescent(self) -> bool:
        """True once every fault has been applied *and* healed."""
        return not self.pending and self.open_heals == 0

    # -- polling ------------------------------------------------------------

    def _arm(self) -> None:
        self._timer = self.cluster.sim.schedule(self.poll_interval_ns, self._poll)

    def _poll(self) -> None:
        self._timer = None
        cluster = self.cluster
        now = cluster.sim.now
        live = [r for r in cluster.replicas if not r.crashed]
        max_seq = max((r.committed_upto for r in live), default=0)
        max_view = max((r.view for r in live), default=0)
        still_pending = []
        for fault in self.pending:
            trigger = fault.at if isinstance(fault, CrashReplica) else fault.start
            if trigger.ready(now, max_seq, max_view):
                self._apply(fault, max_view)
            else:
                still_pending.append(fault)
        self.pending = still_pending
        for replica in live:
            self.stability_samples[replica.node_id].append(
                replica.checkpoints.stable_seq
            )
        self._arm()

    # -- application --------------------------------------------------------

    def _note(self, text: str) -> None:
        self.log.append(f"{self.cluster.sim.now / MILLISECOND:9.1f}ms  {text}")

    def _heal_later(self, delay_ns: int, action, text: str) -> None:
        self.open_heals += 1

        def heal() -> None:
            self.open_heals -= 1
            action()
            self._note(text)

        self.cluster.sim.schedule(delay_ns, heal)

    def _apply(self, fault, max_view: int) -> None:
        cluster = self.cluster
        if isinstance(fault, CrashReplica):
            replica = cluster.replicas[fault.replica]
            if replica.crashed:
                self._note(f"skip: replica{fault.replica} already crashed")
                return
            replica.crash()
            self._note(fault.describe())
            if fault.restart_after_ns is not None:
                self._heal_later(
                    fault.restart_after_ns,
                    replica.restart,
                    f"restart replica{fault.replica}",
                )
        elif isinstance(fault, PartitionFault):
            cluster.fabric.partition(set(fault.group_a), set(fault.group_b))
            self._note(fault.describe())
            self._heal_later(
                fault.heal_after_ns,
                lambda: cluster.fabric.unpartition(
                    set(fault.group_a), set(fault.group_b)
                ),
                f"heal partition {sorted(fault.group_a)} | {sorted(fault.group_b)}",
            )
        elif isinstance(fault, LinkDisturbance):
            link_fault = LinkFault(
                src=fault.src,
                dst=fault.dst,
                drop_probability=fault.drop_probability,
                extra_delay_ns=fault.extra_delay_ns,
                duplicate_probability=fault.duplicate_probability,
                reorder_probability=fault.reorder_probability,
                name=f"{self.schedule.name}:{fault.src}->{fault.dst}",
            )
            cluster.fabric.add_link_fault(link_fault)
            self._note(fault.describe())
            self._heal_later(
                fault.duration_ns,
                lambda: cluster.fabric.remove_link_fault(link_fault),
                f"close disturbance window {fault.src}->{fault.dst}",
            )
        elif isinstance(fault, MutePrimary):
            primary = cluster.replicas[max_view % cluster.config.n]
            primary.muted = True
            self._note(f"{fault.describe()} -> replica{primary.node_id}")

            def unmute() -> None:
                primary.muted = False

            self._heal_later(
                fault.duration_ns, unmute, f"unmute replica{primary.node_id}"
            )
        elif isinstance(fault, EquivocatingPrimary):
            primary = cluster.replicas[max_view % cluster.config.n]
            primary.equivocate = True
            self._note(f"{fault.describe()} -> replica{primary.node_id}")

            def stop_equivocating() -> None:
                primary.equivocate = False

            self._heal_later(
                fault.duration_ns,
                stop_equivocating,
                f"replica{primary.node_id} stops equivocating",
            )
        else:  # pragma: no cover - schedule.validate keeps this unreachable
            raise TypeError(f"unknown fault declaration {fault!r}")
