"""The fault injector: applies a schedule to a running cluster.

A deterministic polling loop on the cluster's simulator evaluates every
pending fault's :class:`~repro.faults.schedule.Trigger` against the
current time / committed sequence / installed view, applies those that
fire through the hooks in :mod:`repro.net.fabric` and
:mod:`repro.pbft.replica`, and schedules the matching heal (restart,
unpartition, window close, unmute).  Each poll also samples per-replica
checkpoint stability for the monotonicity invariant.

Polling (rather than callbacks buried in the protocol) keeps injection
deterministic and external: the replicas under test never know the
campaign exists.
"""

from __future__ import annotations

from repro.common.ids import make_client_id
from repro.common.units import MILLISECOND
from repro.net.fabric import LinkFault
from repro.pbft.client import PbftClient
from repro.pbft.cluster import Cluster
from repro.pbft.messages import Request
from repro.pbft.node import AUTH_MAC, CLIENT_PORT, Envelope, replica_address
from repro.faults.schedule import (
    CrashReplica,
    EquivocatingPrimary,
    FaultSchedule,
    FloodingClient,
    InvalidMacSpammer,
    LinkDisturbance,
    MarkovChurn,
    MutePrimary,
    OversizedClient,
    PartitionFault,
    ReplicaReplace,
)


class FaultInjector:
    """Drives one :class:`FaultSchedule` against one :class:`Cluster`."""

    def __init__(
        self,
        cluster: Cluster,
        schedule: FaultSchedule,
        poll_interval_ns: int = 2 * MILLISECOND,
    ) -> None:
        schedule.validate(cluster.config.n)
        self.cluster = cluster
        self.schedule = schedule
        self.poll_interval_ns = poll_interval_ns
        self.pending = list(schedule.faults)
        self.open_heals = 0  # restarts/heals scheduled but not yet fired
        self.log: list[str] = []  # human-readable applied-fault journal
        # replica id -> list of sampled checkpoint stable seqs (only while
        # the replica is up), for the monotone-stability invariant.
        self.stability_samples: dict[int, list[int]] = {
            r.node_id: [] for r in cluster.replicas
        }
        # (start_ns, end_ns) of every Byzantine-client disturbance, for
        # the flood-liveness invariant (honest clients must complete work
        # *inside* these windows, not merely after they close).
        self.client_fault_windows: list[tuple[int, int]] = []
        self._rogues = 0
        self._timer = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        self._arm()

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def quiescent(self) -> bool:
        """True once every fault has been applied *and* healed."""
        return not self.pending and self.open_heals == 0

    # -- polling ------------------------------------------------------------

    def _arm(self) -> None:
        self._timer = self.cluster.sim.schedule(self.poll_interval_ns, self._poll)

    def _poll(self) -> None:
        self._timer = None
        cluster = self.cluster
        now = cluster.sim.now
        live = [r for r in cluster.replicas if not r.crashed]
        max_seq = max((r.committed_upto for r in live), default=0)
        max_view = max((r.view for r in live), default=0)
        still_pending = []
        for fault in self.pending:
            trigger = (
                fault.at
                if isinstance(fault, (CrashReplica, ReplicaReplace))
                else fault.start
            )
            if trigger.ready(now, max_seq, max_view):
                self._apply(fault, max_view)
            else:
                still_pending.append(fault)
        self.pending = still_pending
        for replica in live:
            self.stability_samples[replica.node_id].append(
                replica.checkpoints.stable_seq
            )
        self._arm()

    # -- application --------------------------------------------------------

    def _note(self, text: str) -> None:
        self.log.append(f"{self.cluster.sim.now / MILLISECOND:9.1f}ms  {text}")

    def _heal_later(self, delay_ns: int, action, text: str) -> None:
        self.open_heals += 1

        def heal() -> None:
            self.open_heals -= 1
            action()
            self._note(text)

        self.cluster.sim.schedule(delay_ns, heal)

    def _apply(self, fault, max_view: int) -> None:
        cluster = self.cluster
        if isinstance(fault, CrashReplica):
            replica = cluster.replicas[fault.replica]
            if replica.crashed:
                self._note(f"skip: replica{fault.replica} already crashed")
                return
            replica.crash()
            self._note(fault.describe())
            if fault.restart_after_ns is not None:
                self._heal_later(
                    fault.restart_after_ns,
                    replica.restart,
                    f"restart replica{fault.replica}",
                )
        elif isinstance(fault, PartitionFault):
            cluster.fabric.partition(set(fault.group_a), set(fault.group_b))
            self._note(fault.describe())
            self._heal_later(
                fault.heal_after_ns,
                lambda: cluster.fabric.unpartition(
                    set(fault.group_a), set(fault.group_b)
                ),
                f"heal partition {sorted(fault.group_a)} | {sorted(fault.group_b)}",
            )
        elif isinstance(fault, LinkDisturbance):
            link_fault = LinkFault(
                src=fault.src,
                dst=fault.dst,
                drop_probability=fault.drop_probability,
                extra_delay_ns=fault.extra_delay_ns,
                duplicate_probability=fault.duplicate_probability,
                reorder_probability=fault.reorder_probability,
                name=f"{self.schedule.name}:{fault.src}->{fault.dst}",
            )
            cluster.fabric.add_link_fault(link_fault)
            self._note(fault.describe())
            self._heal_later(
                fault.duration_ns,
                lambda: cluster.fabric.remove_link_fault(link_fault),
                f"close disturbance window {fault.src}->{fault.dst}",
            )
        elif isinstance(fault, MutePrimary):
            primary = cluster.replicas[max_view % cluster.config.n]
            primary.muted = True
            self._note(f"{fault.describe()} -> replica{primary.node_id}")

            def unmute() -> None:
                primary.muted = False

            self._heal_later(
                fault.duration_ns, unmute, f"unmute replica{primary.node_id}"
            )
        elif isinstance(fault, EquivocatingPrimary):
            primary = cluster.replicas[max_view % cluster.config.n]
            primary.equivocate = True
            self._note(f"{fault.describe()} -> replica{primary.node_id}")

            def stop_equivocating() -> None:
                primary.equivocate = False

            self._heal_later(
                fault.duration_ns,
                stop_equivocating,
                f"replica{primary.node_id} stops equivocating",
            )
        elif isinstance(fault, MarkovChurn):
            self._apply_markov_churn(fault)
        elif isinstance(fault, ReplicaReplace):
            self._apply_replica_replace(fault)
        elif isinstance(fault, FloodingClient):
            self._apply_flooding_client(fault)
        elif isinstance(fault, InvalidMacSpammer):
            self._apply_invalid_mac_spammer(fault)
        elif isinstance(fault, OversizedClient):
            self._apply_oversized_client(fault)
        else:  # pragma: no cover - schedule.validate keeps this unreachable
            raise TypeError(f"unknown fault declaration {fault!r}")

    # -- membership drivers ---------------------------------------------------

    def _apply_markov_churn(self, fault: MarkovChurn) -> None:
        """Alternate Exp(mean_up)/Exp(mean_down) crash/restart cycles on one
        replica until the window closes (two-state Markov fail/repair)."""
        cluster = self.cluster
        slot = fault.replica
        rng = cluster.rng.stream(f"churn-{self.schedule.name}-{slot}")
        end = cluster.sim.now + fault.duration_ns
        state = {"transitions": 0}
        self.open_heals += 1
        self._note(fault.describe())

        def finish() -> None:
            replica = cluster.replicas[slot]
            if replica.crashed:
                replica.restart()
            self.open_heals -= 1
            self._note(
                f"churn window on replica{slot} ends "
                f"({state['transitions']} fail/repair cycles)"
            )

        def go_down() -> None:
            now = cluster.sim.now
            if now >= end:
                finish()
                return
            replica = cluster.replicas[slot]
            if not replica.crashed:
                replica.crash()
                state["transitions"] += 1
            down = max(1, int(rng.expovariate(1.0 / fault.mean_down_ns)))
            cluster.sim.schedule(min(down, end - now), go_up)

        def go_up() -> None:
            now = cluster.sim.now
            replica = cluster.replicas[slot]
            if replica.crashed:
                replica.restart()
            if now >= end:
                finish()
                return
            up = max(1, int(rng.expovariate(1.0 / fault.mean_up_ns)))
            cluster.sim.schedule(min(up, end - now), go_down)

        first_up = max(1, int(rng.expovariate(1.0 / fault.mean_up_ns)))
        cluster.sim.schedule(min(first_up, fault.duration_ns), go_down)

    def _apply_replica_replace(self, fault: ReplicaReplace) -> None:
        """Order a RECONFIG_REPLACE through a client, then physically swap
        the slot's machine and hold the heal open until it bootstraps."""
        from repro.membership.messages import RECONFIG_REPLACE, encode_reconfig_op
        from repro.pbft.reconfig import REPLY_RECONFIG_OK

        cluster = self.cluster
        slot = fault.slot
        operator = self._rogue_client(register=True)
        self.open_heals += 1
        self._note(fault.describe())

        def wait_bootstrapped() -> None:
            replica = cluster.replicas[slot]
            # "Bootstrapped" means actually caught up, not merely done with
            # the recovery handshake (which finishes trivially when no peer
            # status has arrived yet): within one checkpoint interval of
            # the live peers' execution frontier.
            frontier = max(
                (
                    r.last_exec
                    for r in cluster.replicas
                    if not r.crashed and r.node_id != slot
                ),
                default=0,
            )
            caught_up = (
                not replica.crashed
                and not replica.recovering
                and replica.last_exec + cluster.config.checkpoint_interval
                >= frontier
            )
            if caught_up:
                self.open_heals -= 1
                self._note(
                    f"replica{slot} bootstrapped (last_exec {replica.last_exec})"
                )
            else:
                cluster.sim.schedule(20 * MILLISECOND, wait_bootstrapped)

        def swap() -> None:
            # The new incarnation's stable checkpoint starts at 0 until the
            # state transfer lands; the monotone invariant tracks machines,
            # not slots, so its sample series restarts with the machine.
            self.stability_samples[slot] = []
            cluster.replace_replica(slot)
            self._note(f"replica{slot} physically replaced; bootstrapping")
            wait_bootstrapped()

        def on_reply(result: bytes, _lat: int) -> None:
            operator.stop()
            if result != REPLY_RECONFIG_OK:
                self.open_heals -= 1
                self._note(f"reconfig replace slot {slot} rejected: {result!r}")
                return
            cluster.sim.schedule(MILLISECOND, swap)

        operator.invoke(encode_reconfig_op(RECONFIG_REPLACE, slot), callback=on_reply)

    # -- Byzantine-client drivers -------------------------------------------

    def _rogue_client(self, register: bool) -> PbftClient:
        """A fresh client endpoint outside the workload population.

        ``register`` pre-shares its address and session keys at every
        replica (a legitimately admitted but misbehaving client); without
        it the principal is unknown and every MAC it sends fails
        verification.
        """
        cluster = self.cluster
        index = self._rogues
        self._rogues += 1
        client_id = make_client_id(900 + index)
        host = cluster.fabric.add_host(
            f"{cluster.config.group_prefix}byzhost{index}"
        )
        cluster.keys.new_client_keypair(client_id)
        client = PbftClient(
            client_id=client_id,
            config=cluster.config,
            host=host,
            port=CLIENT_PORT + 900 + index,
            keys=cluster.keys,
            real_crypto=cluster.replicas[0].real_crypto,
            obs=cluster.obs,
        )
        if register:
            session = client.generate_session_keys(
                cluster.rng.stream(f"byz-sessions-{index}")
            )
            for replica in cluster.replicas:
                replica.register_client(
                    client_id, client.socket.address, session[replica.node_id]
                )
        return client

    def _open_client_fault_window(self, duration_ns: int) -> int:
        start = self.cluster.sim.now
        self.client_fault_windows.append((start, start + duration_ns))
        return start

    def _apply_flooding_client(self, fault: FloodingClient) -> None:
        cluster = self.cluster
        rogue = self._rogue_client(register=True)
        payload = bytes(fault.payload_bytes)
        state = {"req_id": 0, "timer": None}

        def tick() -> None:
            state["req_id"] += 1
            # Fire-and-forget at whoever currently leads: the flooder
            # never waits for replies, which is exactly what the
            # per-client in-flight cap is for.  ``big=False`` keeps the
            # body inline in pre-prepares, so the one admitted request
            # per cycle stays executable group-wide.
            req = Request(
                client=rogue.node_id,
                req_id=state["req_id"],
                op=payload,
                big=False,
            )
            view = max(r.view for r in cluster.replicas if not r.crashed)
            rogue.broadcast_to_replicas(req, only=[view % cluster.config.n])
            state["timer"] = cluster.sim.schedule(fault.interval_ns, tick)

        self._open_client_fault_window(fault.duration_ns)
        tick()
        self._note(fault.describe() + f" -> client {rogue.node_id}")

        def stop_flood() -> None:
            if state["timer"] is not None:
                state["timer"].cancel()
            rogue.stop()
            self._note(f"  ... {state['req_id']} flood requests were sent")

        self._heal_later(
            fault.duration_ns, stop_flood,
            f"flood from client {rogue.node_id} ends",
        )

    def _apply_invalid_mac_spammer(self, fault: InvalidMacSpammer) -> None:
        cluster = self.cluster
        rogue = self._rogue_client(register=False)
        payload = bytes(fault.payload_bytes)
        state = {"req_id": 0, "timer": None}

        def tick() -> None:
            state["req_id"] += 1
            req = Request(
                client=rogue.node_id, req_id=state["req_id"], op=payload
            )
            # Hand-built envelope with a garbage MAC trailer: the node
            # send paths would refuse to fake one, a Byzantine sender
            # has no such scruples.
            env = Envelope(req, AUTH_MAC, b"\xde\xad\xbe\xef", "client",
                           rogue.node_id)
            for rid in range(cluster.config.n):
                rogue.host.charge_cpu(cluster.config.costs.msg_send_ns)
                rogue.socket.send(
                    replica_address(rid, cluster.config.group_prefix),
                    env, env.size, "Request",
                )
            state["timer"] = cluster.sim.schedule(fault.interval_ns, tick)

        self._open_client_fault_window(fault.duration_ns)
        tick()
        self._note(fault.describe() + f" -> principal {rogue.node_id}")

        def stop_spam() -> None:
            if state["timer"] is not None:
                state["timer"].cancel()
            rogue.stop()
            self._note(f"  ... {state['req_id']} garbage datagrams were sent")

        self._heal_later(
            fault.duration_ns, stop_spam,
            f"invalid-MAC spam from principal {rogue.node_id} ends",
        )

    def _apply_oversized_client(self, fault: OversizedClient) -> None:
        cluster = self.cluster
        rogue = self._rogue_client(register=True)
        limit = cluster.config.max_request_bytes or 0
        size = fault.payload_bytes if fault.payload_bytes is not None else 2 * limit + 1
        payload = bytes(size)
        state = {"req_id": 0, "timer": None}

        def tick() -> None:
            state["req_id"] += 1
            req = Request(
                client=rogue.node_id,
                req_id=state["req_id"],
                op=payload,
                big=cluster.config.is_big(len(payload)),
            )
            rogue.broadcast_to_replicas(req)
            state["timer"] = cluster.sim.schedule(fault.interval_ns, tick)

        self._open_client_fault_window(fault.duration_ns)
        tick()
        self._note(fault.describe() + f" -> client {rogue.node_id}")

        def stop_oversized() -> None:
            if state["timer"] is not None:
                state["timer"].cancel()
            rogue.stop()
            self._note(f"  ... {state['req_id']} oversized requests were sent")

        self._heal_later(
            fault.duration_ns, stop_oversized,
            f"oversized spam from client {rogue.node_id} ends",
        )
