"""Render experiment results in the paper's row/series format."""

from __future__ import annotations

from repro.common.units import format_duration
from repro.harness.configs import (
    PAPER_SQL_ACID_TPS,
    PAPER_SQL_NOACID_TPS,
    ConfigRow,
)
from repro.harness.measure import Measurement


def _yes_no(flag: bool) -> str:
    return "Yes" if flag else "No"


def format_table1(results: list[tuple[ConfigRow, Measurement]]) -> str:
    """Table 1's exact columns, with paper values alongside ours."""
    header = (
        f"{'Name':32s} {'StaticClients':>13s} {'MACs':>5s} {'AllBig':>7s} "
        f"{'Batching':>9s} {'TPS':>8s} {'Paper':>8s} {'%ofBest':>8s}"
    )
    lines = [header, "-" * len(header)]
    best = max(m.tps for _r, m in results) or 1.0
    for row, m in results:
        paper = f"{row.paper_tps:.0f}" if row.paper_tps else "-"
        lines.append(
            f"{row.name:32s} {_yes_no(row.static_clients):>13s} "
            f"{_yes_no(row.use_macs):>5s} {_yes_no(row.all_big):>7s} "
            f"{_yes_no(row.batching):>9s} {m.tps:8.0f} {paper:>8s} "
            f"{100 * m.tps / best:7.1f}%"
        )
    return "\n".join(lines)


def format_fig4(sweep: dict[int, list[tuple[ConfigRow, Measurement]]]) -> str:
    """Figure 4 as series: one column per payload size."""
    sizes = sorted(sweep)
    names = [row.name for row, _m in sweep[sizes[0]]]
    header = f"{'Config':32s} " + " ".join(f"{size:>8d}B" for size in sizes)
    lines = [header, "-" * len(header)]
    for i, name in enumerate(names):
        cells = " ".join(f"{sweep[size][i][1].tps:9.0f}" for size in sizes)
        lines.append(f"{name:32s} {cells}")
    return "\n".join(lines)


def format_fig5(results: list[tuple[ConfigRow, Measurement]]) -> str:
    """Figure 5: SQL insert TPS per configuration."""
    header = f"{'Config':32s} {'TPS':>8s} {'%ofBest':>8s} {'p50 lat':>10s}"
    lines = [header, "-" * len(header)]
    best = max(m.tps for _r, m in results) or 1.0
    for row, m in results:
        lines.append(
            f"{row.name:32s} {m.tps:8.0f} {100 * m.tps / best:7.1f}% "
            f"{format_duration(m.p50_latency_ns):>10s}"
        )
    return "\n".join(lines)


def format_phase_breakdown(measurement: Measurement) -> str:
    """Where a request's latency goes, phase by phase (traced runs only)."""
    phases = measurement.phase_latency_ns
    if not phases:
        return f"{measurement.name}: no phase data (run with trace_path=...)"
    total = sum(phases.values()) or 1
    header = f"{'Phase':14s} {'mean':>10s} {'share':>7s}"
    lines = [f"{measurement.name}: per-phase latency", header, "-" * len(header)]
    for phase, mean_ns in phases.items():
        lines.append(
            f"{phase:14s} {format_duration(int(mean_ns)):>10s} "
            f"{100 * mean_ns / total:6.1f}%"
        )
    lines.append(
        f"{'total':14s} {format_duration(int(total)):>10s} {100.0:6.1f}%"
    )
    return "\n".join(lines)


def format_acid(acid: Measurement, noacid: Measurement) -> str:
    ratio = noacid.tps / acid.tps if acid.tps else float("inf")
    return "\n".join(
        [
            f"{'Mode':12s} {'TPS':>8s} {'Paper':>8s}",
            "-" * 32,
            f"{'ACID':12s} {acid.tps:8.0f} {PAPER_SQL_ACID_TPS:8d}",
            f"{'No-ACID':12s} {noacid.tps:8.0f} {PAPER_SQL_NOACID_TPS:8d}",
            f"speedup without ACID: {ratio:.2f}x (paper: "
            f"{PAPER_SQL_NOACID_TPS / PAPER_SQL_ACID_TPS:.2f}x)",
        ]
    )


def format_overload(sweep) -> str:
    """One row per offered-load multiplier of an overload sweep."""
    header = (
        f"{'Mult':>5s} {'Offered':>8s} {'Goodput':>8s} {'%ofPeak':>8s} "
        f"{'p50':>9s} {'p99':>9s} {'Shed':>6s} {'BUSY':>6s} {'SrcDrop':>8s} "
        f"{'Views':>5s}"
    )
    lines = [
        f"overload sweep: closed-loop capacity ~{sweep.capacity_tps:.0f} ops/s "
        f"(seed {sweep.seed}, {sweep.payload_size}B ops)",
        header,
        "-" * len(header),
    ]
    peak = max(p.goodput_tps for p in sweep.points) or 1.0
    for p in sweep.points:
        lines.append(
            f"{p.multiplier:5.1f} {p.offered_tps:8.0f} {p.goodput_tps:8.0f} "
            f"{100 * p.goodput_tps / peak:7.1f}% "
            f"{format_duration(p.p50_latency_ns):>9s} "
            f"{format_duration(p.p99_latency_ns):>9s} "
            f"{p.shed:6d} {p.busy_replies:6d} {p.source_drops:8d} "
            f"{p.view_changes:5d}"
        )
    return "\n".join(lines)


def format_aggregate_overload(sweep) -> str:
    """One row per multiplier of an aggregate (simulated-population) sweep."""
    header = (
        f"{'Mult':>5s} {'Offered':>8s} {'Arrived':>8s} {'Goodput':>8s} "
        f"{'p50':>9s} {'p99':>9s} {'Shed':>6s} {'BUSY':>6s} {'BusySkip':>8s} "
        f"{'SessDrop':>8s} {'HWM':>5s}"
    )
    lines = [
        f"aggregate overload sweep: {sweep.sim_clients:,} simulated clients "
        f"({sweep.scenario}) over {sweep.points[0].sessions if sweep.points else 0} "
        f"sessions; closed-loop capacity ~{sweep.capacity_tps:.0f} ops/s "
        f"(seed {sweep.seed}, {sweep.payload_size}B ops)",
        header,
        "-" * len(header),
    ]
    for p in sweep.points:
        lines.append(
            f"{p.multiplier:5.1f} {p.offered_tps:8.0f} {p.arrived_tps:8.0f} "
            f"{p.goodput_tps:8.0f} "
            f"{format_duration(p.p50_latency_ns):>9s} "
            f"{format_duration(p.p99_latency_ns):>9s} "
            f"{p.shed:6d} {p.busy_replies:6d} {p.busy_skips:8d} "
            f"{p.session_drops:8d} {p.inflight_hwm:5d}"
        )
    return "\n".join(lines)


def format_campaign(campaign) -> str:
    """One row per (schedule, seed) run of a fault campaign, worst first."""
    header = (
        f"{'Schedule':26s} {'Seed':>4s} {'Ops':>11s} {'Views':>5s} "
        f"{'SimTime':>9s} {'Verdict'}"
    )
    lines = [header, "-" * len(header)]
    for run in sorted(campaign.runs, key=lambda r: (r.ok, r.schedule, r.seed)):
        verdict = "ok" if run.ok else "; ".join(str(v) for v in run.violations)
        lines.append(
            f"{run.schedule:26s} {run.seed:4d} "
            f"{run.completed_ops}/{run.invoked_ops:<5d} {run.max_view:5d} "
            f"{format_duration(run.sim_time_ns):>9s} {verdict}"
        )
    failed = campaign.failed_runs
    lines.append(
        f"{len(campaign.runs) - len(failed)}/{len(campaign.runs)} runs passed "
        "all invariants"
        + ("" if not failed else f"; {len(failed)} FAILED")
    )
    return "\n".join(lines)
