"""Live-rebalancing benchmark: goodput before, during, and after a move.

One deployment, one continuous run: two PBFT groups, closed-loop routers
driving a skewed workload, and a
:class:`~repro.shard.rebalance.ShardRebalancer` moving the hottest
sub-range to shard 1 mid-run.  Routers play three roles — *movers* write
only keys inside the moving sub-range, *hot* routers write the rest of
the hot range, *cold* routers write the remaining hash space — so
shard 0 starts with ~70% of the load and ends near even.  Three goodput
windows are reported:

* **before** — steady state under the skewed placement;
* **during** — from the FREEZE to the directory publish.  Writes into
  the moving sub-range draw ``ST_FROZEN`` and park in backoff until the
  move lands (a closed-loop mover completes nothing meanwhile), so this
  window prices the protocol's availability cost: everything *outside*
  the moving range must keep flowing;
* **after** — steady state under the rebalanced placement, measured
  once the movers' backoff tail has drained.

A second, separate run measures the **evenly-placed baseline**: the same
workload against a directory where the move has already happened.  The
rebalanced deployment should land within a few percent of it — the move
buys the balanced placement without leaving residual overhead beyond the
source group's tombstone checks.

All ratios are simulated-time and deterministic: the CI gate compares
them, never wall-clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.apps.kvstore import encode_put
from repro.common.units import MILLISECOND, SECOND
from repro.pbft.config import PbftConfig
from repro.shard.directory import ShardDirectory, key_position
from repro.shard.topology import ShardedCluster, build_sharded_cluster

PAYLOAD = bytes(128)
_KEYS_PER_ROUTER = 16  # bounded per-router key set: the store never fills

# The moving sub-range is the lower half of the hot range; the hot range
# is the lower half of shard 0's default stripe.  Router roles repeat in
# blocks of four — mover, hot, cold, cold — so the moving range carries
# 25% of the offered load, the rest of the hot range another 25%, and
# the remaining space 50%: shard 0 starts near 70/30 and the move takes
# the split close to even.
HOT_LO, HOT_HI = 0, 1 << 30
MOVE_LO, MOVE_HI = 0, 1 << 29


def rebalance_bench_config() -> PbftConfig:
    """Per-group configuration (routers only, no direct clients)."""
    return PbftConfig().with_options(num_clients=0)


@dataclass
class RebalanceBenchResult:
    """Goodput around one live move, plus the evenly-placed control."""

    before_tps: float
    during_tps: float
    after_tps: float
    even_tps: float
    move_ms: float
    chunks: int
    frozen_refusals: int
    wrong_shard_redirects: int
    routers: int
    wall_s: float = 0.0

    @property
    def during_ratio(self) -> float:
        return self.during_tps / self.before_tps if self.before_tps else 0.0

    @property
    def after_ratio(self) -> float:
        return self.after_tps / self.before_tps if self.before_tps else 0.0

    @property
    def after_vs_even(self) -> float:
        return self.after_tps / self.even_tps if self.even_tps else 0.0


def _mine_key(tag: str, index: int, lo: int, hi: int) -> bytes:
    """The ``index``-th deterministic key whose position is in [lo, hi)."""
    found = 0
    for i in range(1_000_000):
        key = f"{tag}-{i}".encode()
        if lo <= key_position(key) < hi:
            if found == index:
                return key
            found += 1
    raise RuntimeError(f"could not mine key {index} for {tag!r}")


def _router_keys(router_id: int) -> list[bytes]:
    """A router's key cycle, by role (router_id % 4).

    Mined from raw hash positions (never from a directory), so the live
    run and the evenly-placed control run drive byte-identical key
    streams.
    """
    role = router_id % 4
    if role == 0:  # mover: inside the range being migrated
        lo, hi, tag = MOVE_LO, MOVE_HI, "mover"
    elif role == 1:  # hot: the hot range's half that stays behind
        lo, hi, tag = MOVE_HI, HOT_HI, "hot"
    else:  # cold: everything outside the hot range
        lo, hi, tag = HOT_HI, 1 << 32, "cold"
    return [
        _mine_key(f"r{router_id}-{tag}", i, lo, hi)
        for i in range(_KEYS_PER_ROUTER)
    ]


def _start_workload(cluster: ShardedCluster) -> None:
    def start(router) -> None:
        keys = _router_keys(router.router_id)
        state = {"n": 0}

        def submit() -> None:
            key = keys[state["n"] % len(keys)]
            state["n"] += 1
            router.invoke(encode_put(key, PAYLOAD), callback=lambda _r: submit())

        submit()

    for router in cluster.routers:
        start(router)


def _completed(cluster: ShardedCluster) -> int:
    return sum(r.completed_singles for r in cluster.routers)


def _measure(cluster: ShardedCluster, window_s: float) -> float:
    base, start_ns = _completed(cluster), cluster.sim.now
    cluster.run_for(int(window_s * SECOND))
    elapsed_s = (cluster.sim.now - start_ns) / SECOND
    return (_completed(cluster) - base) / elapsed_s


def run_rebalance_bench(
    smoke: bool = False,
    seed: int = 3,
    num_routers: int = 8,
    config: Optional[PbftConfig] = None,
) -> RebalanceBenchResult:
    """Measure one live move end to end, then the evenly-placed control."""
    config = config or rebalance_bench_config()
    warmup_s = 0.1 if smoke else 0.2
    window_s = 0.25 if smoke else 0.5
    start_wall = time.time()

    # -- the live run: skewed placement, mid-run move ------------------------
    cluster = build_sharded_cluster(
        2, config=config, seed=seed, real_crypto=False,
        num_routers=num_routers, router_hosts=num_routers,
    )
    _start_workload(cluster)
    cluster.run_for(int(warmup_s * SECOND))
    before_tps = _measure(cluster, window_s)

    rebalancer = cluster.make_rebalancer(chunk_budget=2048)
    moves: list = []
    move_start_ns = cluster.sim.now
    move_start_completed = _completed(cluster)
    rebalancer.move_range(MOVE_LO, MOVE_HI, 1, on_done=moves.append)
    move_cap = cluster.sim.now + 20 * SECOND
    while not moves and cluster.sim.now < move_cap:
        cluster.run_for(10 * MILLISECOND)
    if not moves or moves[0].state != "done":
        reason = moves[0].reason if moves else "timed out"
        raise RuntimeError(f"the live move did not complete: {reason}")
    record = moves[0]
    move_s = (cluster.sim.now - move_start_ns) / SECOND
    during_tps = (_completed(cluster) - move_start_completed) / move_s

    # Settle: the movers' frozen-backoff tail (up to ~200ms between
    # retries) drains and redirect healing finishes before measuring.
    cluster.run_for(600 * MILLISECOND)
    after_tps = _measure(cluster, window_s)
    frozen = sum(int(r.stats["frozen_refusals"]) for r in cluster.routers)
    redirects = sum(
        int(r.stats["wrong_shard_redirects"]) for r in cluster.routers
    )
    cluster.stop()

    # -- the control run: the same workload, already-even placement ----------
    even_directory = ShardDirectory(2)
    even_directory.move_range(MOVE_LO, MOVE_HI, 1)
    control = build_sharded_cluster(
        2, config=config, seed=seed, real_crypto=False,
        num_routers=num_routers, router_hosts=num_routers,
        directory=even_directory,
    )
    _start_workload(control)
    control.run_for(int(warmup_s * SECOND))
    even_tps = _measure(control, window_s)
    control.stop()

    return RebalanceBenchResult(
        before_tps=before_tps,
        during_tps=during_tps,
        after_tps=after_tps,
        even_tps=even_tps,
        move_ms=(record.finished_at - record.started_at) / MILLISECOND,
        chunks=record.chunks,
        frozen_refusals=frozen,
        wrong_shard_redirects=redirects,
        routers=num_routers,
        wall_s=time.time() - start_wall,
    )


def format_rebalance_bench(result: RebalanceBenchResult) -> str:
    lines = [
        "live rebalance: goodput around a hot-range move (2 shards)",
        f"  before (skewed ~70/30): {result.before_tps:7.0f} op/s",
        f"  during the move:       {result.during_tps:8.0f} op/s "
        f"({result.during_ratio:.0%} of steady state)",
        f"  after  (balanced):     {result.after_tps:8.0f} op/s "
        f"({result.after_ratio:.0%} of steady state)",
        f"  evenly-placed control: {result.even_tps:8.0f} op/s "
        f"(post-move = {result.after_vs_even:.0%} of control)",
        f"  move: {result.move_ms:.1f}ms, {result.chunks} chunk(s), "
        f"{result.frozen_refusals} frozen refusals, "
        f"{result.wrong_shard_redirects} redirects",
    ]
    return "\n".join(lines)
