"""Experiment drivers — one per paper artifact (see DESIGN.md section 3)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.units import MILLISECOND, SECOND
from repro.harness.configs import (
    FIG5_CONFIGS,
    TABLE1_CONFIGS,
    ConfigRow,
    build_config,
)
from repro.harness.measure import Measurement, run_null_workload, run_sql_workload
from repro.net.fabric import DropRule
from repro.pbft.cluster import build_cluster
from repro.pbft.config import PbftConfig


# ==== E1: Table 1 =====================================================================


def run_table1(
    payload_size: int = 1024,
    warmup_s: float = 0.2,
    measure_s: float = 0.5,
    seed: int = 3,
    rows: tuple[ConfigRow, ...] = TABLE1_CONFIGS,
) -> list[tuple[ConfigRow, Measurement]]:
    """Null-op TPS for every library configuration of the paper's Table 1."""
    results = []
    for row in rows:
        config = build_config(row)
        measurement = run_null_workload(
            config,
            name=row.name,
            payload_size=payload_size,
            warmup_s=warmup_s,
            measure_s=measure_s,
            seed=seed,
        )
        results.append((row, measurement))
    return results


# ==== E2: Figure 4 ====================================================================


def run_fig4_size_sweep(
    sizes: tuple[int, ...] = (256, 1024, 2048, 4096),
    rows: tuple[ConfigRow, ...] = TABLE1_CONFIGS,
    warmup_s: float = 0.2,
    measure_s: float = 0.4,
    seed: int = 3,
) -> dict[int, list[tuple[ConfigRow, Measurement]]]:
    """Figure 4: the configuration matrix swept over payload sizes.

    "The results for varying request and response sizes are similar" —
    the assertion the benchmark checks is exactly that similarity of
    *shape* across sizes.
    """
    return {
        size: run_table1(
            payload_size=size, warmup_s=warmup_s, measure_s=measure_s,
            seed=seed, rows=rows,
        )
        for size in sizes
    }


# ==== E3: Figure 5 ====================================================================


def run_fig5_sql(
    warmup_s: float = 0.3,
    measure_s: float = 1.0,
    seed: int = 3,
    rows: tuple[ConfigRow, ...] = FIG5_CONFIGS,
) -> list[tuple[ConfigRow, Measurement]]:
    """SQL insert TPS across configurations (batching on, ACID on)."""
    results = []
    for row in rows:
        config = build_config(row)
        measurement = run_sql_workload(
            config, name=row.name, acid=True,
            warmup_s=warmup_s, measure_s=measure_s, seed=seed,
        )
        results.append((row, measurement))
    return results


# ==== E4: ACID vs No-ACID ==============================================================


def run_acid_comparison(
    warmup_s: float = 0.3,
    measure_s: float = 1.0,
    seed: int = 3,
) -> tuple[Measurement, Measurement]:
    """Section 4.2's isolation of disk cost: the most robust configuration
    with dynamic clients, with and without ACID (534 vs 1155 TPS)."""
    row = ConfigRow("sql_acid_vs_noacid", False, False, False, True)
    config = build_config(row)
    acid = run_sql_workload(
        config, name="acid", acid=True, warmup_s=warmup_s, measure_s=measure_s, seed=seed
    )
    noacid = run_sql_workload(
        config, name="noacid", acid=False, warmup_s=warmup_s, measure_s=measure_s, seed=seed
    )
    return acid, noacid


# ==== E6: section 2.3 — authenticator staleness at recovery ============================


@dataclass
class RecoveryResult:
    """Outcome of one crash/restart run."""

    use_macs: bool
    rebroadcast_interval_ns: int
    recovery_time_ns: Optional[int]
    replay_auth_failures: int
    caught_up: bool
    final_lag: int


def run_recovery_experiment(
    use_macs: bool = True,
    rebroadcast_interval_ns: int = 1 * SECOND,
    crash_at_s: float = 0.2,
    down_for_s: float = 0.05,
    observe_for_s: float = 4.0,
    seed: int = 5,
) -> RecoveryResult:
    """Crash and restart one backup replica under load (paper section 2.3).

    With MACs, the restarted replica replays the log but every request
    fails authentication until the clients' periodic blind rebroadcast
    re-delivers the session keys — so recovery time tracks the rebroadcast
    interval.  With signatures, replay validates immediately.
    """
    config = PbftConfig(
        use_macs=use_macs,
        authenticator_rebroadcast_ns=rebroadcast_interval_ns,
        checkpoint_interval=64,
        log_window=128,
    )
    cluster = build_cluster(config, seed=seed, real_crypto=False)
    payload = bytes(256)

    def loop(client):
        def done(_res, _lat):
            client.invoke(payload, callback=done)
        client.invoke(payload, callback=done)

    for client in cluster.clients:
        loop(client)

    victim = cluster.replicas[3]  # a backup (primary is replica 0 in view 0)
    cluster.run_for(int(crash_at_s * SECOND))
    victim.crash()
    cluster.run_for(int(down_for_s * SECOND))
    victim.restart()
    deadline = cluster.sim.now + int(observe_for_s * SECOND)
    while victim.recovering and cluster.sim.now < deadline:
        cluster.run_for(10 * MILLISECOND)
    recovery_time = None
    if victim.recovery_completed_at is not None:
        recovery_time = victim.recovery_completed_at - victim.recovery_started_at
    max_exec = max(r.last_exec for r in cluster.replicas if not r.crashed)
    result = RecoveryResult(
        use_macs=use_macs,
        rebroadcast_interval_ns=rebroadcast_interval_ns,
        recovery_time_ns=recovery_time,
        replay_auth_failures=victim.stats["replay_auth_failures"],
        caught_up=not victim.recovering,
        final_lag=max_exec - victim.last_exec,
    )
    cluster.stop_clients()
    return result


# ==== E7: section 2.4 — UDP packet loss vs the big-request optimization ================


@dataclass
class PacketLossResult:
    """Outcome of dropping exactly one datagram."""

    all_big: bool
    dropped_kind: str
    wedged_replicas: list[int]
    wedge_duration_ns: Optional[int]
    state_transfers: int
    client_retransmissions: int
    all_caught_up: bool
    completed_ops: int


def run_packet_loss_experiment(
    all_big: bool = True,
    run_for_s: float = 3.0,
    seed: int = 7,
) -> PacketLossResult:
    """Drop one client→replica datagram and watch what the middleware does.

    With the all-big optimization (paper section 2.4): the victim replica
    agrees on the digest but cannot execute — it is "stuck at this point
    until the next checkpoint arrives and the recovery process kicks in".
    Without it: the client's retransmission heals the loss and no replica
    wedges.
    """
    config = PbftConfig(
        big_request_threshold=0 if all_big else None,
        checkpoint_interval=32,
        log_window=64,
        num_clients=4,
    )
    cluster = build_cluster(config, seed=seed, real_crypto=False)
    victim_host = "replica3"
    if all_big:
        # Lose one request body on its way from a client to one replica.
        rule = DropRule(
            lambda p: p.kind == "Request" and p.dst[0] == victim_host
            and p.src[0].startswith("clienthost"),
            count=1,
            name="drop-big-request-body",
        )
        dropped_kind = "client→replica request body"
    else:
        # Lose one request on its way to the primary.
        rule = DropRule(
            lambda p: p.kind == "Request" and p.dst[0] == "replica0"
            and p.src[0].startswith("clienthost"),
            count=1,
            name="drop-request-to-primary",
        )
        dropped_kind = "client→primary request"
    cluster.fabric.add_drop_rule(rule)
    payload = bytes(512)

    def loop(client):
        def done(_res, _lat):
            client.invoke(payload, callback=done)
        client.invoke(payload, callback=done)

    for client in cluster.clients:
        loop(client)
    cluster.run_for(int(run_for_s * SECOND))

    victim = cluster.replicas[3]
    wedged = [r.node_id for r in cluster.replicas if r.stats["wedged_events"] > 0]
    wedge_duration = victim.stats.get("wedge_duration_ns")
    transfers = sum(r.stats["state_transfers_completed"] for r in cluster.replicas)
    max_exec = max(r.last_exec for r in cluster.replicas)
    caught_up = all(
        max_exec - r.last_exec <= config.checkpoint_interval for r in cluster.replicas
    )
    result = PacketLossResult(
        all_big=all_big,
        dropped_kind=dropped_kind,
        wedged_replicas=wedged,
        wedge_duration_ns=wedge_duration,
        state_transfers=transfers,
        client_retransmissions=sum(c.retransmissions for c in cluster.clients),
        all_caught_up=caught_up,
        completed_ops=cluster.total_completed(),
    )
    cluster.stop_clients()
    return result


def run_fault_campaign(
    schedules=None,
    seeds=(1, 2, 3, 4, 5),
    config: Optional[PbftConfig] = None,
    artifact_dir: Optional[str] = None,
    **run_kwargs,
):
    """Sweep the fault-injection campaign: schedules × seeds.

    Runs every :class:`repro.faults.FaultSchedule` (the built-in library
    by default) at every seed and checks the four protocol invariants —
    agreement, no committed-op loss, monotone checkpoint stability, and
    client liveness — after each run.  With ``artifact_dir`` set, failing
    runs are deterministically re-executed with tracing enabled and dump
    a Chrome trace plus a minimized event log for forensics.  Extra
    keyword arguments (``run_ns``, ``drain_ns``, ``settle_ns``) pass
    through to :func:`repro.faults.run_campaign` to resize the phases.
    """
    from repro.faults import builtin_schedules, run_campaign

    if schedules is None:
        schedules = builtin_schedules()
    return run_campaign(
        schedules, list(seeds), config=config, artifact_dir=artifact_dir,
        **run_kwargs,
    )
