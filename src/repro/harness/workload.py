"""Aggregate open-loop workload engine: millions of simulated clients.

The paper's evaluation (section 4) is closed-loop with tens of clients,
and until this module "millions of users" meant instantiating millions of
Python client objects — the wall was the harness, not the protocol.  Here
one *generator* simulates the arrival process of N clients in aggregate:

* **timing** — when the next operation arrives anywhere in the population
  (Poisson at a fixed rate, or a non-homogeneous diurnal curve thinned
  against its peak);
* **picker** — which simulated client it belongs to (uniform, or
  Zipfian-skewed via Gray's O(1) approximate sampler, the YCSB
  generator);
* **sessions** — a bounded pool of real :class:`~repro.pbft.client.
  PbftClient` endpoints the simulated population multiplexes through.
  Each arrival borrows a free session, travels the PR-4 admission path
  (in-flight caps, deterministic shedding, BUSY backpressure) like any
  other request, and returns the session on completion or failure.

Per-simulated-client state exists *only while an operation is in
flight*, so the in-flight table is bounded by the session pool — its
high-water mark is published as the ``workload.inflight_hwm`` gauge and
asserted « N by the tests — and a 1,000,000-client scenario runs in the
same memory as a 24-client one.

Accounting is conserved per window:
``ticks == completed + (outstanding_end - outstanding_start) +
busy_skips + session_drops`` — a tick suppressed because its simulated
client still has an operation outstanding (``busy_skips``) or because no
transport session was free (``session_drops``) never counts toward
``arrived_tps``.

Everything is deterministic in (scenario, seed): the generator draws
timing and picker variates from one named RNG stream in a fixed order,
so identical runs produce identical tick streams, shed sets, and
percentiles.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field

from repro.common.errors import ConfigError
from repro.common.units import MILLISECOND, SECOND
from repro.obs import nearest_rank_percentile
from repro.pbft.cluster import Cluster, build_cluster
from repro.pbft.config import PbftConfig
from repro.harness.overload import (
    _CLIENT_STATS,
    _REPLICA_STATS,
    _snapshot,
    estimate_capacity,
    overload_config,
)

# The library scenarios.  Each names a (timing, picker) pair built by
# :func:`make_workload`; the sweep runner derives per-cell seeds from the
# scenario name, so the names are part of the deterministic contract.
SCENARIOS = ("uniform", "zipfian", "diurnal")

DEFAULT_SIM_CLIENTS = 1_000_000


# -- arrival timing -----------------------------------------------------------------


class PoissonTiming:
    """Homogeneous Poisson arrivals: exponential inter-arrival times whose
    mean is the aggregate population rate — one draw per arrival no matter
    how many clients the population simulates."""

    def __init__(self, rate_tps: float) -> None:
        if rate_tps <= 0:
            raise ConfigError(f"arrival rate must be positive, got {rate_tps}")
        self.rate_per_ns = rate_tps / SECOND

    def delay(self, rng, now_ns: int) -> int:
        return max(1, int(rng.expovariate(self.rate_per_ns)))


class DiurnalTiming:
    """Non-homogeneous Poisson arrivals on a compressed diurnal curve.

    The intensity follows a raised cosine between ``floor`` (night) and
    1.0 (peak) over one simulated ``day_ns``, scaled so the *mean* rate
    equals ``rate_tps`` — multipliers of estimated capacity keep their
    meaning.  Arrivals are drawn by thinning against the peak rate:
    candidate arrivals at the peak rate are accepted with probability
    ``intensity(t)``, the textbook method for inhomogeneous processes,
    and both draws come from the same stream so the tick sequence is a
    pure function of the seed.
    """

    def __init__(
        self, rate_tps: float, day_ns: int = 200 * MILLISECOND, floor: float = 0.2
    ) -> None:
        if rate_tps <= 0:
            raise ConfigError(f"arrival rate must be positive, got {rate_tps}")
        if day_ns <= 0:
            raise ConfigError(f"day length must be positive, got {day_ns}")
        if not 0.0 < floor <= 1.0:
            raise ConfigError(f"diurnal floor {floor} outside (0, 1]")
        self.day_ns = day_ns
        self.floor = floor
        mean_intensity = (1.0 + floor) / 2.0
        self.peak_per_ns = rate_tps / mean_intensity / SECOND

    def intensity(self, now_ns: int) -> float:
        """Relative load in [floor, 1]: trough at phase 0, peak mid-day."""
        phase = (now_ns % self.day_ns) / self.day_ns
        return self.floor + (1.0 - self.floor) * 0.5 * (
            1.0 - math.cos(2.0 * math.pi * phase)
        )

    def delay(self, rng, now_ns: int) -> int:
        t = now_ns
        while True:
            t += max(1, int(rng.expovariate(self.peak_per_ns)))
            if rng.random() <= self.intensity(t):
                return t - now_ns


# -- client pickers -----------------------------------------------------------------


class UniformPicker:
    """Every simulated client equally likely."""

    def __init__(self, num_clients: int) -> None:
        if num_clients <= 0:
            raise ConfigError(f"population must be positive, got {num_clients}")
        self.num_clients = num_clients

    def pick(self, rng) -> int:
        return rng.randrange(self.num_clients)


_ZETA_CACHE: dict[tuple[int, float], float] = {}


def _zeta(n: int, theta: float) -> float:
    """Generalized harmonic number sum(1/i^theta, i=1..n), memoized — the
    only O(n) cost of the Zipfian sampler, paid once per (n, theta)."""
    key = (n, theta)
    cached = _ZETA_CACHE.get(key)
    if cached is None:
        cached = _ZETA_CACHE[key] = float(
            sum(1.0 / i**theta for i in range(1, n + 1))
        )
    return cached


def _fnv1a_64(value: int) -> int:
    """FNV-1a over the value's 8 little-endian bytes."""
    h = 0xCBF29CE484222325
    for _ in range(8):
        h = ((h ^ (value & 0xFF)) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return h


class ZipfianPicker:
    """Zipfian-skewed client choice: Gray et al.'s approximate sampler
    (the YCSB generator) — O(1) per draw, O(1) memory, no per-client
    weight table.  Ranks are scattered across the id space with an FNV
    hash so the popular clients are not the adjacent low ids."""

    def __init__(
        self, num_clients: int, theta: float = 0.99, scramble: bool = True
    ) -> None:
        if num_clients < 2:
            raise ConfigError(f"zipfian needs at least 2 clients, got {num_clients}")
        if not 0.0 < theta < 1.0:
            raise ConfigError(f"zipfian theta {theta} outside (0, 1)")
        self.num_clients = num_clients
        self.theta = theta
        self.scramble = scramble
        self.zetan = _zeta(num_clients, theta)
        self.alpha = 1.0 / (1.0 - theta)
        zeta2 = 1.0 + 0.5**theta
        self.eta = (1.0 - (2.0 / num_clients) ** (1.0 - theta)) / (
            1.0 - zeta2 / self.zetan
        )
        self.second_threshold = 1.0 + 0.5**theta

    def rank(self, rng) -> int:
        """Popularity rank: 0 is the hottest simulated client."""
        u = rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < self.second_threshold:
            return 1
        r = int(self.num_clients * (self.eta * u - self.eta + 1.0) ** self.alpha)
        return min(r, self.num_clients - 1)

    def pick(self, rng) -> int:
        r = self.rank(rng)
        if not self.scramble:
            return r
        return _fnv1a_64(r) % self.num_clients


def arrival_stream(timing, picker, rng, count: int, start_ns: int = 0) -> list:
    """The first ``count`` ticks as (arrival time, simulated client) pairs.

    Exactly the draw order :class:`AggregateWorkload` uses — one timing
    delay, then one picker draw per tick — so the engine's tick stream
    for a seed equals this function's output for the same-seeded stream.
    """
    out = []
    now = start_ns
    for _ in range(count):
        now += timing.delay(rng, now)
        out.append((now, picker.pick(rng)))
    return out


# -- the engine ---------------------------------------------------------------------


class AggregateWorkload:
    """One generator driving N simulated clients through a session pool.

    State per simulated client exists only in ``inflight`` (client id →
    borrowed session index) while its operation is outstanding, so memory
    is bounded by the session pool regardless of the population size.
    """

    def __init__(
        self,
        cluster: Cluster,
        timing,
        picker,
        payload: bytes = bytes(256),
        rng_name: str = "workload-arrivals",
    ) -> None:
        if not cluster.clients:
            raise ConfigError("aggregate workload needs at least one session client")
        self.cluster = cluster
        self.timing = timing
        self.picker = picker
        self.payload = payload
        self.rng = cluster.rng.stream(rng_name)
        self.sessions = list(cluster.clients)
        # LIFO free list: index order is deterministic and reuse favors
        # warm sessions.
        self.free = list(range(len(self.sessions) - 1, -1, -1))
        self.inflight: dict[int, int] = {}
        self.inflight_hwm = 0
        self.ticks = 0
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.busy_skips = 0
        self.session_drops = 0
        self.completions: list[tuple[int, int]] = []  # (finish time, latency)
        self._timer = None
        self._stopped = False
        registry = cluster.obs.registry
        self._inflight_gauge = registry.gauge("workload.inflight")
        self._hwm_gauge = registry.gauge("workload.inflight_hwm")
        self.stats = registry.view("workload.")

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        self._schedule_next()

    def stop(self) -> None:
        """Quiesce the generator; outstanding sessions are reclaimed via
        their fail callbacks when the cluster cancels them."""
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- the arrival loop -----------------------------------------------------------

    def _schedule_next(self) -> None:
        delay = self.timing.delay(self.rng, self.cluster.sim.now)
        self._timer = self.cluster.sim.schedule(delay, self._arrival)

    def _arrival(self) -> None:
        self._timer = None
        self.ticks += 1
        sim_client = self.picker.pick(self.rng)
        if sim_client in self.inflight:
            # The simulated client still has its one allowed operation
            # outstanding: the tick is suppressed at the source, exactly
            # like the per-client-object open loop's full outbox.
            self.busy_skips += 1
        elif not self.free:
            # Offered load beyond the transport's concurrency: every
            # session is occupied, so this arrival is shed before the
            # cluster ever sees it.
            self.session_drops += 1
        else:
            index = self.free.pop()
            self.inflight[sim_client] = index
            if len(self.inflight) > self.inflight_hwm:
                self.inflight_hwm = len(self.inflight)
            self.submitted += 1
            self.sessions[index].invoke(
                self.payload,
                callback=lambda _res, lat, c=sim_client, i=index: self._complete(
                    c, i, lat
                ),
                on_fail=lambda _reason, c=sim_client, i=index: self._failed(c, i),
            )
        self._schedule_next()

    def _complete(self, sim_client: int, index: int, latency: int) -> None:
        self.completed += 1
        self.completions.append((self.cluster.sim.now, latency))
        self._release(sim_client, index)

    def _failed(self, sim_client: int, index: int) -> None:
        if self._stopped:
            return
        self.failed += 1
        self._release(sim_client, index)

    def _release(self, sim_client: int, index: int) -> None:
        del self.inflight[sim_client]
        self.free.append(index)

    # -- accounting -----------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return len(self.inflight)

    def snapshot(self) -> dict:
        """Current counters (cumulative); also publishes the obs metrics."""
        self._inflight_gauge.set(len(self.inflight))
        self._hwm_gauge.update_max(self.inflight_hwm)
        for key in (
            "ticks", "submitted", "completed", "failed",
            "busy_skips", "session_drops",
        ):
            self.stats[key] = getattr(self, key)
        return {
            "ticks": self.ticks,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "busy_skips": self.busy_skips,
            "session_drops": self.session_drops,
            "outstanding": len(self.inflight),
            "completions": len(self.completions),
        }


def make_workload(
    cluster: Cluster,
    scenario: str,
    sim_clients: int,
    rate_tps: float,
    payload_size: int = 256,
    zipf_theta: float = 0.99,
    day_ns: int = 200 * MILLISECOND,
) -> AggregateWorkload:
    """Build a library scenario against an existing cluster."""
    if scenario == "uniform":
        timing, picker = PoissonTiming(rate_tps), UniformPicker(sim_clients)
    elif scenario == "zipfian":
        timing = PoissonTiming(rate_tps)
        picker = ZipfianPicker(sim_clients, theta=zipf_theta)
    elif scenario == "diurnal":
        timing = DiurnalTiming(rate_tps, day_ns=day_ns)
        picker = UniformPicker(sim_clients)
    else:
        raise ConfigError(
            f"unknown workload scenario {scenario!r}; have {', '.join(SCENARIOS)}"
        )
    return AggregateWorkload(
        cluster, timing, picker, payload=bytes(payload_size)
    )


# -- measured points and sweeps -----------------------------------------------------


@dataclass
class AggregatePoint:
    """One (scenario, multiplier) measured window of an aggregate sweep."""

    scenario: str
    sim_clients: int
    sessions: int
    multiplier: float
    offered_tps: float      # target aggregate arrival rate
    arrived_tps: float      # ticks that actually submitted an operation
    goodput_tps: float
    ticks: int
    submitted: int
    completed: int
    busy_skips: int         # simulated client's own op still outstanding
    session_drops: int      # no free transport session: shed at the source
    outstanding_start: int
    outstanding_end: int
    inflight_hwm: int       # peak materialized per-client state, run-wide
    mean_latency_ns: float
    p50_latency_ns: int
    p99_latency_ns: int
    replica_stats: dict = field(default_factory=dict)
    client_stats: dict = field(default_factory=dict)
    view_changes: int = 0

    @property
    def shed(self) -> int:
        return self.replica_stats.get("requests_shed", 0)

    @property
    def busy_replies(self) -> int:
        return self.replica_stats.get("busy_sent", 0)

    @property
    def dropped_arrivals(self) -> int:
        return self.busy_skips + self.session_drops

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class AggregateSweep:
    """All points of one aggregate overload sweep, lowest multiplier first."""

    scenario: str
    sim_clients: int
    capacity_tps: float
    seed: int
    payload_size: int
    points: list[AggregatePoint]

    def point_at(self, multiplier: float) -> AggregatePoint:
        for point in self.points:
            if abs(point.multiplier - multiplier) < 1e-9:
                return point
        raise KeyError(f"no sweep point at multiplier {multiplier}")

    def graceful(
        self, at: float = 2.0, reference: float = 1.0, threshold: float = 0.8
    ) -> bool:
        ref = self.point_at(reference).goodput_tps
        return self.point_at(at).goodput_tps >= threshold * ref

    def to_dict(self) -> dict:
        return asdict(self)


def run_aggregate_point(
    scenario: str = "uniform",
    sim_clients: int = DEFAULT_SIM_CLIENTS,
    multiplier: float = 1.0,
    capacity_tps: float = 0.0,
    payload_size: int = 256,
    warmup_s: float = 0.3,
    measure_s: float = 0.5,
    seed: int = 3,
    sessions: int | None = None,
    zipf_theta: float = 0.99,
    day_ns: int = 200 * MILLISECOND,
    config: PbftConfig | None = None,
) -> AggregatePoint:
    """Measure one aggregate open-loop point on a fresh deterministic cluster.

    ``capacity_tps`` anchors the offered rate (``multiplier`` times it)
    and must be supplied — sweep drivers estimate it once, closed loop,
    so every cell of a sweep shares the same anchor.
    """
    if capacity_tps <= 0:
        raise ConfigError("run_aggregate_point needs a positive capacity_tps anchor")
    config = config or overload_config()
    if sessions is not None:
        config = config.with_options(num_clients=sessions)
    cluster = build_cluster(config, seed=seed, real_crypto=False)
    offered_tps = capacity_tps * multiplier
    workload = make_workload(
        cluster, scenario, sim_clients, offered_tps,
        payload_size=payload_size, zipf_theta=zipf_theta, day_ns=day_ns,
    )
    workload.start()

    cluster.run_for(int(warmup_s * SECOND))
    before = workload.snapshot()
    replica_before, client_before, views_before = _snapshot(cluster)

    cluster.run_for(int(measure_s * SECOND))
    after = workload.snapshot()
    replica_after, client_after, views_after = _snapshot(cluster)

    window = workload.completions[before["completions"]:]
    latencies = sorted(lat for _t, lat in window)

    workload.stop()
    cluster.stop_clients()

    delta = {key: after[key] - before[key] for key in
             ("ticks", "submitted", "completed", "busy_skips", "session_drops")}
    return AggregatePoint(
        scenario=scenario,
        sim_clients=sim_clients,
        sessions=len(workload.sessions),
        multiplier=multiplier,
        offered_tps=offered_tps,
        arrived_tps=delta["submitted"] / measure_s,
        goodput_tps=len(window) / measure_s,
        ticks=delta["ticks"],
        submitted=delta["submitted"],
        completed=len(window),
        busy_skips=delta["busy_skips"],
        session_drops=delta["session_drops"],
        outstanding_start=before["outstanding"],
        outstanding_end=after["outstanding"],
        inflight_hwm=workload.inflight_hwm,
        mean_latency_ns=(sum(latencies) / len(latencies)) if latencies else 0.0,
        p50_latency_ns=nearest_rank_percentile(latencies, 0.50),
        p99_latency_ns=nearest_rank_percentile(latencies, 0.99),
        replica_stats={
            key: replica_after[key] - replica_before[key] for key in _REPLICA_STATS
        },
        client_stats={
            key: client_after[key] - client_before[key] for key in _CLIENT_STATS
        },
        view_changes=views_after - views_before,
    )


def run_aggregate_overload_sweep(
    scenario: str = "uniform",
    sim_clients: int = DEFAULT_SIM_CLIENTS,
    multipliers: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0),
    payload_size: int = 256,
    warmup_s: float = 0.3,
    measure_s: float = 0.5,
    seed: int = 3,
    capacity_tps: float | None = None,
    workers: int = 1,
    sessions: int | None = None,
) -> AggregateSweep:
    """Sweep offered load across multipliers of estimated capacity, one
    fresh cluster per point, farming the points across ``workers``
    processes through :mod:`repro.harness.sweeprunner` (cells are
    independent; per-cell seeds are hash-derived and collision-free, and
    serial and parallel runs produce identical results)."""
    from repro.harness.sweeprunner import SweepCell, run_cells

    if capacity_tps is None:
        capacity_tps = estimate_capacity(
            overload_config(), payload_size=payload_size, seed=seed
        )
    cells = [
        SweepCell(
            kind="aggregate-overload",
            scenario=scenario,
            params=dict(
                scenario=scenario,
                sim_clients=sim_clients,
                multiplier=multiplier,
                capacity_tps=capacity_tps,
                payload_size=payload_size,
                warmup_s=warmup_s,
                measure_s=measure_s,
                sessions=sessions,
            ),
        )
        for multiplier in sorted(multipliers)
    ]
    results = run_cells(cells, base_seed=seed, workers=workers)
    points = [AggregatePoint(**result) for result in results]
    return AggregateSweep(
        scenario=scenario,
        sim_clients=sim_clients,
        capacity_tps=capacity_tps,
        seed=seed,
        payload_size=payload_size,
        points=points,
    )
