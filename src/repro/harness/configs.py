"""The library configuration matrix of the paper's Table 1 and Figure 5.

Naming follows the paper: ``sta``/``nosta`` = static vs dynamic client
management, ``mac``/``nomac`` = authenticators vs signatures,
``allbig``/``noallbig`` = all requests treated as big vs none,
``batch``/``nobatch`` = request batching on/off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.pbft.config import PbftConfig


@dataclass(frozen=True)
class ConfigRow:
    """One row of the configuration matrix plus the paper's measurement."""

    name: str
    static_clients: bool
    use_macs: bool
    all_big: bool
    batching: bool
    paper_tps: Optional[float] = None
    paper_stdev: Optional[float] = None


# Table 1, verbatim from the paper (TPS for 1024-byte null requests).
TABLE1_CONFIGS: tuple[ConfigRow, ...] = (
    ConfigRow("sta_mac_allbig_batch", True, True, True, True, 17014, 66),
    ConfigRow("sta_mac_allbig_nobatch", True, True, True, False, 1051, 56),
    ConfigRow("sta_mac_noallbig_batch", True, True, False, True, 3030, 57),
    ConfigRow("sta_mac_noallbig_nobatch", True, True, False, False, 1109, 103),
    ConfigRow("sta_nomac_allbig_batch", True, False, True, True, 1291, 4),
    ConfigRow("sta_nomac_allbig_nobatch", True, False, True, False, 1199, 12),
    ConfigRow("sta_nomac_noallbig_batch", True, False, False, True, 992, 2),
    ConfigRow("sta_nomac_noallbig_nobatch", True, False, False, False, 1186, 7),
    ConfigRow("nosta_nomac_noallbig_batch", False, False, False, True, 988, 1),
    ConfigRow("nosta_nomac_noallbig_nobatch", False, False, False, False, 1205, 1),
)

# Figure 5: SQL-insert throughput; batching always on, the remaining
# toggles swept (paper section 4.2).  The paper reports the most robust
# dynamic configuration at 43% of the best (sta_mac_noallbig) and the
# ACID/No-ACID pair at 534 vs 1155 TPS.
FIG5_CONFIGS: tuple[ConfigRow, ...] = (
    ConfigRow("sql_sta_mac_allbig", True, True, True, True),
    ConfigRow("sql_sta_mac_noallbig", True, True, False, True),
    ConfigRow("sql_sta_nomac_allbig", True, False, True, True),
    ConfigRow("sql_sta_nomac_noallbig", True, False, False, True),
    ConfigRow("sql_nosta_nomac_noallbig", False, False, False, True),
)

PAPER_SQL_ACID_TPS = 534
PAPER_SQL_NOACID_TPS = 1155
PAPER_DYNAMIC_TPS = 988
PAPER_STATIC_TPS = 992


def build_config(row: ConfigRow, **overrides) -> PbftConfig:
    """Materialize a :class:`PbftConfig` from a matrix row."""
    base = dict(
        dynamic_clients=not row.static_clients,
        use_macs=row.use_macs,
        big_request_threshold=0 if row.all_big else None,
        batching=row.batching,
    )
    base.update(overrides)
    return PbftConfig(**base)


def row_by_name(name: str) -> ConfigRow:
    for row in TABLE1_CONFIGS + FIG5_CONFIGS:
        if row.name == name:
            return row
    raise KeyError(name)
