"""Sharded-deployment benchmarks: goodput scaling and mixed SQL traffic.

Two workloads:

* **kv scaling** — S independent PBFT groups, S x ``routers_per_shard``
  closed-loop routers, every router writing keys that live on its home
  shard.  The workload is perfectly partitionable, so goodput should
  scale close to linearly in S; the committed gate is 4-shard goodput
  >= 2.5x 1-shard (coordination overheads, shared-fabric scheduling, and
  per-group batching keep it below 4.0).
* **mixed SQL** — two shards each owning one table, routers interleaving
  single-shard INSERTs with cross-shard transfer transactions driven
  through the deterministic 2PC of :mod:`repro.shard`.  Reported numbers
  separate single-op goodput from transaction commit/abort rates, and
  lock conflicts between the direct path and the 2PC path show up as
  retried or failed singles rather than wrong answers.

Simulated time only — wall-clock is reported for orientation but the
assertions are about simulated goodput ratios, which are deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.apps.kvstore import encode_put
from repro.apps.sqlapp import (
    SqlApplication,
    decode_sql_op,
    encode_sql_op,
    tables_of_sql,
)
from repro.common.units import SECOND
from repro.obs import nearest_rank_percentile
from repro.pbft.config import PbftConfig
from repro.shard.campaign import key_for_shard
from repro.shard.directory import ShardDirectory
from repro.shard.router import SqlShardCodec
from repro.shard.topology import ShardedCluster, build_sharded_cluster

PAYLOAD = bytes(128)
_KEYS_PER_ROUTER = 32  # bounded key space so the kv store never fills


def shard_bench_config() -> PbftConfig:
    """Per-group configuration for the sharding benchmarks."""
    return PbftConfig().with_options(num_clients=0)


@dataclass
class ShardPoint:
    """One shard-count measurement of the kv scaling sweep."""

    shards: int
    routers: int
    tps: float
    p50_latency_ns: int
    p99_latency_ns: int
    completed: int

    def as_json(self) -> dict:
        return {
            "shards": self.shards,
            "routers": self.routers,
            "sim_tps": round(self.tps, 1),
            "sim_p50_latency_us": round(self.p50_latency_ns / 1000, 1),
            "sim_p99_latency_us": round(self.p99_latency_ns / 1000, 1),
            "completed": self.completed,
        }


@dataclass
class ShardBenchResult:
    """The full sharding benchmark: scaling points plus the SQL mix."""

    points: list[ShardPoint]
    sql: dict
    wall_s: float = 0.0

    def speedup(self, shards: int) -> float:
        base = next(p.tps for p in self.points if p.shards == 1)
        point = next(p.tps for p in self.points if p.shards == shards)
        return point / base if base else 0.0


def _percentiles(latencies: list[int]) -> tuple[int, int]:
    latencies = sorted(latencies)
    return (
        nearest_rank_percentile(latencies, 0.50),
        nearest_rank_percentile(latencies, 0.99),
    )


def _router_latencies(cluster: ShardedCluster, skip: dict) -> list[int]:
    latencies: list[int] = []
    for router in cluster.routers:
        for shard, client in router.clients.items():
            latencies.extend(client.latencies_ns[skip[(router.router_id, shard)]:])
    return latencies


def _latency_marks(cluster: ShardedCluster) -> dict:
    return {
        (router.router_id, shard): len(client.latencies_ns)
        for router in cluster.routers
        for shard, client in router.clients.items()
    }


def run_shard_scaling_point(
    num_shards: int,
    routers_per_shard: int = 4,
    warmup_s: float = 0.2,
    measure_s: float = 0.5,
    seed: int = 3,
    config: Optional[PbftConfig] = None,
) -> ShardPoint:
    """Measure single-shard put goodput at one shard count.

    Every router writes a bounded key set chosen to live on its home
    shard (``router_id % num_shards``), so the offered load per shard is
    constant as the deployment grows — the scaling question is whether
    adding groups adds goodput, not whether one group survives more
    clients.
    """
    num_routers = routers_per_shard * num_shards
    cluster = build_sharded_cluster(
        num_shards,
        config=config or shard_bench_config(),
        seed=seed,
        real_crypto=False,
        num_routers=num_routers,
        router_hosts=num_routers,
    )

    def start(router) -> None:
        home = router.router_id % num_shards
        keys = [
            key_for_shard(cluster.directory, home, f"r{router.router_id}-k{i}")
            for i in range(_KEYS_PER_ROUTER)
        ]
        state = {"n": 0}

        def submit() -> None:
            key = keys[state["n"] % len(keys)]
            state["n"] += 1
            router.invoke(encode_put(key, PAYLOAD), callback=lambda _r: submit())

        submit()

    for router in cluster.routers:
        start(router)

    cluster.run_for(int(warmup_s * SECOND))
    start_completed = sum(r.completed_singles for r in cluster.routers)
    marks = _latency_marks(cluster)
    cluster.run_for(int(measure_s * SECOND))
    completed = sum(r.completed_singles for r in cluster.routers) - start_completed
    p50, p99 = _percentiles(_router_latencies(cluster, marks))
    cluster.stop()
    return ShardPoint(
        shards=num_shards,
        routers=num_routers,
        tps=completed / measure_s,
        p50_latency_ns=p50,
        p99_latency_ns=p99,
        completed=completed,
    )


def _sql_lock_keys(op: bytes) -> tuple[bytes, ...]:
    sql, _params = decode_sql_op(op)
    return tuple(f"table:{t}".encode() for t in tables_of_sql(sql))


def run_shard_sql_mix(
    warmup_s: float = 0.2,
    measure_s: float = 0.6,
    seed: int = 3,
    num_routers: int = 4,
    txn_every: int = 8,
    config: Optional[PbftConfig] = None,
) -> dict:
    """Mixed single-/cross-shard SQL: per-table placement, 2PC transfers.

    Shard ``s`` owns table ``ledger{s}``; every ``txn_every``-th router
    operation is a cross-shard transfer writing both ledgers atomically.
    Cross-shard transactions lock whole tables, so singles colliding
    with an in-flight transfer are retried (or refused) — that pressure
    is part of what the benchmark reports.
    """
    table_map = {"ledger0": 0, "ledger1": 1}

    def schema(shard: int) -> str:
        return (
            f"CREATE TABLE ledger{shard} (id INTEGER PRIMARY KEY, "
            "who TEXT NOT NULL, amount INTEGER NOT NULL);"
        )

    cluster = build_sharded_cluster(
        2,
        config=config or shard_bench_config(),
        seed=seed,
        real_crypto=False,
        inner_app_factory=lambda shard: SqlApplication(schema_sql=schema(shard)),
        codec_factory=SqlShardCodec,
        keys_of=_sql_lock_keys,
        table_map=table_map,
        num_routers=num_routers,
        router_hosts=num_routers,
    )

    def insert(shard: int, who: str, amount: int) -> bytes:
        return encode_sql_op(
            f"INSERT INTO ledger{shard} (who, amount) VALUES (?, ?)",
            (who, amount),
        )

    def start(router) -> None:
        state = {"n": 0}

        def submit() -> None:
            n = state["n"]
            state["n"] += 1
            done = lambda _r: submit()
            if n % txn_every == txn_every - 1:
                # A transfer: debit on shard 0, credit on shard 1.
                router.invoke_txn(
                    [
                        insert(0, f"r{router.router_id}", -(n % 97)),
                        insert(1, f"r{router.router_id}", n % 97),
                    ],
                    callback=done,
                )
            else:
                router.invoke(
                    insert(n % 2, f"r{router.router_id}-{n}", n % 97),
                    callback=done,
                )

        submit()

    for router in cluster.routers:
        start(router)

    cluster.run_for(int(warmup_s * SECOND))
    base = {
        "singles": sum(r.completed_singles for r in cluster.routers),
        "committed": sum(r.committed_txns for r in cluster.routers),
        "aborted": sum(r.aborted_txns for r in cluster.routers),
    }
    marks = _latency_marks(cluster)
    cluster.run_for(int(measure_s * SECOND))
    singles = sum(r.completed_singles for r in cluster.routers) - base["singles"]
    committed = sum(r.committed_txns for r in cluster.routers) - base["committed"]
    aborted = sum(r.aborted_txns for r in cluster.routers) - base["aborted"]
    p50, p99 = _percentiles(_router_latencies(cluster, marks))
    failed = sum(
        r.stats["failed_singles"] for r in cluster.routers
    )
    conflicts = sum(r.stats["lock_conflicts"] for r in cluster.routers)
    cluster.stop()
    return {
        "shards": 2,
        "routers": num_routers,
        "txn_every": txn_every,
        "singles_tps": round(singles / measure_s, 1),
        "txn_commit_tps": round(committed / measure_s, 1),
        "txn_aborted": aborted,
        "failed_singles": failed,
        "lock_conflicts": conflicts,
        "sim_p50_latency_us": round(p50 / 1000, 1),
        "sim_p99_latency_us": round(p99 / 1000, 1),
    }


def run_shard_bench(
    smoke: bool = False,
    seed: int = 3,
    shard_counts: tuple[int, ...] = (1, 2, 4),
    workers: int = 1,
) -> ShardBenchResult:
    """The full sharding benchmark: scaling sweep plus the SQL mix.

    Every measurement is an independent sweep cell, so ``workers > 1``
    farms them across processes; the cells carry the caller's seed
    explicitly (it is part of each measurement's identity), and results
    come back in cell order, so the bench output is identical at any
    worker count.
    """
    from repro.harness.sweeprunner import SweepCell, run_cells

    warmup_s = 0.1 if smoke else 0.2
    measure_s = 0.25 if smoke else 0.5
    start = time.time()
    cells = [
        SweepCell(
            kind="shard-scaling",
            scenario=f"kv-{shards}shard",
            params=dict(
                num_shards=shards, warmup_s=warmup_s, measure_s=measure_s
            ),
            seed=seed,
        )
        for shards in shard_counts
    ]
    cells.append(
        SweepCell(
            kind="shard-sql-mix",
            scenario="sql-mix",
            params=dict(warmup_s=warmup_s, measure_s=max(measure_s, 0.3)),
            seed=seed,
        )
    )
    results = run_cells(cells, base_seed=seed, workers=workers)
    points = [ShardPoint(**result) for result in results[:-1]]
    return ShardBenchResult(
        points=points, sql=results[-1], wall_s=time.time() - start
    )


def format_shard_bench(result: ShardBenchResult) -> str:
    header = f"{'Shards':>6s} {'Routers':>7s} {'Goodput':>10s} {'p50':>9s} {'p99':>9s} {'Scale':>6s}"
    lines = ["kv put goodput vs shard count", header, "-" * len(header)]
    for point in result.points:
        lines.append(
            f"{point.shards:6d} {point.routers:7d} {point.tps:10.0f} "
            f"{point.p50_latency_ns / 1000:8.1f}u {point.p99_latency_ns / 1000:8.1f}u "
            f"{result.speedup(point.shards):5.2f}x"
        )
    sql = result.sql
    lines.append("")
    lines.append(
        "mixed SQL (2 shards): "
        f"{sql['singles_tps']:.0f} single-op/s, "
        f"{sql['txn_commit_tps']:.0f} cross-shard commit/s, "
        f"{sql['txn_aborted']} aborted, {sql['failed_singles']} failed "
        f"singles, {sql['lock_conflicts']} lock conflicts, "
        f"p50 {sql['sim_p50_latency_us']:.0f}us"
    )
    return "\n".join(lines)
