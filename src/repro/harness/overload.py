"""Open-loop overload sweep: goodput and latency past saturation.

The paper's benchmarks are closed-loop — every client waits for its reply
before issuing the next operation — so offered load can never exceed what
the group sustains, and overload behaviour goes unmeasured.  This sweep
drives the cluster *open loop*: each client submits on a fixed arrival
schedule derived from an estimated capacity, regardless of whether earlier
operations finished.  Sweeping the arrival rate past saturation shows
whether the admission pipeline (bounded queues, per-client caps, BUSY
backpressure — see DESIGN.md, "Overload model and graceful degradation")
degrades gracefully: goodput should plateau near capacity while shed rate
and latency absorb the excess, instead of collapsing under queue growth.

Every arrival tick is deterministic in (config, seed, multiplier): client
phases are staggered fractions of the arrival interval, and the shedding
policy itself is RNG-free, so two identical sweeps report identical shed
counts.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.common.units import SECOND
from repro.obs import nearest_rank_percentile
from repro.pbft.cluster import Cluster, build_cluster
from repro.pbft.config import PbftConfig

# Per-replica overload counters sampled around the measured window.
_REPLICA_STATS = (
    "requests_shed",
    "busy_sent",
    "inflight_capped",
    "waiting_shed",
    "duplicate_inflight",
    "oversized_rejected",
    "penalty_box_drops",
)
_CLIENT_STATS = ("busy_received", "busy_retries", "retransmissions")


def overload_config() -> PbftConfig:
    """The cluster the sweep runs against: more clients than the queue
    budget admits at once, so saturation actually presses the shedding
    policy rather than just the batching pipeline."""
    return PbftConfig(
        num_clients=24,
        checkpoint_interval=64,
        log_window=128,
        pending_queue_budget=12,
        busy_retry_hint_ns=10_000_000,       # 10 ms
        client_busy_backoff_ns=10_000_000,   # 10 ms
        client_busy_backoff_cap_ns=160_000_000,
    )


@dataclass
class OverloadPoint:
    """One multiplier's measured window."""

    multiplier: float
    offered_tps: float        # target arrival rate
    arrived_tps: float        # ticks that actually submitted an operation
    goodput_tps: float        # operations completed in the window
    completed: int
    source_drops: int         # ticks skipped: previous op still outstanding
    mean_latency_ns: float
    p50_latency_ns: int
    p99_latency_ns: int
    replica_stats: dict = field(default_factory=dict)
    client_stats: dict = field(default_factory=dict)
    view_changes: int = 0
    # Window accounting: every tick either submits, or is dropped at the
    # source because the client's previous op is still outstanding.  A
    # dropped tick is offered load the cluster never saw, so it must not
    # count toward ``arrived_tps`` — the conserved identity is
    # ``ticks == completed + (outstanding_end - outstanding_start) +
    # source_drops``.
    ticks: int = 0
    outstanding_start: int = 0
    outstanding_end: int = 0

    @property
    def shed(self) -> int:
        return self.replica_stats.get("requests_shed", 0)

    @property
    def busy_replies(self) -> int:
        return self.replica_stats.get("busy_sent", 0)


@dataclass
class OverloadSweep:
    """All points of one sweep, lowest multiplier first."""

    capacity_tps: float
    seed: int
    payload_size: int
    points: list[OverloadPoint]

    def point_at(self, multiplier: float) -> OverloadPoint:
        for point in self.points:
            if abs(point.multiplier - multiplier) < 1e-9:
                return point
        raise KeyError(f"no sweep point at multiplier {multiplier}")

    def graceful(
        self, at: float = 2.0, reference: float = 1.0, threshold: float = 0.8
    ) -> bool:
        """Graceful degradation: goodput at ``at``× offered load stays
        within ``threshold`` of goodput at ``reference``× (saturation)."""
        ref = self.point_at(reference).goodput_tps
        return self.point_at(at).goodput_tps >= threshold * ref

    def to_dict(self) -> dict:
        return asdict(self)


def estimate_capacity(
    config: PbftConfig,
    payload_size: int = 256,
    warmup_s: float = 0.2,
    measure_s: float = 0.4,
    seed: int = 3,
) -> float:
    """Closed-loop throughput of the same cluster: the sweep's 1.0× anchor."""
    from repro.harness.measure import run_null_workload

    measurement = run_null_workload(
        config,
        name="capacity-estimate",
        payload_size=payload_size,
        warmup_s=warmup_s,
        measure_s=measure_s,
        seed=seed,
    )
    return measurement.tps


def _snapshot(cluster: Cluster) -> tuple[dict, dict, int]:
    replica = {
        key: sum(r.stats[key] for r in cluster.replicas) for key in _REPLICA_STATS
    }
    client = {
        key: sum(c.stats[key] for c in cluster.clients) for key in _CLIENT_STATS
    }
    views = sum(r.stats["view_changes_started"] for r in cluster.replicas)
    return replica, client, views


def _run_point(
    config: PbftConfig,
    capacity_tps: float,
    multiplier: float,
    payload_size: int,
    warmup_s: float,
    measure_s: float,
    seed: int,
) -> OverloadPoint:
    cluster = build_cluster(config, seed=seed, real_crypto=False)
    payload = bytes(payload_size)
    offered_tps = capacity_tps * multiplier
    num_clients = len(cluster.clients)
    interval_ns = max(1, int(num_clients * SECOND / offered_tps))

    arrivals = [0] * num_clients  # ticks that actually submitted an op
    drops = [0] * num_clients
    completions: list[tuple[int, int]] = []  # (finish time, latency)
    timers: list = [None] * num_clients

    def tick(index: int) -> None:
        client = cluster.clients[index]
        if client.pending is not None:
            # Open-loop source with a full outbox: the middleware allows
            # one outstanding operation per client, so the source sheds
            # locally.  This is offered load the cluster never saw — it
            # counts as a drop, never as an arrival, or offered-vs-arrived
            # ratios would overstate pressure at high multipliers.
            drops[index] += 1
        else:
            arrivals[index] += 1
            client.invoke(
                payload,
                callback=lambda _res, lat: completions.append(
                    (cluster.sim.now, lat)
                ),
            )
        timers[index] = cluster.sim.schedule(interval_ns, lambda: tick(index))

    # Staggered phases: client k's first arrival at (k+1)/n of an interval,
    # so the offered stream is smooth and fully determined by (seed, rate).
    for index in range(num_clients):
        delay = max(1, (index + 1) * interval_ns // num_clients)
        cluster.sim.schedule(delay, lambda index=index: tick(index))

    cluster.run_for(int(warmup_s * SECOND))
    arrivals_before = sum(arrivals)
    drops_before = sum(drops)
    completed_before = len(completions)
    outstanding_start = sum(1 for c in cluster.clients if c.pending is not None)
    replica_before, client_before, views_before = _snapshot(cluster)

    cluster.run_for(int(measure_s * SECOND))
    outstanding_end = sum(1 for c in cluster.clients if c.pending is not None)
    replica_after, client_after, views_after = _snapshot(cluster)
    window = completions[completed_before:]
    latencies = sorted(lat for _t, lat in window)

    for timer in timers:
        if timer is not None:
            timer.cancel()
    cluster.stop_clients()

    submitted = sum(arrivals) - arrivals_before
    source_drops = sum(drops) - drops_before
    return OverloadPoint(
        multiplier=multiplier,
        offered_tps=offered_tps,
        arrived_tps=submitted / measure_s,
        goodput_tps=len(window) / measure_s,
        completed=len(window),
        source_drops=source_drops,
        ticks=submitted + source_drops,
        outstanding_start=outstanding_start,
        outstanding_end=outstanding_end,
        mean_latency_ns=(sum(latencies) / len(latencies)) if latencies else 0.0,
        p50_latency_ns=nearest_rank_percentile(latencies, 0.50),
        p99_latency_ns=nearest_rank_percentile(latencies, 0.99),
        replica_stats={
            key: replica_after[key] - replica_before[key] for key in _REPLICA_STATS
        },
        client_stats={
            key: client_after[key] - client_before[key] for key in _CLIENT_STATS
        },
        view_changes=views_after - views_before,
    )


def run_overload_sweep(
    config: PbftConfig | None = None,
    multipliers: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0),
    payload_size: int = 256,
    warmup_s: float = 0.3,
    measure_s: float = 0.5,
    seed: int = 3,
    capacity_tps: float | None = None,
) -> OverloadSweep:
    """Sweep offered load across ``multipliers`` of estimated capacity.

    Each point runs a fresh deterministic cluster; the capacity anchor is
    measured once, closed loop, on the same configuration (or supplied via
    ``capacity_tps`` to pin the arrival schedule exactly).
    """
    config = config or overload_config()
    if capacity_tps is None:
        capacity_tps = estimate_capacity(
            config, payload_size=payload_size, seed=seed
        )
    points = [
        _run_point(
            config, capacity_tps, multiplier, payload_size,
            warmup_s, measure_s, seed,
        )
        for multiplier in sorted(multipliers)
    ]
    return OverloadSweep(
        capacity_tps=capacity_tps,
        seed=seed,
        payload_size=payload_size,
        points=points,
    )
