"""WAN deployment scenarios (paper section 3.3.3).

"We aim to have the replicas located in different physical locations ...
This requirement dictates operation in a Wide Area Network environment,
where the quadratic message complexity of PBFT will most probably prove
costly regarding request latency.  Although we tried to simulate a WAN
deployment scenario using BFTsim, the simulator could not scale..."

Our simulator scales fine, so the experiment the authors could not run is
provided here: the same middleware over LAN / metro / WAN latency
profiles, measuring what geography does to throughput and latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import MICROSECOND, MILLISECOND
from repro.harness.measure import Measurement, run_null_workload
from repro.net.fabric import LinkSpec, NetworkConfig
from repro.pbft.config import PbftConfig


@dataclass(frozen=True)
class WanProfile:
    name: str
    one_way_latency_ns: int
    jitter_ns: int
    bandwidth_bps: int


LAN = WanProfile("lan-1gbe", 70 * MICROSECOND, 10 * MICROSECOND, 938_000_000)
METRO = WanProfile("metro", 2 * MILLISECOND, 200 * MICROSECOND, 500_000_000)
CONTINENTAL = WanProfile("continental-wan", 20 * MILLISECOND, 2 * MILLISECOND, 100_000_000)
INTERCONTINENTAL = WanProfile(
    "intercontinental-wan", 75 * MILLISECOND, 8 * MILLISECOND, 50_000_000
)

PROFILES = (LAN, METRO, CONTINENTAL, INTERCONTINENTAL)


def net_config_for(profile: WanProfile) -> NetworkConfig:
    return NetworkConfig(
        default_link=LinkSpec(
            latency_ns=profile.one_way_latency_ns,
            jitter_ns=profile.jitter_ns,
            bandwidth_bps=profile.bandwidth_bps,
        )
    )


def run_wan_sweep(
    profiles: tuple[WanProfile, ...] = PROFILES,
    measure_s: float = 0.8,
    seed: int = 3,
    config: PbftConfig | None = None,
) -> list[tuple[WanProfile, Measurement]]:
    """Run the default null workload across latency profiles.

    Timeouts scale with the round-trip so the protocol is measured rather
    than spurious retransmissions.
    """
    results = []
    for profile in profiles:
        rtt = 2 * profile.one_way_latency_ns
        base = config or PbftConfig()
        tuned = base.with_options(
            client_retransmit_ns=max(base.client_retransmit_ns, 20 * rtt),
            view_change_timeout_ns=max(base.view_change_timeout_ns, 60 * rtt),
        )
        measurement = run_null_workload(
            tuned,
            name=profile.name,
            measure_s=measure_s,
            warmup_s=max(0.2, 40 * rtt / 1e9),
            seed=seed,
            net_config=net_config_for(profile),
        )
        results.append((profile, measurement))
    return results


def format_wan(results: list[tuple[WanProfile, Measurement]]) -> str:
    from repro.common.units import format_duration

    header = f"{'Profile':24s} {'one-way':>10s} {'TPS':>8s} {'p50 latency':>12s}"
    lines = [header, "-" * len(header)]
    for profile, m in results:
        lines.append(
            f"{profile.name:24s} {format_duration(profile.one_way_latency_ns):>10s} "
            f"{m.tps:8.0f} {format_duration(m.p50_latency_ns):>12s}"
        )
    return "\n".join(lines)
