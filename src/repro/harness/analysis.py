"""Message-trace analysis — the paper's section 2.2 tooling.

"We modified the library to be able to run multiple times on the same
host ... We also created a log of all messages exchanged between replicas
that, given the common clock, allowed us to reason about the behavior of
the system.  All further observations are based on this groundwork."

The fabric already records that common-clock log; this module turns it
into the summaries the observations need: message counts/bytes by type,
per-link traffic, drop accounting, and per-request protocol timelines.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.net.fabric import TraceRecord


@dataclass
class TrafficSummary:
    """Aggregate view of one trace."""

    messages_by_kind: dict[str, int] = field(default_factory=dict)
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    drops_by_reason: dict[str, int] = field(default_factory=dict)
    messages_by_link: dict[tuple[str, str], int] = field(default_factory=dict)
    total_messages: int = 0
    total_bytes: int = 0

    def format(self) -> str:
        lines = [f"{'Message kind':16s} {'count':>8s} {'bytes':>12s}"]
        lines.append("-" * 40)
        for kind in sorted(self.messages_by_kind, key=lambda k: -self.messages_by_kind[k]):
            lines.append(
                f"{kind:16s} {self.messages_by_kind[kind]:8d} "
                f"{self.bytes_by_kind[kind]:12d}"
            )
        lines.append("-" * 40)
        lines.append(f"{'total':16s} {self.total_messages:8d} {self.total_bytes:12d}")
        if self.drops_by_reason:
            lines.append(f"drops: {dict(self.drops_by_reason)}")
        return "\n".join(lines)


def summarize(trace: list[TraceRecord]) -> TrafficSummary:
    """Aggregate a trace into per-kind / per-link / per-reason counts."""
    summary = TrafficSummary()
    kinds: dict[str, int] = defaultdict(int)
    kind_bytes: dict[str, int] = defaultdict(int)
    drops: dict[str, int] = defaultdict(int)
    links: dict[tuple[str, str], int] = defaultdict(int)
    for record in trace:
        kinds[record.kind] += 1
        kind_bytes[record.kind] += record.size
        links[(record.src[0], record.dst[0])] += 1
        if record.dropped:
            drops[record.reason] += 1
        summary.total_messages += 1
        summary.total_bytes += record.size
    summary.messages_by_kind = dict(kinds)
    summary.bytes_by_kind = dict(kind_bytes)
    summary.drops_by_reason = dict(drops)
    summary.messages_by_link = dict(links)
    return summary


def messages_per_request(trace: list[TraceRecord], completed_requests: int) -> float:
    """Protocol overhead: datagrams per completed client request."""
    if completed_requests <= 0:
        return float("inf")
    agreement = sum(
        1
        for record in trace
        if record.kind in ("Request", "PrePrepare", "Prepare", "Commit", "Reply")
    )
    return agreement / completed_requests


def quadratic_complexity_check(trace: list[TraceRecord], n_replicas: int) -> dict[str, float]:
    """The paper's WAN worry made measurable: prepare/commit message
    counts per agreement round are Θ(n²)."""
    rounds = max(
        1,
        sum(1 for r in trace if r.kind == "PrePrepare") // max(1, n_replicas - 1),
    )
    prepares = sum(1 for r in trace if r.kind == "Prepare")
    commits = sum(1 for r in trace if r.kind == "Commit")
    return {
        "rounds": rounds,
        "prepares_per_round": prepares / rounds,
        "commits_per_round": commits / rounds,
        # Each of the n-1 backups multicasts its prepare to n-1 peers;
        # every replica multicasts its commit likewise.
        "expected_prepares_per_round": (n_replicas - 1) ** 2,
        "expected_commits_per_round": n_replicas * (n_replicas - 1),
    }


def request_timeline(trace: list[TraceRecord], start: int = 0) -> list[str]:
    """A Figure-1 style textual timeline of the first request after
    ``start`` ns."""
    phases = []
    seen = set()
    for record in trace:
        if record.time < start:
            continue
        if record.kind in ("Request", "PrePrepare", "Prepare", "Commit", "Reply"):
            if record.kind not in seen:
                seen.add(record.kind)
                phases.append(
                    f"t={record.time / 1e6:.3f}ms first {record.kind} "
                    f"({record.src[0]} -> {record.dst[0]})"
                )
        if len(seen) == 5:
            break
    return phases
