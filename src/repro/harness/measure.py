"""Closed-loop workloads and throughput/latency measurement.

Reproduces the paper's methodology (section 4): closed-loop clients with
one outstanding request each, a warm-up period, then a measured window;
throughput is completed operations per second of *simulated* time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.units import SECOND
from repro.obs import Observability, nearest_rank_percentile
from repro.pbft.cluster import Cluster, build_cluster
from repro.pbft.config import PbftConfig


@dataclass
class Measurement:
    """One workload run's results."""

    name: str
    tps: float
    mean_latency_ns: float
    p50_latency_ns: int
    p99_latency_ns: int
    completed: int
    retransmissions: int
    view_changes: int
    duration_s: float
    extras: dict = field(default_factory=dict)
    # Mean ns per protocol phase (client-send, pre-prepare, prepare,
    # commit, execute, reply) for requests completed in the measured
    # window; empty unless the run was traced.
    phase_latency_ns: dict = field(default_factory=dict)

    @staticmethod
    def from_cluster(
        name: str, cluster: Cluster, completed: int, latencies: list[int], duration_s: float
    ) -> "Measurement":
        latencies = sorted(latencies)
        def pct(p: float) -> int:
            return nearest_rank_percentile(latencies, p)
        return Measurement(
            name=name,
            tps=completed / duration_s if duration_s > 0 else 0.0,
            mean_latency_ns=(sum(latencies) / len(latencies)) if latencies else 0.0,
            p50_latency_ns=pct(0.50),
            p99_latency_ns=pct(0.99),
            completed=completed,
            retransmissions=sum(c.retransmissions for c in cluster.clients),
            view_changes=sum(r.stats["view_changes_started"] for r in cluster.replicas),
            duration_s=duration_s,
        )


def _measure_window(
    cluster: Cluster, warmup_s: float, measure_s: float
) -> tuple[int, list[int], int]:
    """Run warm-up then the measured window; return (completed ops,
    their latencies, the window's simulated start time)."""
    cluster.run_for(int(warmup_s * SECOND))
    window_start = cluster.sim.now
    start_completed = cluster.total_completed()
    start_lat_counts = [len(c.latencies_ns) for c in cluster.clients]
    cluster.run_for(int(measure_s * SECOND))
    completed = cluster.total_completed() - start_completed
    latencies: list[int] = []
    for client, skip in zip(cluster.clients, start_lat_counts):
        latencies.extend(client.latencies_ns[skip:])
    return completed, latencies, window_start


def _finish_traced_run(
    cluster: Cluster,
    measurement: Measurement,
    trace_path: Optional[str],
    window_start: int,
) -> None:
    """Fill in the per-phase breakdown and write the Chrome trace."""
    cluster.collect_metrics()
    if not cluster.obs.tracer.enabled:
        return
    from repro.obs.phases import phase_breakdown

    measurement.phase_latency_ns = phase_breakdown(
        cluster.obs.tracer, since_ns=window_start
    )
    if trace_path is not None:
        cluster.obs.write_chrome_trace(trace_path)


def _start_closed_loop(cluster: Cluster, make_op: Callable[[int, int], tuple[bytes, bool]]):
    """Each client runs a closed loop; ``make_op(client_index, seq)``
    returns (op bytes, readonly)."""
    counters = [0] * len(cluster.clients)

    def loop(index: int):
        client = cluster.clients[index]

        def done(_result: bytes, _latency: int) -> None:
            submit()

        def submit() -> None:
            counters[index] += 1
            op, readonly = make_op(index, counters[index])
            client.invoke(op, readonly=readonly, callback=done)

        submit()

    for index in range(len(cluster.clients)):
        loop(index)


def _join_all(cluster: Cluster, timeout_s: float = 5.0) -> None:
    """Dynamic membership: join every client before the workload starts."""
    from repro.membership import join_client

    rng = cluster.rng.stream("workload-joins")
    joined: list[int] = []
    for index, client in enumerate(cluster.clients):
        join_client(client, f"bench-user-{index}".encode(), rng,
                    callback=lambda _eid: joined.append(1))
    deadline = cluster.sim.now + int(timeout_s * SECOND)
    while len(joined) < len(cluster.clients) and cluster.sim.now < deadline:
        cluster.sim.run_for(10_000_000)
    if len(joined) < len(cluster.clients):
        raise TimeoutError(
            f"only {len(joined)}/{len(cluster.clients)} clients joined"
        )


def run_null_workload(
    config: PbftConfig,
    name: str = "null",
    payload_size: int = 1024,
    warmup_s: float = 0.2,
    measure_s: float = 0.5,
    seed: int = 3,
    real_crypto: bool = False,
    app_factory=None,
    cluster_hook: Optional[Callable[[Cluster], None]] = None,
    net_config=None,
    trace_path: Optional[str] = None,
) -> Measurement:
    """The paper's null-operation benchmark (Table 1 / Figure 4).

    With ``trace_path`` set, the run is traced and a Chrome
    ``trace_event`` file (openable in Perfetto / chrome://tracing) is
    written there; the measurement gains ``phase_latency_ns``.
    """
    from repro.pbft.replica import NullApplication

    factory = app_factory or (lambda: NullApplication(reply_size=payload_size))
    obs = Observability(tracing=True) if trace_path is not None else None
    cluster = build_cluster(
        config, seed=seed, real_crypto=real_crypto, app_factory=factory,
        net_config=net_config, obs=obs,
    )
    if cluster_hook is not None:
        cluster_hook(cluster)
    if config.dynamic_clients:
        _join_all(cluster)
    payload = bytes(payload_size)
    _start_closed_loop(cluster, lambda _i, _seq: (payload, False))
    completed, latencies, window_start = _measure_window(cluster, warmup_s, measure_s)
    measurement = Measurement.from_cluster(name, cluster, completed, latencies, measure_s)
    _finish_traced_run(cluster, measurement, trace_path, window_start)
    cluster.stop_clients()
    return measurement


def run_analytics_workload(
    config: PbftConfig,
    name: str = "sql-analytics",
    acid: bool = True,
    warmup_s: float = 0.3,
    measure_s: float = 1.0,
    seed: int = 3,
    real_crypto: bool = False,
    select_every: int = 4,
    cluster_hook: Optional[Callable[[Cluster], None]] = None,
    trace_path: Optional[str] = None,
) -> Measurement:
    """Multi-table analytics under replication: a stream of order INSERTs
    interleaved with join + GROUP BY aggregate SELECTs over the growing
    fact table.  Every ``select_every``-th operation of each client is a
    two-table equi-join rollup; the rest append rows.

    The query shapes are deliberately *metric-parity* shapes (equi hash
    joins, hash aggregation, full scans) so the planner changes wall-clock
    cost but not the simulated ``rows_scanned`` the cost model charges —
    simulated TPS/latency stay bit-identical with the planner off or on,
    which is what makes the differential benchmark assertion possible.
    """
    from repro.apps.sqlapp import SqlApplication, encode_sql_op

    schema = (
        "CREATE TABLE regions (id INTEGER PRIMARY KEY, name TEXT NOT NULL);"
        "CREATE TABLE products (id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
        "price INTEGER NOT NULL);"
        "CREATE TABLE orders (id INTEGER PRIMARY KEY, region_id INTEGER NOT NULL, "
        "product_id INTEGER NOT NULL, amount INTEGER NOT NULL, status TEXT NOT NULL);"
        "INSERT INTO regions (name) VALUES ('north');"
        "INSERT INTO regions (name) VALUES ('south');"
        "INSERT INTO regions (name) VALUES ('east');"
        "INSERT INTO regions (name) VALUES ('west');"
        "INSERT INTO products (name, price) VALUES ('widget', 5);"
        "INSERT INTO products (name, price) VALUES ('gadget', 12);"
        "INSERT INTO products (name, price) VALUES ('sprocket', 7);"
        "INSERT INTO products (name, price) VALUES ('gizmo', 3);"
    )
    factory = lambda: SqlApplication(schema_sql=schema, acid=acid)
    obs = Observability(tracing=True) if trace_path is not None else None
    cluster = build_cluster(
        config, seed=seed, real_crypto=real_crypto, app_factory=factory, obs=obs
    )
    if cluster_hook is not None:
        cluster_hook(cluster)
    if config.dynamic_clients:
        _join_all(cluster)

    rollups = (
        "SELECT r.name, COUNT(*), SUM(o.amount) FROM orders o "
        "JOIN regions r ON o.region_id = r.id GROUP BY r.name ORDER BY r.name",
        "SELECT p.name, COUNT(*), SUM(o.amount * p.price) FROM orders o "
        "JOIN products p ON o.product_id = p.id GROUP BY p.name ORDER BY p.name",
    )

    def make_op(index: int, seq: int) -> tuple[bytes, bool]:
        if seq % select_every == 0:
            return encode_sql_op(rollups[(index + seq) % len(rollups)]), False
        return (
            encode_sql_op(
                "INSERT INTO orders (region_id, product_id, amount, status) "
                "VALUES (?, ?, ?, ?)",
                (
                    1 + (index + seq) % 4,
                    1 + (index * 3 + seq) % 4,
                    1 + seq % 9,
                    "open" if seq % 3 else "shipped",
                ),
            ),
            False,
        )

    _start_closed_loop(cluster, make_op)
    completed, latencies, window_start = _measure_window(cluster, warmup_s, measure_s)
    measurement = Measurement.from_cluster(name, cluster, completed, latencies, measure_s)
    # Replicas must agree on the database contents, bit for bit.
    roots = {r.state.refresh_tree() for r in cluster.replicas if not r.crashed}
    if len(roots) != 1:
        raise AssertionError(f"{name}: replica state roots diverged: {len(roots)}")
    measurement.extras["state_root"] = roots.pop().hex()
    _finish_traced_run(cluster, measurement, trace_path, window_start)
    cluster.stop_clients()
    return measurement


def run_sql_workload(
    config: PbftConfig,
    name: str = "sql-insert",
    acid: bool = True,
    warmup_s: float = 0.3,
    measure_s: float = 1.0,
    seed: int = 3,
    real_crypto: bool = False,
    cluster_hook: Optional[Callable[[Cluster], None]] = None,
    trace_path: Optional[str] = None,
) -> Measurement:
    """The paper's section 4.2 benchmark: one ballot INSERT per request.

    "The tuple inserted into the database includes a simple key and value
    text ... in addition to a timestamp and a random value."
    """
    from repro.apps.sqlapp import SqlApplication, encode_sql_op

    schema = (
        "CREATE TABLE votes (id INTEGER PRIMARY KEY, voter TEXT NOT NULL, "
        "vote TEXT NOT NULL, cast_at INTEGER NOT NULL, receipt BLOB NOT NULL);"
        "CREATE UNIQUE INDEX idx_votes_voter ON votes(voter);"
    )
    factory = lambda: SqlApplication(schema_sql=schema, acid=acid)
    obs = Observability(tracing=True) if trace_path is not None else None
    cluster = build_cluster(
        config, seed=seed, real_crypto=real_crypto, app_factory=factory, obs=obs
    )
    if cluster_hook is not None:
        cluster_hook(cluster)
    if config.dynamic_clients:
        _join_all(cluster)

    def make_op(index: int, seq: int) -> tuple[bytes, bool]:
        return (
            encode_sql_op(
                "INSERT INTO votes (voter, vote, cast_at, receipt) "
                "VALUES (?, ?, now(), randomblob(8))",
                (f"voter-{index}-{seq}", f"candidate-{seq % 3}"),
            ),
            False,
        )

    _start_closed_loop(cluster, make_op)
    completed, latencies, window_start = _measure_window(cluster, warmup_s, measure_s)
    measurement = Measurement.from_cluster(name, cluster, completed, latencies, measure_s)
    # Sanity: replicas must agree on the row count they inserted.
    counts = {r.stats["requests_executed"] for r in cluster.replicas if not r.crashed}
    measurement.extras["replica_exec_counts"] = sorted(counts)
    roots = {r.state.refresh_tree() for r in cluster.replicas if not r.crashed}
    if len(roots) == 1:
        measurement.extras["state_root"] = roots.pop().hex()
    _finish_traced_run(cluster, measurement, trace_path, window_start)
    cluster.stop_clients()
    return measurement
