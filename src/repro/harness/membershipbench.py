"""Membership campaign: measured availability vs the analytic Markov model.

Two experiment families, both riding the fault-campaign machinery:

* **Markov churn scenarios** — every replica independently alternates
  exponentially distributed up/down periods (the two-state fail/repair
  chain of "Dynamic Practical BFT", arXiv:2210.14003, and "Repairable
  Voting Nodes", arXiv:2306.10960).  With per-replica steady-state
  availability ``a = mean_up / (mean_up + mean_down)``, the group can
  order requests whenever at least 2f+1 replicas are up, so the analytic
  service availability is the binomial tail

      A = sum_{k=2f+1}^{n} C(n,k) a^k (1-a)^(n-k).

  The runner measures the fraction of sampled instants with >= 2f+1 live
  replicas inside the churn window and reports it against A.

* **Live replica replace** — a RECONFIG_REPLACE ordered through the
  protocol followed by the physical machine swap, under packet loss; the
  runner reports goodput before / during / after the bootstrap window and
  requires zero committed-op loss plus membership safety (invariant #7).

``run_membership_bench`` composes both into the BENCH_membership.json
artifact the CI smoke job gates against.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

from repro.common.units import MILLISECOND, SECOND
from repro.faults.campaign import PAYLOAD, campaign_config
from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    Violation,
    check_agreement,
    check_checkpoint_monotone,
    check_flood_liveness,
    check_liveness,
    check_membership_safety,
    check_no_committed_loss,
)
from repro.faults.schedule import (
    FaultSchedule,
    LinkDisturbance,
    MarkovChurn,
    ReplicaReplace,
    Trigger,
)
from repro.obs import Observability
from repro.pbft.cluster import Cluster, build_cluster


@dataclass(frozen=True)
class MembershipScenario:
    """One Markov fail/repair regime applied to every replica."""

    name: str
    mean_up_ns: int
    mean_down_ns: int
    churn_ns: int = 2000 * MILLISECOND

    @property
    def replica_availability(self) -> float:
        return self.mean_up_ns / (self.mean_up_ns + self.mean_down_ns)


#: The standard sweep: a healthy fleet, the steady-churn regime, and a
#: fragile one whose analytic availability drops below one half.
MEMBERSHIP_SCENARIOS: tuple[MembershipScenario, ...] = (
    MembershipScenario("healthy", 900 * MILLISECOND, 100 * MILLISECOND),
    MembershipScenario("steady", 400 * MILLISECOND, 100 * MILLISECOND),
    MembershipScenario("fragile", 250 * MILLISECOND, 250 * MILLISECOND),
)


def analytic_availability(f: int, mean_up_ns: int, mean_down_ns: int) -> float:
    """Quorum availability of n=3f+1 independently churning replicas."""
    a = mean_up_ns / (mean_up_ns + mean_down_ns)
    n = 3 * f + 1
    quorum = 2 * f + 1
    return sum(
        comb(n, k) * a**k * (1.0 - a) ** (n - k) for k in range(quorum, n + 1)
    )


def _run_with_injector(
    schedule: FaultSchedule,
    seed: int,
    sample_window: tuple[int, int] | None,
    run_ns: int,
    drain_ns: int = 3 * SECOND,
    settle_ns: int = 400 * MILLISECOND,
):
    """Campaign-style run with per-instant quorum-availability sampling.

    Returns (cluster, injector, invoked, completed, completed_at_ns,
    samples) where ``samples`` are booleans — ">= 2f+1 replicas live" at
    2 ms intervals inside ``sample_window``.
    """
    config = campaign_config()
    cluster = build_cluster(
        config, seed=seed, real_crypto=False, obs=Observability()
    )
    injector = FaultInjector(cluster, schedule)
    invoked: list[tuple[int, int]] = []
    completed: list[tuple[int, int]] = []
    completed_at_ns: list[int] = []
    issuing = {"on": True}

    for client in cluster.clients:

        def submit(client=client) -> None:
            def done(_res, _lat) -> None:
                completed.append((client.node_id, req.req_id))
                completed_at_ns.append(cluster.sim.now)
                if issuing["on"]:
                    submit(client)

            req = client.invoke(PAYLOAD, callback=done)
            invoked.append((client.node_id, req.req_id))

        submit()

    samples: list[bool] = []
    if sample_window is not None:
        start, end = sample_window
        quorum = config.quorum

        def sample() -> None:
            now = cluster.sim.now
            if now > end:
                return
            if now >= start:
                live = sum(1 for r in cluster.replicas if not r.crashed)
                samples.append(live >= quorum)
            cluster.sim.schedule(2 * MILLISECOND, sample)

        cluster.sim.schedule(start, sample)

    injector.start()
    step = 10 * MILLISECOND
    deadline = cluster.sim.now + run_ns
    hard_cap = deadline + drain_ns
    while cluster.sim.now < deadline or (
        not injector.quiescent and cluster.sim.now < hard_cap
    ):
        cluster.run_for(step)
    issuing["on"] = False
    drain_deadline = cluster.sim.now + drain_ns
    while (
        any(client.pending is not None for client in cluster.clients)
        and cluster.sim.now < drain_deadline
    ):
        cluster.run_for(step)
    cluster.run_for(settle_ns)
    injector.stop()
    cluster.stop_clients()
    return cluster, injector, invoked, completed, completed_at_ns, samples


def _check_all(
    cluster: Cluster,
    injector: FaultInjector,
    invoked,
    completed,
    completed_at_ns,
) -> list[Violation]:
    return (
        check_agreement(cluster)
        + check_no_committed_loss(cluster, completed)
        + check_checkpoint_monotone(injector.stability_samples)
        + check_liveness(cluster, invoked, completed)
        + check_flood_liveness(injector.client_fault_windows, completed_at_ns)
        + check_membership_safety(cluster)
    )


def run_markov_scenario(
    scenario: MembershipScenario, seed: int = 1, churn_ns: int | None = None
) -> dict:
    """Churn every replica per ``scenario``; measure quorum availability."""
    churn_ns = churn_ns if churn_ns is not None else scenario.churn_ns
    start_ns = 200 * MILLISECOND
    schedule = FaultSchedule(
        name=f"markov-{scenario.name}",
        description=f"independent Markov churn on every replica "
        f"(up~Exp({scenario.mean_up_ns / MILLISECOND:.0f}ms), "
        f"down~Exp({scenario.mean_down_ns / MILLISECOND:.0f}ms))",
        faults=tuple(
            MarkovChurn(
                replica=rid,
                mean_up_ns=scenario.mean_up_ns,
                mean_down_ns=scenario.mean_down_ns,
                duration_ns=churn_ns,
                start=Trigger(at_ns=start_ns),
            )
            for rid in range(campaign_config().n)
        ),
    )
    cluster, injector, invoked, completed, completed_at_ns, samples = (
        _run_with_injector(
            schedule,
            seed,
            sample_window=(start_ns, start_ns + churn_ns),
            run_ns=start_ns + churn_ns,
        )
    )
    violations = _check_all(
        cluster, injector, invoked, completed, completed_at_ns
    )
    predicted = analytic_availability(
        cluster.config.f, scenario.mean_up_ns, scenario.mean_down_ns
    )
    measured = (sum(samples) / len(samples)) if samples else 0.0
    in_window = sum(
        1
        for t in completed_at_ns
        if start_ns <= t <= start_ns + churn_ns
    )
    return {
        "scenario": scenario.name,
        "seed": seed,
        "mean_up_ms": scenario.mean_up_ns / MILLISECOND,
        "mean_down_ms": scenario.mean_down_ns / MILLISECOND,
        "churn_ms": churn_ns / MILLISECOND,
        "replica_availability": scenario.replica_availability,
        "predicted_availability": predicted,
        "measured_availability": measured,
        "availability_ratio": (measured / predicted) if predicted else 0.0,
        "goodput_in_window_ops_per_s": in_window / (churn_ns / SECOND),
        "completed_ops": len(completed),
        "violations": [str(v) for v in violations],
    }


def run_replace_scenario(seed: int = 1, loss: float = 0.0) -> dict:
    """Live replica replace: goodput dip profile and zero committed loss.

    Defaults to a clean network so the before/during/after windows
    isolate the *replace* dip — under even 1% ambient loss the campaign
    config's goodput collapses for the whole loss window (stalled
    congestion window healed by 100-150 ms backstops), swamping the
    signal.  The replace-under-loss *correctness* claim is covered by
    the ``replace-replica-under-loss`` campaign schedule instead.
    """
    warmup_ns = 400 * MILLISECOND
    window_ns = 400 * MILLISECOND
    faults: tuple = (
        ReplicaReplace(slot=2, at=Trigger(at_ns=warmup_ns, at_seq=16)),
    )
    if loss:
        faults = (
            LinkDisturbance(
                start=Trigger(at_ns=100 * MILLISECOND),
                duration_ns=1900 * MILLISECOND,
                drop_probability=loss,
            ),
        ) + faults
    schedule = FaultSchedule(
        name="bench-replace",
        description="ordered replica replace mid-workload",
        faults=faults,
    )
    cluster, injector, invoked, completed, completed_at_ns, _ = (
        _run_with_injector(
            schedule, seed, sample_window=None, run_ns=2000 * MILLISECOND
        )
    )
    violations = _check_all(
        cluster, injector, invoked, completed, completed_at_ns
    )

    def goodput(lo: int, hi: int) -> float:
        if hi <= lo:
            return 0.0
        ops = sum(1 for t in completed_at_ns if lo <= t < hi)
        return ops / ((hi - lo) / SECOND)

    before = goodput(0, warmup_ns)
    during = goodput(warmup_ns, warmup_ns + window_ns)
    after_start = warmup_ns + 2 * window_ns
    after = goodput(after_start, after_start + window_ns)
    new_replica = cluster.replicas[2]
    return {
        "scenario": "replace",
        "seed": seed,
        "loss": loss,
        "goodput_before_ops_per_s": before,
        "goodput_during_ops_per_s": during,
        "goodput_after_ops_per_s": after,
        "completed_ops": len(completed),
        "replaced_replica_last_exec": new_replica.last_exec,
        "replaced_replica_epoch": new_replica.reconfig.epoch,
        "epochs": [r.reconfig.epoch for r in cluster.replicas],
        "violations": [str(v) for v in violations],
    }


#: Smoke-mode parameters: one seed, short churn.  The simulation is
#: deterministic, so CI can regenerate these rows and diff them against
#: the committed artifact.
SMOKE_SEED = 1
SMOKE_CHURN_NS = 800 * MILLISECOND


def _summarize_scenario(scenario: MembershipScenario, runs: list[dict]) -> dict:
    measured = sum(r["measured_availability"] for r in runs) / len(runs)
    predicted = runs[0]["predicted_availability"]
    ratio = (measured / predicted) if predicted else 0.0
    return {
        "scenario": scenario.name,
        "mean_up_ms": scenario.mean_up_ns / MILLISECOND,
        "mean_down_ms": scenario.mean_down_ns / MILLISECOND,
        "replica_availability": scenario.replica_availability,
        "predicted_availability": predicted,
        "measured_availability": measured,
        "availability_ratio": ratio,
        "within_20pct": abs(ratio - 1.0) <= 0.20,
        "violations": sorted({v for r in runs for v in r["violations"]}),
        "per_seed": runs,
    }


def run_membership_bench(seeds: tuple[int, ...] = (1, 2, 3), smoke: bool = False) -> dict:
    """The membership benchmark: BENCH_membership.json's content.

    Full mode produces (a) the analytic-vs-measured availability table
    averaged over ``seeds`` at 2 s churn windows, (b) deterministic
    smoke-mode rows (seed 1, 800 ms churn) that the CI job regenerates
    and gates against, and (c) the live-replace goodput profile.  Smoke
    mode produces only (b) and (c).
    """
    smoke_rows = [
        run_markov_scenario(s, seed=SMOKE_SEED, churn_ns=SMOKE_CHURN_NS)
        for s in MEMBERSHIP_SCENARIOS
    ]
    replace = run_replace_scenario(seed=SMOKE_SEED)
    result = {
        "bench": "membership",
        "smoke_seed": SMOKE_SEED,
        "smoke_churn_ms": SMOKE_CHURN_NS / MILLISECOND,
        "smoke_scenarios": smoke_rows,
        "replace": replace,
    }
    if not smoke:
        result["seeds"] = list(seeds)
        result["scenarios"] = [
            _summarize_scenario(
                s, [run_markov_scenario(s, seed=seed) for seed in seeds]
            )
            for s in MEMBERSHIP_SCENARIOS
        ]
    return result


def format_membership(results: dict) -> str:
    lines = []
    if "scenarios" in results:
        lines += [
            "Membership campaign: measured vs analytic Markov availability "
            f"(seeds {results['seeds']}, 2000ms windows)",
            f"{'scenario':<10} {'a(replica)':>10} {'A(pred)':>8} "
            f"{'A(meas)':>8} {'ratio':>6}  20%?  violations",
        ]
        for row in results["scenarios"]:
            lines.append(
                f"{row['scenario']:<10} {row['replica_availability']:>10.3f} "
                f"{row['predicted_availability']:>8.4f} "
                f"{row['measured_availability']:>8.4f} "
                f"{row['availability_ratio']:>6.2f}  "
                f"{'yes' if row['within_20pct'] else 'NO ':<4} "
                f"{len(row['violations'])}"
            )
    lines.append(
        f"smoke rows (seed {results['smoke_seed']}, "
        f"{results['smoke_churn_ms']:.0f}ms windows):"
    )
    for row in results["smoke_scenarios"]:
        lines.append(
            f"  {row['scenario']:<10} A(meas) {row['measured_availability']:.4f} "
            f"goodput {row['goodput_in_window_ops_per_s']:.1f} op/s "
            f"{len(row['violations'])} violations"
        )
    rep = results["replace"]
    lines.append(
        f"replace: goodput {rep['goodput_before_ops_per_s']:.0f} -> "
        f"{rep['goodput_during_ops_per_s']:.0f} -> "
        f"{rep['goodput_after_ops_per_s']:.0f} op/s "
        f"(before/during/after), epochs {rep['epochs']}, "
        f"{len(rep['violations'])} violations"
    )
    return "\n".join(lines)
