"""The evaluation harness: regenerates every table and figure.

* Table 1 / Figure 4 — :func:`repro.harness.experiments.run_table1` and
  :func:`run_fig4_size_sweep` (null-op throughput across the ten library
  configurations and four payload sizes);
* Figure 5 — :func:`run_fig5_sql` (SQL insert throughput across
  configurations);
* section 4.2's ACID vs No-ACID — :func:`run_acid_comparison`;
* section 2.3's recovery stall — :func:`run_recovery_experiment`;
* section 2.4's packet-loss wedge — :func:`run_packet_loss_experiment`;
* the fault-injection campaign — :func:`run_fault_campaign` (schedules ×
  seeds, four protocol invariants checked after every run).

Each returns structured results; :mod:`repro.harness.reporting` renders
them in the paper's row/series format.
"""

from repro.harness.configs import (
    TABLE1_CONFIGS,
    FIG5_CONFIGS,
    ConfigRow,
    build_config,
)
from repro.harness.measure import Measurement, run_null_workload, run_sql_workload
from repro.harness.experiments import (
    run_table1,
    run_fig4_size_sweep,
    run_fig5_sql,
    run_acid_comparison,
    run_recovery_experiment,
    run_packet_loss_experiment,
    run_fault_campaign,
)
from repro.harness.batching import (
    BatchingPoint,
    BatchingSweep,
    format_batching,
    run_batching_sweep,
)
from repro.harness.overload import (
    OverloadPoint,
    OverloadSweep,
    estimate_capacity,
    overload_config,
    run_overload_sweep,
)
from repro.harness.reporting import (
    format_table1,
    format_fig4,
    format_fig5,
    format_acid,
    format_aggregate_overload,
    format_campaign,
    format_overload,
)
from repro.harness.workload import (
    SCENARIOS,
    AggregatePoint,
    AggregateSweep,
    AggregateWorkload,
    make_workload,
    run_aggregate_overload_sweep,
    run_aggregate_point,
)
from repro.harness.sweeprunner import (
    SweepCell,
    derive_cell_seed,
    merged_json,
    register_cell_runner,
    run_cells,
)
from repro.harness.shardbench import (
    ShardBenchResult,
    ShardPoint,
    format_shard_bench,
    run_shard_bench,
    run_shard_scaling_point,
    run_shard_sql_mix,
    shard_bench_config,
)
from repro.harness.membershipbench import (
    MEMBERSHIP_SCENARIOS,
    MembershipScenario,
    analytic_availability,
    format_membership,
    run_markov_scenario,
    run_membership_bench,
    run_replace_scenario,
)
from repro.harness.wan import run_wan_sweep, format_wan, PROFILES
from repro.harness.analysis import summarize, messages_per_request

__all__ = [
    "TABLE1_CONFIGS",
    "FIG5_CONFIGS",
    "ConfigRow",
    "build_config",
    "Measurement",
    "run_null_workload",
    "run_sql_workload",
    "run_table1",
    "run_fig4_size_sweep",
    "run_fig5_sql",
    "run_acid_comparison",
    "run_recovery_experiment",
    "run_packet_loss_experiment",
    "run_fault_campaign",
    "BatchingPoint",
    "BatchingSweep",
    "format_batching",
    "run_batching_sweep",
    "ShardBenchResult",
    "ShardPoint",
    "format_shard_bench",
    "run_shard_bench",
    "run_shard_scaling_point",
    "run_shard_sql_mix",
    "shard_bench_config",
    "OverloadPoint",
    "OverloadSweep",
    "estimate_capacity",
    "overload_config",
    "run_overload_sweep",
    "format_overload",
    "format_aggregate_overload",
    "SCENARIOS",
    "AggregatePoint",
    "AggregateSweep",
    "AggregateWorkload",
    "make_workload",
    "run_aggregate_overload_sweep",
    "run_aggregate_point",
    "SweepCell",
    "derive_cell_seed",
    "merged_json",
    "register_cell_runner",
    "run_cells",
    "format_table1",
    "format_campaign",
    "format_fig4",
    "format_fig5",
    "format_acid",
    "MEMBERSHIP_SCENARIOS",
    "MembershipScenario",
    "analytic_availability",
    "format_membership",
    "run_markov_scenario",
    "run_membership_bench",
    "run_replace_scenario",
    "run_wan_sweep",
    "format_wan",
    "PROFILES",
    "summarize",
    "messages_per_request",
]
