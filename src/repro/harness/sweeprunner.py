"""Multi-process sweep runner: farm independent (scenario, seed) cells.

Campaigns and sweeps are embarrassingly parallel — every cell builds its
own deterministic cluster — yet until this module they ran serially.  A
*cell* is one unit of sweep work (an aggregate overload point, a fault
schedule at one seed, a shard-count measurement) described entirely by
JSON-able parameters, so it can cross a process boundary and its result
can be merged into a ``BENCH_*.json`` document.

Two guarantees the tests pin:

* **Collision-free per-cell seeds.**  Child seeds are derived by hashing
  ``(scenario, base seed, cell index)`` with SHA-256 — never ``seed + i``,
  which collides across scenarios sharing a base seed (scenario A cell 1
  and scenario B cell 0 would run identical RNG streams and masquerade as
  independent measurements).  Cells that carry an explicit ``seed`` (the
  fault campaign's schedule × seed grid, where the seed is part of the
  cell's identity for deterministic re-runs) bypass derivation.
* **Serial ≡ parallel.**  Results are returned in cell order regardless
  of completion order, every cell runs against a fresh deterministic
  simulation, and merged documents are serialized with sorted keys — so
  a parallel run's merged JSON is byte-identical to a serial run of the
  same cells.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.errors import ConfigError


@dataclass
class SweepCell:
    """One unit of sweep work; ``params`` must be picklable and JSON-able."""

    kind: str                      # registered cell-runner name
    scenario: str                  # scenario label, part of seed derivation
    params: dict = field(default_factory=dict)
    seed: Optional[int] = None     # explicit seed; None derives one per cell


def derive_cell_seed(scenario: str, base_seed: int, index: int) -> int:
    """Collision-free child seed for cell ``index`` of ``scenario``.

    SHA-256 over the full identity, truncated to 63 bits — distinct
    (scenario, base_seed, index) triples get distinct streams with
    overwhelming probability, unlike ``base_seed + index`` which collides
    as soon as two scenarios share a base seed.
    """
    material = f"cell|{scenario}|{base_seed}|{index}".encode()
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big") >> 1


# -- cell runners -------------------------------------------------------------------

# name -> callable(params: dict, seed: int) -> JSON-able dict
_RUNNERS: dict[str, Callable[[dict, int], dict]] = {}


def register_cell_runner(
    name: str, fn: Callable[[dict, int], dict], replace: bool = False
) -> None:
    if not replace and name in _RUNNERS and _RUNNERS[name] is not fn:
        raise ConfigError(f"cell runner {name!r} already registered")
    _RUNNERS[name] = fn


def _run_aggregate_overload_cell(params: dict, seed: int) -> dict:
    from repro.harness.workload import run_aggregate_point

    return run_aggregate_point(seed=seed, **params).to_dict()


def _run_fault_schedule_cell(params: dict, seed: int) -> dict:
    """One (schedule, seed) campaign run, reported as plain data."""
    from repro.faults import builtin_schedules
    from repro.faults.campaign import run_schedule

    params = dict(params)
    name = params.pop("schedule")
    by_name = {schedule.name: schedule for schedule in builtin_schedules()}
    if name not in by_name:
        raise ConfigError(f"unknown fault schedule {name!r}")
    result = run_schedule(by_name[name], seed, **params)
    return {
        "schedule": result.schedule,
        "seed": result.seed,
        "violations": [str(v) for v in result.violations],
        "invoked_ops": result.invoked_ops,
        "completed_ops": result.completed_ops,
        "max_view": result.max_view,
        "sim_time_ns": result.sim_time_ns,
        "artifacts": list(result.artifacts),
    }


def _run_shard_scaling_cell(params: dict, seed: int) -> dict:
    from repro.harness.shardbench import run_shard_scaling_point

    point = run_shard_scaling_point(seed=seed, **params)
    return {
        "shards": point.shards,
        "routers": point.routers,
        "tps": point.tps,
        "p50_latency_ns": point.p50_latency_ns,
        "p99_latency_ns": point.p99_latency_ns,
        "completed": point.completed,
    }


def _run_shard_sql_mix_cell(params: dict, seed: int) -> dict:
    from repro.harness.shardbench import run_shard_sql_mix

    return run_shard_sql_mix(seed=seed, **params)


_BUILTINS: dict[str, Callable[[dict, int], dict]] = {
    "aggregate-overload": _run_aggregate_overload_cell,
    "fault-schedule": _run_fault_schedule_cell,
    "shard-scaling": _run_shard_scaling_cell,
    "shard-sql-mix": _run_shard_sql_mix_cell,
}


def cell_runner(name: str) -> Callable[[dict, int], dict]:
    fn = _RUNNERS.get(name) or _BUILTINS.get(name)
    if fn is None:
        raise ConfigError(
            f"unknown cell kind {name!r}; registered: "
            f"{sorted(set(_RUNNERS) | set(_BUILTINS))}"
        )
    return fn


# -- running ------------------------------------------------------------------------


def _run_cell_task(task: tuple) -> dict:
    """Top-level so it pickles under any multiprocessing start method."""
    kind, params, seed = task
    return cell_runner(kind)(dict(params), seed)


def cell_seeds(cells: list[SweepCell], base_seed: int) -> list[int]:
    """The seed each cell will run at: explicit if set, derived otherwise."""
    return [
        cell.seed if cell.seed is not None
        else derive_cell_seed(cell.scenario, base_seed, index)
        for index, cell in enumerate(cells)
    ]


def run_cells(
    cells: list[SweepCell], base_seed: int = 3, workers: int = 1
) -> list[dict]:
    """Run every cell; results in cell order regardless of ``workers``.

    ``workers <= 1`` runs in-process (no subprocess cost, same results);
    more farms cells across a process pool.  Registered *custom* runners
    exist only in this process, so parallel runs of custom kinds rely on
    the fork start method inheriting them — the built-in kinds resolve in
    any child.
    """
    tasks = [
        (cell.kind, cell.params, seed)
        for cell, seed in zip(cells, cell_seeds(cells, base_seed))
    ]
    for kind, _params, _seed in tasks:
        cell_runner(kind)  # fail fast on unknown kinds, before forking
    if workers <= 1 or len(tasks) <= 1:
        return [_run_cell_task(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        return list(pool.map(_run_cell_task, tasks))


def merged_json(document: dict) -> str:
    """Canonical serialization for merged BENCH documents.

    Sorted keys and fixed separators make the bytes a pure function of
    the data, so serial and parallel sweeps of the same cells can be
    compared with ``==`` on the file contents.
    """
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
