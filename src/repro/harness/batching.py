"""Batching sweep: throughput/latency over (max_batch, congestion_window).

The paper's batching optimization (section 2.1) pools requests that
arrive while the congestion window is full and ships them in one
pre-prepare.  Two knobs interact:

* ``max_batch`` — how many requests one pre-prepare may carry;
* ``congestion_window`` — how many sequence numbers may be assigned but
  not yet executed before the primary postpones further pre-prepares.

A window of 1 serializes the pipeline (one batch in flight; everything
else pools, which maximizes batch fill but leaves the replicas idle
between batches); very large windows stop pooling and degenerate into
one pre-prepare per request.  The sweep measures the whole grid with a
closed-loop client population and reports the knee.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.harness.measure import Measurement, run_null_workload
from repro.pbft.config import PbftConfig


@dataclass
class BatchingPoint:
    """One (max_batch, congestion_window) measurement."""

    max_batch: int
    congestion_window: int
    tps: float
    p50_latency_ns: int
    p99_latency_ns: int

    def as_json(self) -> dict:
        return {
            "max_batch": self.max_batch,
            "congestion_window": self.congestion_window,
            "sim_tps": round(self.tps, 1),
            "sim_p50_latency_us": round(self.p50_latency_ns / 1000, 1),
            "sim_p99_latency_us": round(self.p99_latency_ns / 1000, 1),
        }


@dataclass
class BatchingSweep:
    """The full grid plus the knee recommendation."""

    points: list[BatchingPoint]
    num_clients: int
    payload_size: int
    wall_s: float = 0.0

    def best(self) -> BatchingPoint:
        return max(self.points, key=lambda p: p.tps)

    def knee(self, tolerance: float = 0.05) -> BatchingPoint:
        """The smallest window (then smallest batch) within ``tolerance``
        of the best throughput — the cheapest configuration that buys
        almost all of the win."""
        floor = self.best().tps * (1 - tolerance)
        eligible = [p for p in self.points if p.tps >= floor]
        return min(
            eligible, key=lambda p: (p.congestion_window, p.max_batch)
        )


def run_batching_sweep(
    max_batches: tuple[int, ...] = (1, 8, 16, 32, 64),
    windows: tuple[int, ...] = (1, 2, 4, 8),
    num_clients: int = 24,
    payload_size: int = 1024,
    warmup_s: float = 0.2,
    measure_s: float = 0.5,
    seed: int = 3,
) -> BatchingSweep:
    """Measure the whole (max_batch, congestion_window) grid."""
    start = time.time()
    points: list[BatchingPoint] = []
    for max_batch in max_batches:
        for window in windows:
            config = PbftConfig().with_options(
                num_clients=num_clients,
                max_batch=max_batch,
                congestion_window=window,
            )
            m = run_null_workload(
                config,
                name=f"batch{max_batch}-cwnd{window}",
                payload_size=payload_size,
                warmup_s=warmup_s,
                measure_s=measure_s,
                seed=seed,
            )
            points.append(
                BatchingPoint(
                    max_batch=max_batch,
                    congestion_window=window,
                    tps=m.tps,
                    p50_latency_ns=m.p50_latency_ns,
                    p99_latency_ns=m.p99_latency_ns,
                )
            )
    return BatchingSweep(
        points=points,
        num_clients=num_clients,
        payload_size=payload_size,
        wall_s=time.time() - start,
    )


def format_batching(sweep: BatchingSweep) -> str:
    header = (
        f"{'max_batch':>9s} {'cwnd':>5s} {'Goodput':>10s} {'p50':>9s} {'p99':>9s}"
    )
    lines = [
        f"batching sweep ({sweep.num_clients} clients, "
        f"{sweep.payload_size}B payload)",
        header,
        "-" * len(header),
    ]
    for point in sweep.points:
        lines.append(
            f"{point.max_batch:9d} {point.congestion_window:5d} "
            f"{point.tps:10.0f} {point.p50_latency_ns / 1000:8.1f}u "
            f"{point.p99_latency_ns / 1000:8.1f}u"
        )
    knee = sweep.knee()
    best = sweep.best()
    lines.append(
        f"best {best.tps:.0f} op/s at (batch={best.max_batch}, "
        f"cwnd={best.congestion_window}); knee at (batch={knee.max_batch}, "
        f"cwnd={knee.congestion_window}) with {knee.tps:.0f} op/s"
    )
    return "\n".join(lines)
