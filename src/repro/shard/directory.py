"""The shard directory: a versioned map from keys and tables to groups.

Placement must be a pure function of the directory contents — every
router and every replica computing a placement must agree, and the fault
campaign replays runs bit-for-bit — so the directory never consults
clocks, load, or randomness:

* **keys** hash onto a 32-bit position (first 4 bytes of the MD5 digest,
  the same digest the kvstore already computes per key); the position
  either falls inside an explicitly *moved range* — a half-open
  ``[lo, hi)`` interval rebalancing carved out and handed to one shard —
  or defaults to **range partitioning**: the hash space is split into
  ``num_shards`` equal contiguous stripes (``position * num_shards >>
  32``).  Contiguous default stripes are what make live rebalancing
  possible at all: any ``[lo, hi)`` sub-range of one stripe has a single
  current owner, so it can be frozen there and handed to another group
  as one unit (a modular default would interleave adjacent positions
  across every shard);
* **tables** are placed by an explicit assignment map (SQL tables are
  few and heavy; hashing them would make co-location accidents
  permanent).  Unknown tables are a routing *error*, not a hash
  fallback — a typo must fail loudly rather than silently creating a
  one-table shard.

Every reconfiguration — a table reassignment or a range move — bumps
``version`` and appends a snapshot to the **version history**, so any
past placement can be re-derived (``placement_at``) and two parties can
compare versions to discover that a cached route went stale.  Routers
holding a stale copy heal through the replicas' ``WRONG_SHARD`` redirect
replies, which carry the authoritative ``(unit, shard, version)`` fact:
``apply_move`` / ``apply_table`` install such a learned fact if and only
if it is newer than what the copy already holds.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.common.errors import ShardError
from repro.crypto.digests import md5_digest

# The hash space keys are placed in: 32-bit positions from the first four
# digest bytes.  Ranges are half-open [lo, hi) with 0 <= lo < hi <= HASH_SPACE.
HASH_SPACE = 1 << 32


def key_position(key: bytes) -> int:
    """A key's position in the 32-bit hash space (pure, shared by every
    router, replica, and rebalancer)."""
    return int.from_bytes(md5_digest(key)[:4], "big")


class PlacementView:
    """A frozen placement at one directory version (pure lookups only)."""

    __slots__ = ("num_shards", "version", "_tables", "_ranges")

    def __init__(self, num_shards, version, tables, ranges):
        self.num_shards = num_shards
        self.version = version
        self._tables = tables
        self._ranges = ranges  # sorted, disjoint (lo, hi, shard) triples

    def shard_of_key(self, key: bytes) -> int:
        return self.shard_of_position(key_position(key))

    def shard_of_position(self, position: int) -> int:
        index = bisect_right(self._ranges, (position, HASH_SPACE + 1)) - 1
        if index >= 0:
            lo, hi, shard = self._ranges[index]
            if lo <= position < hi:
                return shard
        return (position * self.num_shards) >> 32

    def shard_of_table(self, table: str) -> int:
        shard = self._tables.get(table.lower())
        if shard is None:
            raise ShardError(f"table {table!r} is not in the shard directory")
        return shard


class ShardDirectory:
    """Deterministic key→shard / table→shard placement for one deployment."""

    def __init__(
        self,
        num_shards: int,
        table_map: dict[str, int] | None = None,
    ) -> None:
        if num_shards < 1:
            raise ShardError("a deployment needs at least one shard")
        self.num_shards = num_shards
        self.version = 0
        self._tables: dict[str, int] = {}
        # Moved ranges: sorted, pairwise-disjoint (lo, hi, shard) triples.
        # Positions outside every range fall back to position % num_shards.
        self._ranges: list[tuple[int, int, int]] = []
        for table, shard in (table_map or {}).items():
            self._check_shard(shard)
            self._tables[table.lower()] = shard
        # history[i] is the placement as of the i'th recorded version;
        # versions learned out of band (apply_move on a stale copy) may
        # skip numbers, so snapshots carry their version explicitly.
        self._history: list[PlacementView] = [self._snapshot()]

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise ShardError(
                f"shard {shard} out of range (deployment has {self.num_shards})"
            )

    def _snapshot(self) -> PlacementView:
        return PlacementView(
            self.num_shards, self.version, dict(self._tables),
            tuple(self._ranges),
        )

    def _bump(self, to_version: int | None = None) -> None:
        if to_version is None:
            to_version = self.version + 1
        if to_version <= self.version:
            raise ShardError(
                f"directory version must advance ({self.version} -> {to_version})"
            )
        self.version = to_version
        self._history.append(self._snapshot())

    # -- placement -----------------------------------------------------------

    def shard_of_key(self, key: bytes) -> int:
        """Home shard of a kv key: moved range if one covers its position,
        else pure hash placement."""
        return self._history[-1].shard_of_position(key_position(key))

    def shard_of_position(self, position: int) -> int:
        return self._history[-1].shard_of_position(position)

    def shard_of_table(self, table: str) -> int:
        """Home shard of a SQL table; unknown tables are routing errors."""
        shard = self._tables.get(table.lower())
        if shard is None:
            raise ShardError(f"table {table!r} is not in the shard directory")
        return shard

    def knows_table(self, table: str) -> bool:
        return table.lower() in self._tables

    def tables(self) -> dict[str, int]:
        return dict(self._tables)

    def ranges(self) -> tuple[tuple[int, int, int], ...]:
        """The moved ranges, sorted and disjoint."""
        return tuple(self._ranges)

    def default_stripe(self, shard: int) -> tuple[int, int]:
        """The contiguous ``[lo, hi)`` stripe ``shard`` owns by default
        (before any moves) — the pool rebalancing carves sub-ranges from."""
        self._check_shard(shard)
        lo = (shard * HASH_SPACE + self.num_shards - 1) // self.num_shards
        hi = ((shard + 1) * HASH_SPACE + self.num_shards - 1) // self.num_shards
        return lo, hi

    def owner_of_range(self, lo: int, hi: int) -> int:
        """The single shard currently owning all of ``[lo, hi)``.

        Raises if the range straddles an ownership boundary — such a
        range has no one source group and cannot migrate as one unit.
        """
        if not 0 <= lo < hi <= HASH_SPACE:
            raise ShardError(
                f"bad range [{lo}, {hi}) — need 0 <= lo < hi <= 2^32"
            )
        view = self._history[-1]
        points = {lo}
        for shard in range(1, self.num_shards):
            boundary = (shard * HASH_SPACE + self.num_shards - 1) // self.num_shards
            if lo < boundary < hi:
                points.add(boundary)
        for range_lo, range_hi, _shard in self._ranges:
            if lo < range_lo < hi:
                points.add(range_lo)
            if lo < range_hi < hi:
                points.add(range_hi)
        owners = {view.shard_of_position(p) for p in points}
        if len(owners) != 1:
            raise ShardError(
                f"range [{lo}, {hi}) spans shards {sorted(owners)}; "
                "migrate each owner's part separately"
            )
        return owners.pop()

    def placement_at(self, version: int) -> PlacementView:
        """The placement as of ``version`` (the latest snapshot <= it)."""
        if version < 0 or version > self.version:
            raise ShardError(
                f"version {version} outside recorded history 0..{self.version}"
            )
        view = self._history[0]
        for snapshot in self._history:
            if snapshot.version > version:
                break
            view = snapshot
        return view

    def clone(self) -> "ShardDirectory":
        """An independent copy (a router's private view of the placement)."""
        copy = ShardDirectory(self.num_shards)
        copy._tables = dict(self._tables)
        copy._ranges = list(self._ranges)
        copy.version = self.version
        copy._history = [copy._snapshot()]
        return copy

    # -- reconfiguration -----------------------------------------------------

    def assign_table(self, table: str, shard: int) -> None:
        """(Re)place a table; bumps ``version`` so cached routes go stale."""
        self._check_shard(shard)
        self._tables[table.lower()] = shard
        self._bump()

    def move_range(self, lo: int, hi: int, shard: int) -> None:
        """Hand the key range ``[lo, hi)`` to ``shard``; bumps ``version``.

        Overlapping parts of previously moved ranges are carved away, so
        the range set stays disjoint and the newest move wins — exactly
        one shard owns any position at any version.
        """
        self._check_shard(shard)
        self._install_range(lo, hi, shard)
        self._bump()

    def _install_range(self, lo: int, hi: int, shard: int) -> None:
        if not 0 <= lo < hi <= HASH_SPACE:
            raise ShardError(
                f"bad range [{lo}, {hi}) — need 0 <= lo < hi <= 2^32"
            )
        kept: list[tuple[int, int, int]] = []
        for old_lo, old_hi, old_shard in self._ranges:
            if old_hi <= lo or old_lo >= hi:
                kept.append((old_lo, old_hi, old_shard))
                continue
            if old_lo < lo:
                kept.append((old_lo, lo, old_shard))
            if old_hi > hi:
                kept.append((hi, old_hi, old_shard))
        kept.append((lo, hi, shard))
        kept.sort()
        merged: list[tuple[int, int, int]] = []
        for entry in kept:
            if merged and merged[-1][2] == entry[2] and merged[-1][1] == entry[0]:
                merged[-1] = (merged[-1][0], entry[1], entry[2])
            else:
                merged.append(entry)
        self._ranges = merged

    # -- learned facts (the WRONG_SHARD healing path) -------------------------

    def apply_move(self, lo: int, hi: int, shard: int, version: int) -> bool:
        """Install a range move learned from a redirect, if it is news.

        Returns True when applied.  A fact at or below the local version
        is stale (this copy already reflects it or something newer) and
        is ignored — redirects can arrive out of order.
        """
        if version <= self.version:
            return False
        self._check_shard(shard)
        self._install_range(lo, hi, shard)
        self._bump(to_version=version)
        return True

    def apply_table(self, table: str, shard: int, version: int) -> bool:
        """Install a table reassignment learned from a redirect, if newer."""
        if version <= self.version:
            return False
        self._check_shard(shard)
        self._tables[table.lower()] = shard
        self._bump(to_version=version)
        return True
