"""The shard directory: a versioned map from keys and tables to groups.

Placement must be a pure function of the directory contents — every
router and every replica computing a placement must agree, and the fault
campaign replays runs bit-for-bit — so the directory never consults
clocks, load, or randomness:

* **keys** hash onto shards (first 4 bytes of the MD5 digest, the same
  digest the kvstore already computes per key), so any byte string has a
  well-defined home without per-key state;
* **tables** are placed by an explicit assignment map (SQL tables are
  few and heavy; hashing them would make co-location accidents
  permanent).  Unknown tables are a routing *error*, not a hash
  fallback — a typo must fail loudly rather than silently creating a
  one-table shard.

Reassigning a table bumps ``version``; routers compare versions to
discover that a cached placement went stale (the "re-route after config
change" path).
"""

from __future__ import annotations

from repro.common.errors import ShardError
from repro.crypto.digests import md5_digest


class ShardDirectory:
    """Deterministic key→shard / table→shard placement for one deployment."""

    def __init__(
        self,
        num_shards: int,
        table_map: dict[str, int] | None = None,
    ) -> None:
        if num_shards < 1:
            raise ShardError("a deployment needs at least one shard")
        self.num_shards = num_shards
        self.version = 0
        self._tables: dict[str, int] = {}
        for table, shard in (table_map or {}).items():
            self._check_shard(shard)
            self._tables[table.lower()] = shard

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise ShardError(
                f"shard {shard} out of range (deployment has {self.num_shards})"
            )

    # -- placement -----------------------------------------------------------

    def shard_of_key(self, key: bytes) -> int:
        """Home shard of a kv key: pure hash placement."""
        return int.from_bytes(md5_digest(key)[:4], "big") % self.num_shards

    def shard_of_table(self, table: str) -> int:
        """Home shard of a SQL table; unknown tables are routing errors."""
        shard = self._tables.get(table.lower())
        if shard is None:
            raise ShardError(f"table {table!r} is not in the shard directory")
        return shard

    def knows_table(self, table: str) -> bool:
        return table.lower() in self._tables

    def tables(self) -> dict[str, int]:
        return dict(self._tables)

    # -- reconfiguration -----------------------------------------------------

    def assign_table(self, table: str, shard: int) -> None:
        """(Re)place a table; bumps ``version`` so cached routes go stale."""
        self._check_shard(shard)
        self._tables[table.lower()] = shard
        self.version += 1
