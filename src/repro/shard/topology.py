"""Sharded deployment builder: S PBFT groups on one simulated network.

Every group is built by the unchanged :func:`repro.pbft.cluster.build_cluster`
— the sharding layer composes groups, it does not fork the protocol.  The
groups share one simulator, one network fabric, and one observability
registry; ``config.group_prefix`` ("s0-", "s1-", ...) keeps their host
names and metric keys disjoint.  Routers live on their own hosts and hold
one registered PBFT client per group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.apps.kvstore import KvApplication, keys_of_op as kv_keys_of_op
from repro.common.ids import make_client_id
from repro.net.fabric import NetworkConfig, NetworkFabric
from repro.obs import Observability
from repro.pbft.client import PbftClient
from repro.pbft.cluster import Cluster, build_cluster
from repro.pbft.config import PbftConfig
from repro.pbft.node import CLIENT_PORT
from repro.shard.directory import ShardDirectory
from repro.shard.router import KvShardCodec, ShardRouter
from repro.shard.txapp import ShardTxApplication
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator

# Router client ids start here (above the workload clients' 1000+index
# range is not needed — ids only need uniqueness within one group, and
# the offset keeps them visually distinct in metrics and traces).
_ROUTER_CLIENT_BASE = 700


@dataclass
class ShardedCluster:
    """A built sharded deployment: S groups plus the routing tier."""

    sim: Simulator
    fabric: NetworkFabric
    obs: Observability
    directory: ShardDirectory
    groups: list[Cluster]
    routers: list[ShardRouter]
    codec: object
    reserve_router: ShardRouter  # used by reconcile(), not by workloads
    rng: RngStreams = field(default_factory=lambda: RngStreams(1))
    # Lazily creates additional routers (same registration path as the
    # build-time ones); index advances monotonically so client ids and
    # ports never collide.
    router_factory: Optional[Callable[[int], ShardRouter]] = None
    next_router_index: int = 0

    @property
    def num_shards(self) -> int:
        return len(self.groups)

    def add_router(self, private_directory: bool = False) -> ShardRouter:
        """Create one more router after build time (not added to
        ``routers``, so existing workloads and RNG draws are untouched).

        With ``private_directory`` the new router routes by its own
        clone of the authoritative directory as of now — the stale-copy
        starting point the WRONG_SHARD healing path is tested against.
        """
        if self.router_factory is None:
            raise RuntimeError("this deployment was built without a router factory")
        router = self.router_factory(self.next_router_index)
        self.next_router_index += 1
        if private_directory:
            private = self.directory.clone()
            router.directory = private
            router.codec = type(self.codec)(private)
        return router

    def make_rebalancer(self, **kwargs) -> "ShardRebalancer":
        """A live-migration driver with its own per-group client set."""
        from repro.shard.rebalance import ShardRebalancer

        donor = self.add_router()
        return ShardRebalancer(
            sim=self.sim,
            directory=self.directory,
            clients=donor.clients,
            groups=self.groups,
            obs=self.obs,
            **kwargs,
        )

    def run_for(self, duration_ns: int) -> None:
        self.sim.run_for(duration_ns)

    def tx_apps(self, shard: int) -> list[ShardTxApplication]:
        return [app for app in self.groups[shard].apps
                if isinstance(app, ShardTxApplication)]

    def total_completed(self) -> int:
        """Completed client-visible operations across the deployment."""
        routed = sum(
            r.completed_singles + r.committed_txns + r.aborted_txns
            for r in self.routers
        )
        direct = sum(g.total_completed() for g in self.groups)
        return routed + direct

    def stop(self) -> None:
        for router in self.routers:
            router.stop()
        self.reserve_router.stop()
        for group in self.groups:
            group.stop_clients()

    def collect_metrics(self) -> None:
        self.sim.collect_metrics(self.obs.registry)
        self.fabric.collect_metrics(self.obs.registry)

    # -- reconciliation -------------------------------------------------------

    def reconcile(self, max_wait_ns: int = 10_000_000_000) -> int:
        """Finish every stranded transaction: resolve, then deliver.

        Walks each shard's prepared table (replica 0's view — the tables
        are replicated state), RESOLVEs each leftover transaction at its
        coordinator shard, and delivers the resolved outcome to every
        participant.  Returns the number of transactions reconciled.
        This is what a recovery daemon would run continuously; the
        harness runs it before checking cross-shard atomicity so
        "prepared forever" cannot masquerade as a passing run.
        """
        from repro.shard.txapp import (
            DECISION_COMMIT,
            decode_tx_reply,
            encode_abort,
            encode_commit,
            encode_forget,
            encode_resolve,
            is_tx_reply,
        )

        router = self.reserve_router
        reconciled = 0

        def drive(shard: int, op: bytes) -> Optional[bytes]:
            client = router.clients[shard]
            if client.busy:
                client.cancel_pending()
            box: list[bytes] = []
            client.invoke(op, callback=lambda res, _lat: box.append(res))
            deadline = self.sim.now + max_wait_ns
            while not box and self.sim.now < deadline:
                self.sim.run_for(1_000_000)
            if not box:
                client.cancel_pending()
                return None
            return box[0]

        for shard in range(self.num_shards):
            apps = self.tx_apps(shard)
            if not apps:
                continue
            for txid in apps[0].prepared_txids():
                entry = apps[0].prepared_entry(txid)
                if entry is None:
                    continue
                resolved = drive(entry.coordinator, encode_resolve(txid))
                if resolved is None or not is_tx_reply(resolved):
                    continue
                decision = decode_tx_reply(resolved).decision
                outcome = (
                    encode_commit(txid)
                    if decision == DECISION_COMMIT
                    else encode_abort(txid)
                )
                delivered = all(
                    drive(participant, outcome) is not None
                    for participant in entry.participants
                )
                if delivered:
                    # Every participant acked the outcome, so the
                    # decision record can be garbage-collected.
                    drive(entry.coordinator, encode_forget(txid))
                reconciled += 1
        return reconciled


def build_sharded_cluster(
    num_shards: int,
    config: Optional[PbftConfig] = None,
    seed: int = 1,
    inner_app_factory: Optional[Callable[[int], object]] = None,
    codec_factory: Optional[Callable[[ShardDirectory], object]] = None,
    keys_of: Optional[Callable[[bytes], tuple]] = None,
    num_routers: int = 8,
    router_hosts: int = 4,
    tx_pages: int = 8,
    table_map: Optional[dict[str, int]] = None,
    real_crypto: bool = True,
    trace: bool = False,
    net_config: Optional[NetworkConfig] = None,
    directory: Optional[ShardDirectory] = None,
    obs: Optional[Observability] = None,
    **router_kwargs,
) -> ShardedCluster:
    """Build S groups plus routers on one fabric.

    ``inner_app_factory(shard)`` supplies each group's application (default
    kvstore); it is wrapped in :class:`ShardTxApplication` automatically.
    ``config.num_clients`` applies per group (default 0 here: workload is
    expected to flow through the routers).
    """
    base = config or PbftConfig().with_options(num_clients=0)
    directory = directory or ShardDirectory(num_shards, table_map=table_map)
    if directory.num_shards != num_shards:
        raise ValueError("directory shard count does not match the deployment")
    keys_of = keys_of or kv_keys_of_op
    inner_app_factory = inner_app_factory or (lambda shard: KvApplication())
    codec_factory = codec_factory or KvShardCodec

    sim = Simulator()
    master_rng = RngStreams(seed)
    obs = obs if obs is not None else Observability()
    obs.attach_clock(lambda: sim.now)
    fabric = NetworkFabric(
        sim, master_rng, config=net_config, trace_enabled=trace, tracer=obs.tracer
    )

    groups: list[Cluster] = []
    for shard in range(num_shards):
        group_config = base.with_options(group_prefix=f"s{shard}-")
        group = build_cluster(
            config=group_config,
            app_factory=lambda s=shard: ShardTxApplication(
                inner_app_factory(s), keys_of, shard_id=s, tx_pages=tx_pages
            ),
            real_crypto=real_crypto,
            trace=trace,
            sim=sim,
            rng=RngStreams(seed * 1000 + 7 * shard + 1),
            fabric=fabric,
            obs=obs,
        )
        groups.append(group)

    codec = codec_factory(directory)
    hosts = [
        fabric.add_host(f"routerhost{h}") for h in range(max(1, router_hosts))
    ]
    session_rng = master_rng.stream("router-sessions")

    def make_router(index: int) -> ShardRouter:
        host = hosts[index % len(hosts)]
        clients: dict[int, PbftClient] = {}
        client_id = make_client_id(_ROUTER_CLIENT_BASE + index)
        for shard, group in enumerate(groups):
            group.keys.new_client_keypair(client_id)
            client = PbftClient(
                client_id=client_id,
                config=group.config,
                host=host,
                port=CLIENT_PORT + _ROUTER_CLIENT_BASE + index * num_shards + shard,
                keys=group.keys,
                real_crypto=real_crypto,
                obs=obs,
            )
            session = client.generate_session_keys(session_rng)
            for replica in group.replicas:
                replica.register_client(
                    client_id, client.socket.address, session[replica.node_id]
                )
            clients[shard] = client
        return ShardRouter(
            router_id=index,
            directory=directory,
            clients=clients,
            sim=sim,
            codec=codec,
            obs=obs,
            **router_kwargs,
        )

    routers = [make_router(i) for i in range(num_routers)]
    reserve = make_router(num_routers)  # reconciliation daemon's identity

    return ShardedCluster(
        sim=sim,
        fabric=fabric,
        obs=obs,
        directory=directory,
        groups=groups,
        routers=routers,
        codec=codec,
        reserve_router=reserve,
        rng=master_rng,
        router_factory=make_router,
        next_router_index=num_routers + 1,
    )
