"""The shard router: placement-aware client driving one PbftClient per group.

A router is the client-side half of the sharding layer.  It owns one
:class:`~repro.pbft.client.PbftClient` *per shard group* (each registered
with that group like any other client), consults the
:class:`~repro.shard.directory.ShardDirectory` through an app-specific
codec, and:

* routes **single-shard** operations directly to the owning group — no
  extra round trips, the scaling fast path;
* drives **cross-shard transactions** through the deterministic 2PC of
  :mod:`repro.shard.txapp`: PREPARE at every participant, a durable
  DECIDE ordered in the coordinator shard's log, then COMMIT/ABORT
  everywhere.  The decision is recorded *before* any commit is sent, so
  a router crash after the decision can never yield a mixed outcome;
* runs **recovery** when it collides with a stranded transaction: a
  LOCKED reply names the holder and its coordinator shard, so any router
  can RESOLVE the holder there (presumed abort, first writer wins) and
  deliver the resolved outcome to the shard it is blocked on.

Timeout behaviour: a participant that does not answer PREPARE within
``prepare_timeout_ns`` causes an abort decision — a stalled or
partitioned shard delays only transactions that touch it, it cannot
wedge the others.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.apps.kvstore import keys_of_op as kv_keys_of_op
from repro.apps.sqlapp import decode_sql_op, tables_of_sql
from repro.common.errors import ShardError
from repro.common.units import MILLISECOND
from repro.crypto.digests import md5_digest
from repro.shard.directory import ShardDirectory
from repro.shard.txapp import (
    DECISION_ABORT,
    DECISION_COMMIT,
    ST_DECISION,
    ST_FROZEN,
    ST_LOCKED,
    ST_OK,
    ST_TOMBSTONE,
    ST_WRONG_SHARD,
    decode_tx_reply,
    encode_abort,
    encode_commit,
    encode_decide,
    encode_forget,
    encode_prepare,
    encode_resolve,
    is_tx_reply,
)


class KvShardCodec:
    """Placement and lock units for the kvstore: the keys themselves."""

    def __init__(self, directory: ShardDirectory) -> None:
        self.directory = directory

    def keys_of(self, op: bytes) -> tuple[bytes, ...]:
        return kv_keys_of_op(op)

    def shards_of(self, op: bytes) -> tuple[int, ...]:
        return tuple(sorted(
            {self.directory.shard_of_key(k) for k in kv_keys_of_op(op)}
        ))


class SqlShardCodec:
    """Placement by table; lock units are whole tables (``table:<name>``).

    Table placement is memoized against the directory version so routing
    stays O(1) per statement yet re-routes immediately after a
    reassignment bumps the version.
    """

    def __init__(self, directory: ShardDirectory) -> None:
        self.directory = directory
        self._memo: dict[str, int] = {}
        self._memo_version = directory.version

    def _shard_of_table(self, table: str) -> int:
        if self.directory.version != self._memo_version:
            self._memo.clear()
            self._memo_version = self.directory.version
        shard = self._memo.get(table)
        if shard is None:
            shard = self._memo[table] = self.directory.shard_of_table(table)
        return shard

    def _tables(self, op: bytes) -> tuple[str, ...]:
        sql, _params = decode_sql_op(op)
        return tables_of_sql(sql)

    def keys_of(self, op: bytes) -> tuple[bytes, ...]:
        return tuple(f"table:{t}".encode() for t in self._tables(op))

    def shards_of(self, op: bytes) -> tuple[int, ...]:
        return tuple(sorted({self._shard_of_table(t) for t in self._tables(op)}))


class TxnResult:
    """Outcome of one routed operation or transaction."""

    __slots__ = ("txid", "committed", "replies", "reason")

    def __init__(self, txid: bytes, committed: bool, replies=(), reason: str = ""):
        self.txid = txid
        self.committed = committed
        self.replies = replies
        self.reason = reason


class _Txn:
    """In-flight 2PC bookkeeping for one transaction."""

    __slots__ = ("txid", "per_shard_ops", "per_shard_keys", "participants",
                 "coordinator", "votes", "timer", "decision", "outcome_acks",
                 "replies", "callback", "started_at", "reason", "stranded",
                 "forgettable", "forgotten")

    def __init__(self, txid, per_shard_ops, per_shard_keys, callback, now):
        self.txid = txid
        self.per_shard_ops = per_shard_ops
        self.per_shard_keys = per_shard_keys
        self.participants = tuple(sorted(per_shard_ops))
        self.coordinator = self.participants[0]
        self.votes: dict[int, bool] = {}
        self.timer = None
        self.decision: Optional[int] = None
        self.outcome_acks: set[int] = set()
        self.replies: dict[int, tuple] = {}
        self.callback = callback
        self.started_at = now
        self.reason = ""
        # (holder txid, holder coordinator, shard) of a transaction we
        # collided with: recovered after our own abort completes.
        self.stranded: Optional[tuple[bytes, int, int]] = None
        # End-of-transaction bookkeeping (presumed-abort GC): the
        # decision record may be FORGOTTEN at the coordinator only once
        # every participant genuinely acked the outcome.
        self.forgettable = True
        self.forgotten = False


class ShardRouter:
    """One logical client of the sharded deployment.

    Routers are closed-loop: one operation or transaction in flight at a
    time (mirroring the PBFT client contract each underlying client
    already enforces per group).
    """

    def __init__(
        self,
        router_id: int,
        directory: ShardDirectory,
        clients: dict[int, object],  # shard -> PbftClient
        sim,
        codec,
        obs=None,
        prepare_timeout_ns: int = 400 * MILLISECOND,
        outcome_retry_limit: int = 3,
        locked_retry_limit: int = 4,
        locked_backoff_ns: int = 10 * MILLISECOND,
        redirect_retry_limit: int = 3,
        frozen_retry_limit: int = 10,
        frozen_backoff_ns: int = 20 * MILLISECOND,
    ) -> None:
        self.router_id = router_id
        self.directory = directory
        self.clients = clients
        self.sim = sim
        self.codec = codec
        self.obs = obs
        self.prepare_timeout_ns = prepare_timeout_ns
        self.outcome_retry_limit = outcome_retry_limit
        self.locked_retry_limit = locked_retry_limit
        self.locked_backoff_ns = locked_backoff_ns
        # Rebalancing resilience: a WRONG_SHARD redirect re-routes after
        # installing the learned placement fact (version-compared, and
        # vouched for by f+1 matching replica replies — a single lying
        # replica can never form the quorum the underlying PBFT client
        # requires, so a Byzantine redirect cannot plant a false route);
        # an ST_FROZEN refusal backs off and retries while the unit is
        # mid-migration.
        self.redirect_retry_limit = redirect_retry_limit
        self.frozen_retry_limit = frozen_retry_limit
        self.frozen_backoff_ns = frozen_backoff_ns
        self._txn_seq = 0
        self._active: Optional[_Txn] = None
        self._single_active = False
        self.crashed = False
        # Testing hook: "after_prepare" / "after_decide" crash the router
        # at that point of its *next* transaction, stranding it for other
        # routers' recovery (the coordinator-crash abort paths).
        self.crash_point: Optional[str] = None
        self.completed_singles = 0
        self.committed_txns = 0
        self.aborted_txns = 0
        if obs is not None:
            self.stats = obs.registry.view(f"router{router_id}.")
            self.tracer = obs.tracer
        else:
            from repro.obs import Observability

            self.stats = Observability().registry.view(f"router{router_id}.")
            self.tracer = None
        self._track = f"router{router_id}"
        # When a campaign sets this to a list, every completed underlying
        # PBFT request is recorded as (shard, client_id, req_id) — the
        # committed-loss invariant's evidence of client-observed commits.
        self.completion_log: Optional[list[tuple[int, int, int]]] = None

    # -- helpers --------------------------------------------------------------

    def _client_invoke(self, shard: int, op: bytes, callback, readonly=False):
        """Invoke on a group client, recording the completion if asked."""
        client = self.clients[shard]
        holder = {}

        def wrapped(result: bytes, latency: int) -> None:
            if self.completion_log is not None and "req" in holder:
                self.completion_log.append(
                    (shard, client.node_id, holder["req"].req_id)
                )
            callback(result, latency)

        holder["req"] = client.invoke(op, readonly=readonly, callback=wrapped)
        return holder["req"]

    @property
    def busy(self) -> bool:
        return self._active is not None or self._single_active

    def _next_txid(self) -> bytes:
        self._txn_seq += 1
        return md5_digest(
            self.router_id.to_bytes(8, "big") + self._txn_seq.to_bytes(8, "big")
        )

    def _mark(self, phase: str, txn: _Txn, shard: Optional[int] = None) -> None:
        if self.tracer is not None and self.tracer.enabled:
            args = {"txid": txn.txid.hex()[:8], "shards": list(txn.participants)}
            if shard is not None:
                args["shard"] = shard
            self.tracer.event(self._track, f"txn.{phase}", cat="shard", args=args)

    def _crash(self) -> None:
        """Stop cold: cancel client timers, fire no callbacks."""
        self.crashed = True
        self._active = None
        self._single_active = False
        for client in self.clients.values():
            client.cancel_pending()

    def stop(self) -> None:
        self._crash()
        for client in self.clients.values():
            client.stop()

    # -- single-shard path ----------------------------------------------------

    def invoke(
        self,
        op: bytes,
        callback: Optional[Callable[[TxnResult], None]] = None,
        readonly: bool = False,
    ) -> None:
        """Route one single-shard operation directly to its owning group."""
        if self.busy or self.crashed:
            raise ShardError(f"router {self.router_id} is busy")
        shards = self.codec.shards_of(op)
        if len(shards) != 1:
            raise ShardError(
                f"operation touches shards {shards}; use invoke_txn for "
                "cross-shard work"
            )
        self._single_active = True
        self._invoke_single(op, shards[0], callback, readonly, attempt=0)

    def _invoke_single(self, op, shard, callback, readonly, attempt,
                       redirects: int = 0, frozen: int = 0) -> None:
        def fail(reason: str) -> None:
            self._single_active = False
            self.stats["failed_singles"] += 1
            if callback is not None:
                callback(TxnResult(b"", False, reason=reason))

        def on_reply(result: bytes, _latency: int) -> None:
            if self.crashed:
                return
            if is_tx_reply(result):
                tx = decode_tx_reply(result)
                if tx.status == ST_LOCKED and attempt < self.locked_retry_limit:
                    # Blocked on a (possibly stranded) transaction: resolve
                    # it at its coordinator, deliver the outcome here, then
                    # retry after a deterministic backoff.
                    self.stats["lock_conflicts"] += 1
                    self._recover_holder(
                        tx.holder_txid, tx.holder_coordinator, shard,
                        lambda: self.sim.schedule(
                            self.locked_backoff_ns * (attempt + 1),
                            lambda: self._invoke_single(
                                op, shard, callback, readonly, attempt + 1,
                                redirects, frozen,
                            ),
                        ),
                    )
                    return
                if tx.status == ST_WRONG_SHARD:
                    # The unit moved: install the learned fact (a no-op if
                    # our directory already knows something newer) and
                    # re-route.  Each redirect carries a strictly newer
                    # version than the route that drew it, so the retry
                    # count is bounded by the moves we are behind.
                    self.stats["wrong_shard_redirects"] += 1
                    if redirects < self.redirect_retry_limit:
                        self._learn_fact(tx)
                        new_shards = self.codec.shards_of(op)
                        if len(new_shards) == 1 and new_shards[0] != shard:
                            self._invoke_single(
                                op, new_shards[0], callback, readonly,
                                attempt, redirects + 1, frozen,
                            )
                            return
                    fail("wrong-shard")
                    return
                if tx.status == ST_FROZEN:
                    # Mid-migration: the unit will thaw at the source (on
                    # abort), redirect from it (on commit), or activate at
                    # the destination — back off and retry in place.
                    self.stats["frozen_refusals"] += 1
                    if frozen < self.frozen_retry_limit:
                        self.sim.schedule(
                            self.frozen_backoff_ns * (frozen + 1),
                            lambda: self._invoke_single(
                                op, shard, callback, readonly, attempt,
                                redirects, frozen + 1,
                            ),
                        )
                        return
                    fail("frozen")
                    return
                fail("locked")
                return
            self._single_active = False
            self.completed_singles += 1
            self.stats["singles_completed"] += 1
            if callback is not None:
                callback(TxnResult(b"", True, replies=(result,)))

        self._client_invoke(shard, op, on_reply, readonly=readonly)

    def _learn_fact(self, tx) -> None:
        """Install the placement fact a WRONG_SHARD redirect carries."""
        unit = tx.unit
        if unit[0] == "range":
            self.directory.apply_move(unit[1], unit[2], tx.shard, tx.version)
        else:
            self.directory.apply_table(unit[1], tx.shard, tx.version)

    # -- recovery -------------------------------------------------------------

    def _recover_holder(
        self, holder_txid: bytes, coordinator: int, blocked_shard: int,
        on_done: Callable[[], None],
    ) -> None:
        """RESOLVE a stranded transaction, then unblock ``blocked_shard``."""
        self.stats["recoveries"] += 1
        coord_client = self.clients.get(coordinator)
        if coord_client is None or coord_client.busy:
            on_done()  # cannot recover right now; retry will find out
            return

        def on_resolved(result: bytes, _latency: int) -> None:
            if self.crashed:
                return
            decision = DECISION_ABORT
            if is_tx_reply(result):
                tx = decode_tx_reply(result)
                if tx.status == ST_DECISION:
                    decision = tx.decision
            outcome_op = (
                encode_commit(holder_txid)
                if decision == DECISION_COMMIT
                else encode_abort(holder_txid)
            )
            blocked_client = self.clients[blocked_shard]
            if blocked_client.busy:
                on_done()
                return
            self._client_invoke(
                blocked_shard, outcome_op, lambda _r, _l: on_done()
            )

        self._client_invoke(coordinator, encode_resolve(holder_txid), on_resolved)

    # -- cross-shard transactions ---------------------------------------------

    def invoke_txn(
        self,
        ops: Iterable[bytes],
        callback: Optional[Callable[[TxnResult], None]] = None,
    ) -> bytes:
        """Run a multi-operation transaction atomically across its shards.

        Each operation must itself be single-shard; the transaction is the
        unit that spans shards.  Returns the transaction id.
        """
        if self.busy or self.crashed:
            raise ShardError(f"router {self.router_id} is busy")
        per_shard_ops: dict[int, list[bytes]] = {}
        per_shard_keys: dict[int, list[bytes]] = {}
        for op in ops:
            shards = self.codec.shards_of(op)
            if len(shards) != 1:
                raise ShardError("each transaction operation must be single-shard")
            shard = shards[0]
            per_shard_ops.setdefault(shard, []).append(op)
            keys = per_shard_keys.setdefault(shard, [])
            for key in self.codec.keys_of(op):
                if key not in keys:
                    keys.append(key)
        if not per_shard_ops:
            raise ShardError("a transaction needs at least one operation")
        txn = _Txn(
            self._next_txid(), per_shard_ops, per_shard_keys, callback,
            self.sim.now,
        )
        self._active = txn
        self.stats["txns_started"] += 1
        self._mark("prepare", txn)
        txn.timer = self.sim.schedule(
            self.prepare_timeout_ns, lambda: self._on_prepare_timeout(txn)
        )
        for shard in txn.participants:
            prepare = encode_prepare(
                txn.txid, txn.coordinator, txn.participants,
                txn.per_shard_ops[shard], txn.per_shard_keys[shard],
            )
            self._client_invoke(
                shard, prepare,
                lambda result, _lat, s=shard: self._on_vote(txn, s, result),
            )
        return txn.txid

    def _on_vote(self, txn: _Txn, shard: int, result: bytes) -> None:
        if self._active is not txn or txn.decision is not None or self.crashed:
            return
        vote = False
        if is_tx_reply(result):
            tx = decode_tx_reply(result)
            vote = tx.status == ST_OK
            if tx.status == ST_LOCKED:
                # No blocking lock waits (wound-free 2PC keeps the design
                # deadlock-proof): our transaction aborts, and once the
                # abort is fully delivered we recover the holder so its
                # locks cannot strand the keys forever.
                txn.reason = "locked"
                txn.stranded = (tx.holder_txid, tx.holder_coordinator, shard)
                self.stats["lock_conflicts"] += 1
            elif tx.status == ST_TOMBSTONE:
                txn.reason = "tombstone"
            elif tx.status == ST_WRONG_SHARD:
                # A participant's unit moved mid-flight: vote no (the
                # transaction aborts presumed-abort), but learn the fact
                # so the caller's retry routes to the new home.
                txn.reason = "wrong-shard"
                self._learn_fact(tx)
                self.stats["wrong_shard_redirects"] += 1
            elif tx.status == ST_FROZEN:
                # Mid-migration: abort now; the caller may retry once the
                # move settles.  Prepares must not wait out a freeze —
                # held locks on other shards would stall their traffic.
                txn.reason = "frozen"
                self.stats["frozen_refusals"] += 1
        txn.votes[shard] = vote
        if not vote:
            self._decide(txn, DECISION_ABORT)
        elif len(txn.votes) == len(txn.participants):
            self._decide(txn, DECISION_COMMIT)

    def _on_prepare_timeout(self, txn: _Txn) -> None:
        if self._active is not txn or txn.decision is not None or self.crashed:
            return
        txn.timer = None
        txn.reason = txn.reason or "prepare-timeout"
        self.stats["prepare_timeouts"] += 1
        # Unanswered participants may be partitioned away: stop waiting,
        # decide abort.  Their PBFT clients are cancelled so the sockets
        # are free for the outcome delivery below.
        for shard in txn.participants:
            if shard not in txn.votes:
                self.clients[shard].cancel_pending()
        self._decide(txn, DECISION_ABORT)

    def _decide(self, txn: _Txn, wanted: int) -> None:
        if txn.decision is not None:
            return
        if txn.timer is not None:
            txn.timer.cancel()
            txn.timer = None
        if self.crash_point == "after_prepare":
            self._crash()
            return
        txn.decision = -1  # decision in flight
        self._mark("decide", txn, txn.coordinator)
        coord = self.clients[txn.coordinator]
        if coord.busy:
            # Aborting before the coordinator's own PREPARE answered: free
            # its client so the DECIDE can go out.
            coord.cancel_pending()
        self._client_invoke(
            txn.coordinator, encode_decide(txn.txid, wanted),
            lambda result, _lat: self._on_decided(txn, wanted, result),
        )

    def _on_decided(self, txn: _Txn, wanted: int, result: bytes) -> None:
        if self._active is not txn or self.crashed:
            return
        decision = wanted
        if is_tx_reply(result):
            tx = decode_tx_reply(result)
            if tx.status == ST_DECISION:
                decision = tx.decision  # first writer may have beaten us
        txn.decision = decision
        if self.crash_point == "after_decide":
            self._crash()
            return
        self._deliver_outcomes(txn)

    def _deliver_outcomes(self, txn: _Txn) -> None:
        self._mark("commit" if txn.decision == DECISION_COMMIT else "abort", txn)
        for shard in txn.participants:
            self._deliver_outcome(txn, shard, attempt=0)

    def _deliver_outcome(self, txn: _Txn, shard: int, attempt: int) -> None:
        if self._active is not txn or self.crashed:
            return
        op = (
            encode_commit(txn.txid)
            if txn.decision == DECISION_COMMIT
            else encode_abort(txn.txid)
        )
        client = self.clients[shard]
        if client.busy:
            client.cancel_pending()

        def on_ack(result: bytes, _latency: int) -> None:
            if self._active is not txn or self.crashed:
                return
            if is_tx_reply(result):
                tx = decode_tx_reply(result)
                if tx.status == ST_OK:
                    txn.replies[shard] = tx.inner_replies
                    txn.outcome_acks.add(shard)
                    self._maybe_finish(txn)
                    return
            if attempt < self.outcome_retry_limit:
                self.sim.schedule(
                    self.locked_backoff_ns,
                    lambda: self._deliver_outcome(txn, shard, attempt + 1),
                )
            else:
                # Give up on this shard's ack: the decision is durable at
                # the coordinator, so the reconciliation sweep (or any
                # router that collides with the leftover locks) will
                # finish delivery.  Count it and finish the transaction —
                # but the decision must NOT be forgotten: this shard may
                # still hold prepared state that a later RESOLVE needs
                # the true decision for.
                self.stats["outcome_delivery_failures"] += 1
                txn.forgettable = False
                txn.outcome_acks.add(shard)
                self._maybe_finish(txn)

        self._client_invoke(shard, op, on_ack)

    def _maybe_finish(self, txn: _Txn) -> None:
        if len(txn.outcome_acks) != len(txn.participants):
            return
        if txn.stranded is not None:
            # Our abort is fully delivered; now recover the transaction we
            # collided with, then report.  Keeps the router busy so the
            # recovery traffic is serialized like any other work.
            holder_txid, holder_coordinator, shard = txn.stranded
            txn.stranded = None
            self._recover_holder(
                holder_txid, holder_coordinator, shard,
                lambda: self._maybe_finish(txn),
            )
            return
        if txn.forgettable and not txn.forgotten:
            # End of transaction: every participant acked, so nobody can
            # ever need to RESOLVE this txid again — tell the coordinator
            # to drop the decision record (presumed-abort GC).  Abort
            # decisions are evictable anyway, but forgetting them early
            # keeps the table small.
            txn.forgotten = True
            coord = self.clients[txn.coordinator]
            if not coord.busy:
                self._client_invoke(
                    txn.coordinator, encode_forget(txn.txid),
                    lambda _r, _l: self._maybe_finish(txn),
                )
                return
        self._active = None
        committed = txn.decision == DECISION_COMMIT
        if committed:
            self.committed_txns += 1
            self.stats["txns_committed"] += 1
        else:
            self.aborted_txns += 1
            self.stats["txns_aborted"] += 1
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.complete(
                self._track, "txn", txn.started_at, self.sim.now, cat="shard",
                args={
                    "txid": txn.txid.hex()[:8],
                    "shards": list(txn.participants),
                    "outcome": "commit" if committed else "abort",
                    "reason": txn.reason,
                },
            )
        if txn.callback is not None:
            replies = tuple(
                reply
                for shard in txn.participants
                for reply in txn.replies.get(shard, ())
            )
            txn.callback(TxnResult(txn.txid, committed, replies, txn.reason))
