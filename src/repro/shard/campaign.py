"""Fault campaigns against the sharded topology.

Reuses the machinery of :mod:`repro.faults` wholesale — one
:class:`~repro.faults.injector.FaultInjector` per group, the same
run/drain/settle phases, the same deterministic traced re-run on a
violation — and extends it with the sharding layer's own concerns:

* **prefixed schedules** — host-name based faults (partitions, link
  disturbances) written against the single-group names ("replica0",
  "replica*") are translated onto one group's prefixed hosts
  ("s0-replica0", ...); replica-index faults need no translation because
  each injector acts on its own group's replica list;
* **router workload** — closed-loop routers mix single-shard writes with
  cross-shard transactions on a small set of shared hot keys, so lock
  collisions, wound-free aborts, and stranded-transaction recovery all
  fire under faults;
* **coordinator-crash scenarios** — the router crash hooks
  (``after_prepare`` / ``after_decide``) strand a transaction mid-2PC,
  and the run only passes if recovery plus the reconciliation sweep
  restore atomicity;
* **invariant #6** — after :meth:`ShardedCluster.reconcile`, no
  transaction may have committed on one shard and aborted on another
  (:func:`repro.faults.invariants.check_cross_shard_atomicity`), on top
  of the five single-group invariants checked per group.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.apps.kvstore import encode_put
from repro.common.errors import ShardError
from repro.common.units import MILLISECOND
from repro.faults.campaign import (
    CampaignResult,
    RunResult,
    _dump_artifacts,
    campaign_config,
)
from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    Violation,
    check_agreement,
    check_checkpoint_monotone,
    check_cross_shard_atomicity,
    check_flood_liveness,
    check_liveness,
    check_migration_safety,
    check_no_committed_loss,
)
from repro.faults.library import (
    equivocating_primary,
    flooding_client,
    lossy_replica_links,
    primary_crash_restart,
    primary_partition,
)
from repro.faults.schedule import (
    CrashReplica,
    FaultSchedule,
    LinkDisturbance,
    MarkovChurn,
    PartitionFault,
    Trigger,
)
from repro.obs import Observability
from repro.pbft.config import PbftConfig
from repro.shard.directory import ShardDirectory
from repro.shard.topology import ShardedCluster, build_sharded_cluster

PAYLOAD = bytes(96)

# Campaign topology: small and fast, like the single-group campaigns.
_NUM_SHARDS = 2
_NUM_ROUTERS = 4
_ROUTER_HOSTS = 2
_TXN_EVERY = 4  # every 4th router op is a cross-shard transaction
_HOT_PAIRS = 3  # distinct hot cross-shard key pairs shared by all routers

# Logical operation ids for the liveness ledger live in their own
# namespace so they cannot collide with real PBFT client ids.
_ROUTER_ID_BASE = 1000

# The unit rebalance scenarios move: the lower half of shard 0's default
# stripe.  With two shards that is a quarter of the hash space, so the
# move covers roughly half of shard 0's workload keys.
_MIG_LO, _MIG_HI = 0, 1 << 30

# Pinned regression seed for "rebalance-under-churn": at this seed the
# source replica's first churn outage falls inside the migration's
# freeze/copy window, so drain, re-freeze, and the checkpoint wait all
# run against a group that is flapping.  Keep it pinned — re-rolling the
# seed can move the outage outside the window and quietly stop testing
# the overlap.
CHURN_REGRESSION_SEED = 3


def shard_campaign_config() -> PbftConfig:
    """Per-group configuration for shard campaigns (no direct clients)."""
    return campaign_config().with_options(num_clients=0)


def prefix_schedule(schedule: FaultSchedule, prefix: str) -> FaultSchedule:
    """Translate a single-group schedule onto one group's prefixed hosts.

    Partitions name hosts and link disturbances use host-name patterns,
    so both get the group prefix ("replica*" -> "s0-replica*").  Faults
    addressed by replica index (crashes, mute/equivocating primaries,
    Byzantine clients) pass through untouched — the injector applying
    the schedule already acts on exactly one group.
    """
    faults = []
    for fault in schedule.faults:
        if isinstance(fault, PartitionFault):
            fault = dataclasses.replace(
                fault,
                group_a=frozenset(prefix + host for host in fault.group_a),
                group_b=frozenset(prefix + host for host in fault.group_b),
            )
        elif isinstance(fault, LinkDisturbance):
            fault = dataclasses.replace(
                fault, src=prefix + fault.src, dst=prefix + fault.dst
            )
        faults.append(fault)
    return dataclasses.replace(schedule, faults=tuple(faults))


def key_for_shard(
    directory: ShardDirectory, shard: int, tag: str, limit: int = 100_000
) -> bytes:
    """Deterministically find a key the directory places on ``shard``."""
    for i in range(limit):
        key = f"{tag}-{i}".encode()
        if directory.shard_of_key(key) == shard:
            return key
    raise ShardError(f"no key with tag {tag!r} lands on shard {shard}")


_NO_FAULTS = FaultSchedule(
    name="no-faults",
    description="Empty schedule: the injector only samples checkpoints.",
    faults=(),
)


def _participant_timeout_schedule() -> FaultSchedule:
    """Cut shard 1's replicas off from every router host for a while.

    Cross-shard transactions touching shard 1 must abort via the prepare
    timeout instead of wedging; single-shard traffic to shard 0 keeps
    flowing, and after the heal everything drains.
    """
    return FaultSchedule(
        name="participant-timeout",
        description="Partition shard 1 away from the routers: prepares "
        "time out, transactions abort, shard 0 is unaffected.",
        faults=(
            PartitionFault(
                group_a=frozenset(
                    f"s1-replica{rid}" for rid in range(4)
                ),
                group_b=frozenset(
                    f"routerhost{h}" for h in range(_ROUTER_HOSTS)
                ),
                start=Trigger(at_ns=150 * MILLISECOND),
                heal_after_ns=500 * MILLISECOND,
            ),
        ),
    )


def _mid_migration_primary_crash() -> FaultSchedule:
    """Crash the target group's view-0 primary while a migration is in
    flight (the move starts at 100ms, the crash lands at 150ms)."""
    return FaultSchedule(
        name="mid-migration-primary-crash",
        description="Primary crash while a range migration is mid-copy: "
        "the rebalancer's ordered ops must survive the view change.",
        faults=(
            CrashReplica(
                replica=0,
                at=Trigger(at_ns=150 * MILLISECOND),
                restart_after_ns=250 * MILLISECOND,
            ),
        ),
    )


def _migration_churn_schedule() -> FaultSchedule:
    """Markov fail/repair churn on a source-group backup overlapping the
    whole migration window (satellite: MarkovChurn in the shard sweep)."""
    return FaultSchedule(
        name="migration-churn",
        description="A source-group replica flaps (Markov up/down) while "
        "the unit is frozen, copied, and committed away.",
        faults=(
            MarkovChurn(
                replica=2,
                mean_up_ns=30 * MILLISECOND,
                mean_down_ns=40 * MILLISECOND,
                duration_ns=400 * MILLISECOND,
                start=Trigger(at_ns=80 * MILLISECOND),
            ),
        ),
    )


@dataclass(frozen=True)
class ShardScenario:
    """One sharded campaign run: a (translated) schedule plus router hooks."""

    name: str
    schedule: FaultSchedule
    target_shard: int = 0
    crash_router_point: Optional[str] = None  # "after_prepare"/"after_decide"
    # Live rebalancing: start moving [_MIG_LO, _MIG_HI) from shard 0 to
    # shard 1 at this sim time; optionally crash the driver at a protocol
    # point ("after_freeze"/"after_copy"/"after_activate") so a successor
    # has to resume() the move from replicated state.
    migrate_at_ns: Optional[int] = None
    rebalancer_crash_point: Optional[str] = None


def shard_scenarios() -> list[ShardScenario]:
    """The default sweep: group-level faults on shard 0 plus 2PC-specific
    coordinator-crash and participant-timeout scenarios."""
    p = "s0-"
    return [
        ShardScenario("shard-baseline", _NO_FAULTS),
        ShardScenario("shard0-primary-crash-restart", primary_crash_restart()),
        ShardScenario(
            "shard0-primary-partition", prefix_schedule(primary_partition(), p)
        ),
        ShardScenario(
            "shard0-lossy-replica-links",
            prefix_schedule(lossy_replica_links(), p),
        ),
        ShardScenario("shard0-equivocating-primary", equivocating_primary()),
        ShardScenario("shard0-flooding-client", flooding_client()),
        ShardScenario(
            "coordinator-crash-mid-prepare",
            _NO_FAULTS,
            crash_router_point="after_prepare",
        ),
        ShardScenario(
            "coordinator-crash-after-decide",
            _NO_FAULTS,
            crash_router_point="after_decide",
        ),
        ShardScenario("participant-timeout", _participant_timeout_schedule()),
    ] + rebalance_scenarios()


def rebalance_scenarios() -> list[ShardScenario]:
    """The migration-safety battery: a live move under traffic, driver
    crashes at every protocol point, a primary crash on either side of
    the move, and churn overlapping the migration window."""
    start = 100 * MILLISECOND
    return [
        ShardScenario("rebalance-live", _NO_FAULTS, migrate_at_ns=start),
        ShardScenario(
            "rebalance-driver-crash-after-freeze",
            _NO_FAULTS,
            migrate_at_ns=start,
            rebalancer_crash_point="after_freeze",
        ),
        ShardScenario(
            "rebalance-driver-crash-after-copy",
            _NO_FAULTS,
            migrate_at_ns=start,
            rebalancer_crash_point="after_copy",
        ),
        ShardScenario(
            "rebalance-driver-crash-after-activate",
            _NO_FAULTS,
            migrate_at_ns=start,
            rebalancer_crash_point="after_activate",
        ),
        ShardScenario(
            "rebalance-src-primary-crash",
            _mid_migration_primary_crash(),
            target_shard=0,
            migrate_at_ns=start,
        ),
        ShardScenario(
            "rebalance-dst-primary-crash",
            _mid_migration_primary_crash(),
            target_shard=1,
            migrate_at_ns=start,
        ),
        ShardScenario(
            "rebalance-under-churn",
            _migration_churn_schedule(),
            target_shard=0,
            migrate_at_ns=start,
        ),
    ]


def smoke_scenarios() -> list[ShardScenario]:
    """The CI subset: one healthy run plus the two 2PC-critical paths."""
    wanted = {
        "shard-baseline",
        "coordinator-crash-mid-prepare",
        "participant-timeout",
    }
    return [s for s in shard_scenarios() if s.name in wanted]


def rebalance_smoke_scenarios() -> list[ShardScenario]:
    """The CI subset of the migration battery: one clean live move, one
    driver-crash resume, and one primary crash mid-migration."""
    wanted = {
        "rebalance-live",
        "rebalance-driver-crash-after-copy",
        "rebalance-src-primary-crash",
    }
    return [s for s in rebalance_scenarios() if s.name in wanted]


def _start_router_workload(
    cluster: ShardedCluster,
    invoked: list[tuple[int, int]],
    completed: list[tuple[int, int]],
    completed_at_ns: list[int],
    issuing: dict[str, bool],
    inflight: dict[int, tuple[int, int]],
    committed_writes: dict[bytes, bytes],
) -> None:
    """Closed-loop router workload: singles plus hot-key cross-shard txns.

    The hot pairs are shared by every router, so transactions collide:
    lock conflicts, wound-free aborts, and recovery of stranded holders
    all run as part of the normal workload.  A router armed with a
    ``crash_point`` makes its *first* operation a transaction so the
    crash hook fires early and the rest of the run exercises recovery.
    """
    hot_pairs = [
        (
            key_for_shard(cluster.directory, 0, f"hot{j}a"),
            key_for_shard(cluster.directory, 1, f"hot{j}b"),
        )
        for j in range(_HOT_PAIRS)
    ]

    def start(router) -> None:
        state = {"n": 0}

        def submit() -> None:
            if router.crashed or not issuing["on"]:
                return
            n = state["n"]
            state["n"] += 1
            op_id = (_ROUTER_ID_BASE + router.router_id, n)
            invoked.append(op_id)
            inflight[router.router_id] = op_id

            wants_txn = n % _TXN_EVERY == _TXN_EVERY - 1 or (
                n == 0 and router.crash_point is not None
            )
            if wants_txn:
                keys = hot_pairs[n % len(hot_pairs)]
            else:
                # A bounded per-router key space: overwrites keep the kv
                # store's slot usage flat however long the run is.
                keys = (f"r{router.router_id}-op{n % 32}".encode(),)

            def done(result, keys=keys) -> None:
                if getattr(result, "committed", False):
                    # Invariant #8's ledger: the last committed value per
                    # key (the workload always writes PAYLOAD).
                    for key in keys:
                        committed_writes[key] = PAYLOAD
                completed.append(op_id)
                completed_at_ns.append(cluster.sim.now)
                inflight.pop(router.router_id, None)
                submit()

            if wants_txn:
                router.invoke_txn(
                    [encode_put(key, PAYLOAD) for key in keys], callback=done
                )
            else:
                router.invoke(encode_put(keys[0], PAYLOAD), callback=done)

        submit()

    for router in cluster.routers:
        start(router)


def _execute_shard(
    scenario: ShardScenario,
    seed: int,
    config: PbftConfig,
    run_ns: int,
    drain_ns: int,
    settle_ns: int,
    trace: bool,
) -> tuple[RunResult, ShardedCluster]:
    obs = Observability(tracing=trace)
    cluster = build_sharded_cluster(
        _NUM_SHARDS,
        config=config,
        seed=seed,
        real_crypto=False,
        num_routers=_NUM_ROUTERS,
        router_hosts=_ROUTER_HOSTS,
        trace=trace,
        obs=obs,
    )
    # One injector per group: the target shard runs the scenario's
    # schedule, the others run empty schedules so their checkpoint
    # stability still gets sampled.
    injectors = [
        FaultInjector(
            group,
            scenario.schedule if shard == scenario.target_shard else _NO_FAULTS,
        )
        for shard, group in enumerate(cluster.groups)
    ]
    target = injectors[scenario.target_shard]

    completions: list[tuple[int, int, int]] = []
    for router in cluster.routers:
        router.completion_log = completions
    if scenario.crash_router_point is not None:
        cluster.routers[0].crash_point = scenario.crash_router_point

    invoked: list[tuple[int, int]] = []
    completed: list[tuple[int, int]] = []
    completed_at_ns: list[int] = []
    inflight: dict[int, tuple[int, int]] = {}
    committed_writes: dict[bytes, bytes] = {}
    issuing = {"on": True}
    _start_router_workload(
        cluster, invoked, completed, completed_at_ns, issuing, inflight,
        committed_writes,
    )
    for injector in injectors:
        injector.start()

    # Live rebalancing: the driver starts its move mid-run, underneath
    # whatever faults the scenario is injecting.
    moves: list = []
    rebalancer = None
    if scenario.migrate_at_ns is not None:
        rebalancer = cluster.make_rebalancer(chunk_budget=512)
        if scenario.rebalancer_crash_point is not None:
            rebalancer.crash_point = scenario.rebalancer_crash_point
        cluster.sim.schedule(
            scenario.migrate_at_ns,
            lambda: rebalancer.move_range(
                _MIG_LO, _MIG_HI, 1, on_done=moves.append
            ),
        )

    step = 10 * MILLISECOND
    deadline = cluster.sim.now + run_ns
    hard_cap = deadline + drain_ns
    while cluster.sim.now < deadline or (
        not target.quiescent and cluster.sim.now < hard_cap
    ):
        cluster.run_for(step)
    if not target.quiescent:
        target.log.append(
            f"WARNING: {len(target.pending)} fault(s) never triggered and "
            f"{target.open_heals} heal(s) still open at the hard cap"
        )

    # Drain: stop issuing, let in-flight router work finish (crashed
    # routers are excused — their stranded transactions are the point).
    issuing["on"] = False
    drain_deadline = cluster.sim.now + drain_ns
    while (
        any(r.busy for r in cluster.routers if not r.crashed)
        and cluster.sim.now < drain_deadline
    ):
        cluster.run_for(step)
    cluster.run_for(settle_ns)

    # Finish the migration: a crashed driver gets a successor that
    # resumes from replicated state; a live one gets time to complete.
    if rebalancer is not None:
        if rebalancer.crashed and not moves:
            successor = cluster.make_rebalancer(chunk_budget=512)
            resumed = successor.resume(on_done=moves.append)
            target.log.append(
                f"{cluster.sim.now / MILLISECOND:9.1f}ms  rebalancer "
                f"crashed at {scenario.rebalancer_crash_point}; successor "
                f"resumed {resumed.hex()[:8] if resumed else 'nothing'}"
            )
        move_deadline = cluster.sim.now + drain_ns
        while not moves and cluster.sim.now < move_deadline:
            cluster.run_for(step)

    # Reconciliation sweep: resolve every leftover prepared transaction
    # before atomicity is judged, exactly as a recovery daemon would.
    reconciled = cluster.reconcile()
    if reconciled:
        target.log.append(
            f"{cluster.sim.now / MILLISECOND:9.1f}ms  reconciled "
            f"{reconciled} stranded transaction(s)"
        )
    cluster.run_for(settle_ns)

    for injector in injectors:
        injector.stop()
    cluster.stop()

    violations: list[Violation] = []
    for shard, group in enumerate(cluster.groups):
        group_completed = [
            (client_id, req_id)
            for s, client_id, req_id in completions
            if s == shard
        ]
        violations += check_agreement(group)
        violations += check_no_committed_loss(group, group_completed)
        violations += check_checkpoint_monotone(
            injectors[shard].stability_samples
        )
    crashed_ids = {r.router_id for r in cluster.routers if r.crashed}
    excused = {
        op for rid, op in inflight.items() if rid in crashed_ids
    }
    live_invoked = [op for op in invoked if op not in excused]
    violations += check_liveness(cluster.groups[0], live_invoked, completed)
    violations += check_flood_liveness(
        target.client_fault_windows, completed_at_ns
    )
    violations += check_cross_shard_atomicity(cluster.groups)
    if scenario.migrate_at_ns is not None:
        if not moves or moves[-1].state != "done":
            reason = moves[-1].reason if moves else "never finished"
            violations.append(
                Violation(
                    "migration-safety",
                    f"the scheduled migration did not complete: {reason}",
                )
            )
    violations += check_migration_safety(
        cluster.groups, cluster.directory, committed_writes
    )

    result = RunResult(
        schedule=scenario.name,
        seed=seed,
        violations=violations,
        invoked_ops=len(invoked),
        completed_ops=len(completed),
        max_view=max(
            replica.view for group in cluster.groups for replica in group.replicas
        ),
        sim_time_ns=cluster.sim.now,
        fault_log=list(target.log),
    )
    return result, cluster


def run_shard_scenario(
    scenario: ShardScenario,
    seed: int,
    config: PbftConfig | None = None,
    run_ns: int = 1200 * MILLISECOND,
    drain_ns: int = 3000 * MILLISECOND,
    settle_ns: int = 400 * MILLISECOND,
    trace: bool = False,
    artifact_dir: str | None = None,
) -> RunResult:
    """Run one scenario at one seed; dump forensics if an invariant broke."""
    config = config or shard_campaign_config()
    result, cluster = _execute_shard(
        scenario, seed, config, run_ns, drain_ns, settle_ns, trace
    )
    if result.violations and artifact_dir is not None:
        if not trace:
            traced, cluster = _execute_shard(
                scenario, seed, config, run_ns, drain_ns, settle_ns, trace=True
            )
            traced.artifacts = _dump_artifacts(traced, cluster, artifact_dir)
            return traced
        result.artifacts = _dump_artifacts(result, cluster, artifact_dir)
    return result


def run_shard_campaign(
    scenarios: list[ShardScenario] | None = None,
    seeds: list[int] | None = None,
    config: PbftConfig | None = None,
    run_ns: int = 1200 * MILLISECOND,
    drain_ns: int = 3000 * MILLISECOND,
    settle_ns: int = 400 * MILLISECOND,
    artifact_dir: str | None = None,
) -> CampaignResult:
    """Sweep every scenario across every seed on the 2-shard topology."""
    scenarios = scenarios if scenarios is not None else shard_scenarios()
    seeds = seeds if seeds is not None else [1, 2]
    runs = [
        run_shard_scenario(
            scenario,
            seed,
            config=config,
            run_ns=run_ns,
            drain_ns=drain_ns,
            settle_ns=settle_ns,
            artifact_dir=artifact_dir,
        )
        for scenario in scenarios
        for seed in seeds
    ]
    return CampaignResult(runs=runs)
