"""Sharded multi-group PBFT with cross-shard ACID commit.

The scale-out layer (ROADMAP #2, Basil-style): the keyspace / SQL tables
are partitioned across S independent PBFT groups, single-shard operations
route directly to the owning group, and cross-shard transactions commit
atomically through a deterministic two-phase commit whose every protocol
step is ordered in some group's own PBFT log.  See DESIGN.md §9.
"""

from repro.shard.campaign import (
    CHURN_REGRESSION_SEED,
    ShardScenario,
    key_for_shard,
    prefix_schedule,
    rebalance_scenarios,
    rebalance_smoke_scenarios,
    run_shard_campaign,
    run_shard_scenario,
    shard_campaign_config,
    shard_scenarios,
    smoke_scenarios,
)
from repro.shard.directory import ShardDirectory, key_position
from repro.shard.rebalance import MoveRecord, ShardRebalancer
from repro.shard.router import (
    KvShardCodec,
    ShardRouter,
    SqlShardCodec,
    TxnResult,
)
from repro.shard.topology import ShardedCluster, build_sharded_cluster
from repro.shard.txapp import (
    DECISION_ABORT,
    DECISION_COMMIT,
    ShardTxApplication,
    decode_tx_reply,
    encode_abort,
    encode_commit,
    encode_decide,
    encode_forget,
    encode_prepare,
    encode_resolve,
    encode_status,
    is_tx_reply,
)

__all__ = [
    "ShardDirectory",
    "key_position",
    "MoveRecord",
    "ShardRebalancer",
    "CHURN_REGRESSION_SEED",
    "ShardScenario",
    "key_for_shard",
    "prefix_schedule",
    "rebalance_scenarios",
    "rebalance_smoke_scenarios",
    "run_shard_campaign",
    "run_shard_scenario",
    "shard_campaign_config",
    "shard_scenarios",
    "smoke_scenarios",
    "ShardRouter",
    "KvShardCodec",
    "SqlShardCodec",
    "TxnResult",
    "ShardedCluster",
    "build_sharded_cluster",
    "ShardTxApplication",
    "DECISION_ABORT",
    "DECISION_COMMIT",
    "encode_prepare",
    "encode_commit",
    "encode_abort",
    "encode_decide",
    "encode_forget",
    "encode_resolve",
    "encode_status",
    "decode_tx_reply",
    "is_tx_reply",
]
