"""Live shard rebalancing: move a unit between PBFT groups under traffic.

:class:`ShardRebalancer` drives the migration protocol whose shard-side
state machine lives in :mod:`repro.shard.txapp` (DESIGN.md §12).  Every
step is an ordinary operation ordered through a group's own PBFT log, so
the driver needs no authority of its own — it is a client, and any of its
steps can be re-driven by a successor after a crash:

1. **FREEZE** the unit at the source group.  New writes and prepares draw
   ``ST_FROZEN``; the reply names the prepared transactions still holding
   locks on the unit, which the driver drains (resolve at their
   coordinator, presumed abort, deliver the outcome) until none remain.
2. **BEGIN** at the destination: the incoming unit is frozen there too,
   so nothing can dirty it while chunks land.
3. **Copy loop**: EXPORT a chunk at the source (deterministic — the unit
   is frozen), INSTALL it at the destination (idempotent by chunk index),
   repeat until the source reports done.
4. **ACTIVATE** at the destination with the directory version the move
   will publish: the unit is now served there.
5. **Checkpoint boundary**: wait until f+1 destination replicas report a
   stable checkpoint at or past the activation, driving the sequence
   number forward with ordered STATUS polls if the group is idle.  Only
   then is the copy durable enough to destroy the original — a lagging
   destination replica now reaches the data via checkpoint state
   transfer, never by re-executing installs against purged state.
6. **COMMIT** at the source: purge the unit and leave a *moved tombstone*
   that answers every later operation with a ``WRONG_SHARD`` redirect.
7. **Publish** the directory bump (``apply_move`` / ``apply_table`` to
   the version the activation recorded), healing every router that
   clones or shares the authoritative directory; stale routers heal
   through the redirects.

``crash_point`` ("after_freeze" / "after_copy" / "after_activate") stops
the driver cold at that point of its next move, leaving the deployment
mid-migration for the fault campaign; :meth:`resume` reconstructs the
move from the groups' replicated migration tables and finishes it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.errors import ShardError
from repro.common.units import MILLISECOND
from repro.crypto.digests import md5_digest
from repro.shard.txapp import (
    DECISION_ABORT,
    DECISION_COMMIT,
    ROLE_SRC,
    ST_DECISION,
    ST_MIG,
    decode_export_payload,
    decode_freeze_payload,
    decode_tx_reply,
    encode_abort,
    encode_commit,
    encode_mig_abort,
    encode_mig_activate,
    encode_mig_begin,
    encode_mig_commit,
    encode_mig_export,
    encode_mig_freeze,
    encode_mig_install,
    encode_mig_status,
    encode_resolve,
    is_tx_reply,
)


class MoveRecord:
    """One migration's progress and result (also the ``on_done`` payload)."""

    __slots__ = ("mig_id", "unit", "src", "dst", "version", "chunks",
                 "started_at", "finished_at", "state", "reason", "resumed",
                 "drain_polls", "ckpt_polls", "target_exec", "on_done")

    def __init__(self, mig_id: bytes, unit, src: int, dst: int,
                 on_done: Optional[Callable] = None):
        self.mig_id = mig_id
        self.unit = unit
        self.src = src
        self.dst = dst
        self.version = 0      # directory version the move publishes
        self.chunks = 0
        self.started_at = 0
        self.finished_at = 0
        self.state = "running"
        self.reason = ""
        self.resumed = False
        self.drain_polls = 0
        self.ckpt_polls = 0
        self.target_exec = 0
        self.on_done = on_done


class ShardRebalancer:
    """Drives live unit migrations over a dedicated per-group client set.

    Closed-loop: one move in flight at a time, one operation in flight
    per step — the driver is an ordinary (if privileged-looking) client
    and enjoys no more authority than one.
    """

    def __init__(
        self,
        sim,
        directory,
        clients: dict[int, object],  # shard -> PbftClient (dedicated)
        groups,                      # list of per-group Cluster objects
        obs=None,
        chunk_budget: int = 2048,
        drain_poll_ns: int = 20 * MILLISECOND,
        drain_poll_limit: int = 100,
        checkpoint_poll_ns: int = 10 * MILLISECOND,
        checkpoint_poll_limit: int = 400,
    ) -> None:
        self.sim = sim
        self.directory = directory
        self.clients = clients
        self.groups = groups
        self.chunk_budget = chunk_budget
        self.drain_poll_ns = drain_poll_ns
        self.drain_poll_limit = drain_poll_limit
        self.checkpoint_poll_ns = checkpoint_poll_ns
        self.checkpoint_poll_limit = checkpoint_poll_limit
        self._seq = 0
        self._active: Optional[MoveRecord] = None
        self.history: list[MoveRecord] = []
        self.crashed = False
        # Testing hook: crash the driver cold at this point of the next
        # move ("after_freeze" / "after_copy" / "after_activate").
        self.crash_point: Optional[str] = None
        if obs is not None:
            self.stats = obs.registry.view("rebalance.")
        else:
            from repro.obs import Observability

            self.stats = Observability().registry.view("rebalance.")

    # -- public API -----------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._active is not None

    def move_range(self, lo: int, hi: int, dst: int,
                   on_done: Optional[Callable] = None) -> bytes:
        """Start migrating the key range ``[lo, hi)`` to group ``dst``."""
        return self._start(("range", lo, hi), dst, on_done)

    def move_table(self, table: str, dst: int,
                   on_done: Optional[Callable] = None) -> bytes:
        """Start migrating a whole SQL table to group ``dst``."""
        return self._start(("table", table.lower()), dst, on_done)

    def resume(self, on_done: Optional[Callable] = None) -> Optional[bytes]:
        """Finish whatever a crashed predecessor left mid-flight.

        Reconstructs the move from the groups' replicated migration
        tables (the same way the reconciliation sweep reads prepared
        transactions) and re-drives it from the earliest incomplete
        step; every shard-side op is idempotent, so overlap with the
        predecessor's completed work is harmless.  Returns the resumed
        migration id, or None if nothing was in flight.
        """
        if self.busy:
            raise ShardError("rebalancer is busy")
        self.crashed = False
        # An active source-side record is the anchor: FREEZE is ordered
        # before everything else, so any in-flight move has one (until
        # COMMIT replaces it with a moved tombstone).
        for shard in range(len(self.groups)):
            app = self._tx_app(shard)
            if app is None:
                continue
            for mig_id in sorted(app.migrations()):
                role, unit, peer, _chunks = app.migrations()[mig_id]
                if role != ROLE_SRC:
                    continue
                rec = MoveRecord(mig_id, unit, shard, peer, on_done)
                rec.resumed = True
                rec.started_at = self.sim.now
                self._active = rec
                self._count("moves_resumed")
                dst_app = self._tx_app(peer)
                owned = dst_app.owned_units() if dst_app is not None else {}
                if mig_id in owned:
                    # Crash fell between ACTIVATE and COMMIT: redo the
                    # checkpoint wait against the recorded version.
                    rec.version = owned[mig_id][1]
                    self._start_checkpoint_wait(rec)
                else:
                    # Re-drive from the freeze; installs dedupe by index.
                    self._freeze(rec)
                return mig_id
        # Source committed (tombstone live) but the bump never published:
        # publishing is all that is left.
        for shard in range(len(self.groups)):
            app = self._tx_app(shard)
            if app is None:
                continue
            for mig_id in sorted(app.moved_units()):
                unit, dst, version = app.moved_units()[mig_id]
                if version > self.directory.version:
                    rec = MoveRecord(mig_id, unit, shard, dst, on_done)
                    rec.resumed = True
                    rec.version = version
                    rec.started_at = self.sim.now
                    self._active = rec
                    self._count("moves_resumed")
                    self._publish(rec)
                    return mig_id
        return None

    # -- helpers --------------------------------------------------------------

    def _count(self, name: str) -> None:
        self.stats[name] += 1

    def _tx_app(self, shard: int):
        for app in self.groups[shard].apps:
            if hasattr(app, "migrations"):
                return app
        return None

    def _invoke(self, shard: int, op: bytes, callback) -> None:
        if self.crashed:
            return
        client = self.clients[shard]
        if client.busy:
            client.cancel_pending()

        def on_reply(result: bytes, _latency: int) -> None:
            if not self.crashed:
                callback(result)

        client.invoke(op, callback=on_reply)

    def _maybe_crash(self, point: str) -> bool:
        if self.crash_point == point:
            self.crash_point = None
            self.crashed = True
            self._active = None
            self._count("driver_crashes")
            for client in self.clients.values():
                client.cancel_pending()
            return True
        return False

    def _mig_payload(self, rec: MoveRecord, reply: bytes, step: str):
        """The ST_MIG payload of a reply, or None after failing the move."""
        if is_tx_reply(reply):
            tx = decode_tx_reply(reply)
            if tx.status == ST_MIG:
                return tx.payload
            self._fail(rec, f"{step}: {tx.message or f'status {tx.status}'}")
            return None
        self._fail(rec, f"{step}: non-migration reply")
        return None

    def _owner_of(self, unit) -> int:
        if unit[0] == "range":
            return self.directory.owner_of_range(unit[1], unit[2])
        return self.directory.shard_of_table(unit[1])

    # -- the protocol, step by step -------------------------------------------

    def _start(self, unit, dst: int, on_done) -> bytes:
        if self.busy:
            raise ShardError("rebalancer is busy")
        if self.crashed:
            raise ShardError("rebalancer crashed; resume() it")
        if not 0 <= dst < len(self.groups):
            raise ShardError(f"no shard {dst} in this deployment")
        src = self._owner_of(unit)
        if src == dst:
            raise ShardError(f"unit {unit} already lives on shard {dst}")
        self._seq += 1
        mig_id = md5_digest(
            b"migration" + self._seq.to_bytes(8, "big") + repr(unit).encode()
        )
        rec = MoveRecord(mig_id, unit, src, dst, on_done)
        rec.started_at = self.sim.now
        self._active = rec
        self._count("moves_started")
        self._freeze(rec)
        return mig_id

    def _freeze(self, rec: MoveRecord) -> None:
        self._invoke(
            rec.src, encode_mig_freeze(rec.mig_id, rec.unit, rec.dst),
            lambda reply: self._on_frozen(rec, reply),
        )

    def _on_frozen(self, rec: MoveRecord, reply: bytes) -> None:
        payload = self._mig_payload(rec, reply, "freeze")
        if payload is None:
            return
        holders = list(decode_freeze_payload(payload))
        if holders:
            rec.drain_polls += 1
            if rec.drain_polls > self.drain_poll_limit:
                self._fail(rec, "prepared holders would not drain")
                return
            self._drain(rec, holders)
            return
        if self._maybe_crash("after_freeze"):
            return
        self._begin(rec)

    def _drain(self, rec: MoveRecord, holders: list) -> None:
        """Presumed-abort the prepared transactions still holding the unit:
        RESOLVE each at its coordinator, deliver the outcome at the source,
        then re-freeze to observe what is left."""
        if not holders:
            self.sim.schedule(self.drain_poll_ns, lambda: self._freeze(rec))
            return
        txid, coordinator = holders.pop(0)

        def on_resolved(reply: bytes) -> None:
            decision = DECISION_ABORT
            if is_tx_reply(reply):
                tx = decode_tx_reply(reply)
                if tx.status == ST_DECISION:
                    decision = tx.decision
            outcome = (
                encode_commit(txid)
                if decision == DECISION_COMMIT
                else encode_abort(txid)
            )
            self._invoke(rec.src, outcome, lambda _r: self._drain(rec, holders))

        self._count("holders_drained")
        self._invoke(coordinator, encode_resolve(txid), on_resolved)

    def _begin(self, rec: MoveRecord) -> None:
        self._invoke(
            rec.dst, encode_mig_begin(rec.mig_id, rec.unit, rec.src),
            lambda reply: (
                None if self._mig_payload(rec, reply, "begin") is None
                else self._copy(rec, cursor=0, chunk_index=0)
            ),
        )

    def _copy(self, rec: MoveRecord, cursor: int, chunk_index: int) -> None:
        self._invoke(
            rec.src, encode_mig_export(rec.mig_id, cursor, self.chunk_budget),
            lambda reply: self._on_exported(rec, chunk_index, reply),
        )

    def _on_exported(self, rec: MoveRecord, chunk_index: int, reply: bytes) -> None:
        payload = self._mig_payload(rec, reply, "export")
        if payload is None:
            return
        chunk, next_cursor, done = decode_export_payload(payload)
        self._invoke(
            rec.dst, encode_mig_install(rec.mig_id, chunk_index, chunk),
            lambda r: self._on_installed(rec, next_cursor, chunk_index, done, r),
        )

    def _on_installed(self, rec: MoveRecord, next_cursor: int,
                      chunk_index: int, done: bool, reply: bytes) -> None:
        if self._mig_payload(rec, reply, "install") is None:
            return
        rec.chunks += 1
        if not done:
            self._copy(rec, next_cursor, chunk_index + 1)
            return
        if self._maybe_crash("after_copy"):
            return
        self._activate(rec)

    def _activate(self, rec: MoveRecord) -> None:
        if rec.version == 0:
            rec.version = self.directory.version + 1
        self._invoke(
            rec.dst, encode_mig_activate(rec.mig_id, rec.unit, rec.version),
            lambda reply: self._on_activated(rec, reply),
        )

    def _on_activated(self, rec: MoveRecord, reply: bytes) -> None:
        if self._mig_payload(rec, reply, "activate") is None:
            return
        if self._maybe_crash("after_activate"):
            return
        self._start_checkpoint_wait(rec)

    def _start_checkpoint_wait(self, rec: MoveRecord) -> None:
        rec.target_exec = max(
            replica.last_exec for replica in self.groups[rec.dst].replicas
        )
        self._await_checkpoint(rec)

    def _await_checkpoint(self, rec: MoveRecord) -> None:
        """Hold the purge until the activation is checkpoint-stable at the
        destination: f+1 replicas reporting stable >= target means at
        least one *correct* replica holds a 2f+1 stability certificate
        covering the activation and every install before it."""
        if self.crashed:
            return
        group = self.groups[rec.dst]
        stables = sorted(
            (replica.checkpoints.stable_seq for replica in group.replicas),
            reverse=True,
        )
        if stables[group.config.f] >= rec.target_exec:
            self._commit(rec)
            return
        rec.ckpt_polls += 1
        if rec.ckpt_polls > self.checkpoint_poll_limit:
            self._fail(rec, "destination checkpoint never stabilized")
            return
        # An ordered no-op (STATUS) nudges the sequence number toward the
        # next checkpoint boundary even if the group is otherwise idle.
        self._invoke(
            rec.dst, encode_mig_status(rec.mig_id),
            lambda _r: self.sim.schedule(
                self.checkpoint_poll_ns, lambda: self._await_checkpoint(rec)
            ),
        )

    def _commit(self, rec: MoveRecord) -> None:
        self._invoke(
            rec.src,
            encode_mig_commit(rec.mig_id, rec.unit, rec.dst, rec.version),
            lambda reply: (
                None if self._mig_payload(rec, reply, "commit") is None
                else self._publish(rec)
            ),
        )

    def _publish(self, rec: MoveRecord) -> None:
        unit = rec.unit
        if unit[0] == "range":
            self.directory.apply_move(unit[1], unit[2], rec.dst, rec.version)
        else:
            self.directory.apply_table(unit[1], rec.dst, rec.version)
        rec.state = "done"
        rec.finished_at = self.sim.now
        self._active = None
        self.history.append(rec)
        self._count("moves_completed")
        if rec.on_done is not None:
            rec.on_done(rec)

    def _fail(self, rec: MoveRecord, reason: str) -> None:
        """Cancel on both sides (thawing whatever froze), then report."""
        rec.state = "failed"
        rec.reason = reason
        self._count("moves_failed")
        self._invoke(
            rec.src, encode_mig_abort(rec.mig_id),
            lambda _r: self._invoke(
                rec.dst, encode_mig_abort(rec.mig_id),
                lambda _r2: self._finish_failed(rec),
            ),
        )

    def _finish_failed(self, rec: MoveRecord) -> None:
        rec.finished_at = self.sim.now
        self._active = None
        self.history.append(rec)
        if rec.on_done is not None:
            rec.on_done(rec)
