"""The per-shard transaction wrapper: 2PC participant state, replicated.

:class:`ShardTxApplication` wraps any :class:`~repro.pbft.replica.Application`
and adds the shard-side half of the cross-shard commit protocol
(Basil-style: BFT groups as 2PC participants, see DESIGN.md §9).  The
protocol messages are ordinary operations ordered through the group's own
PBFT log — PREPARE, COMMIT, ABORT, DECIDE, RESOLVE — so every replica of
a group processes them in the same order and the transaction tables at
the replicas of one shard never diverge.

Safety rests on two rules:

* a transaction's **decision** (commit or abort) is recorded exactly once,
  by whichever DECIDE or RESOLVE op is ordered *first* in the coordinator
  shard's log — later writers get the recorded decision back, they cannot
  flip it;
* an **abort tombstone** outlives the prepared entry, so a late PREPARE
  retransmission for an aborted transaction is refused instead of
  re-acquiring locks forever.

All transaction state (prepared entries, lock table, outcomes, decisions)
lives in pages reserved at the front of the wrapped application's state
partition, so checkpoints, rollback, and state transfer carry it exactly
like application data: a replica that catches up via state transfer also
catches up on locks.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.common.errors import StateError
from repro.common.units import MICROSECOND
from repro.pbft.replica import Application
from repro.pbft.wire import Decoder, Encoder

# -- operation opcodes (first byte; 0xFF is the middleware's) -----------------
TXOP_PREPARE = 0xB1
TXOP_COMMIT = 0xB2
TXOP_ABORT = 0xB3
TXOP_DECIDE = 0xB4
TXOP_RESOLVE = 0xB5
TXOP_STATUS = 0xB6
TXOP_FORGET = 0xB7

_TX_OPS = frozenset(
    (TXOP_PREPARE, TXOP_COMMIT, TXOP_ABORT, TXOP_DECIDE, TXOP_RESOLVE,
     TXOP_STATUS, TXOP_FORGET)
)

# -- shard-layer reply marker --------------------------------------------------
# Replies from the transaction layer start with this byte so routers can
# tell them apart from inner-application replies (which start 0x00-0x03).
REPLY_MAGIC = 0xB0

ST_OK = 0x01
ST_LOCKED = 0x02
ST_TOMBSTONE = 0x03
ST_DECISION = 0x04
ST_UNKNOWN = 0x05
ST_ERR = 0x00

DECISION_ABORT = 0
DECISION_COMMIT = 1

TXID_BYTES = 16

_STATE_MAGIC = 0x54585331  # "TXS1"


# -- operation encoding (used by routers and tests) ---------------------------

def encode_prepare(
    txid: bytes,
    coordinator: int,
    participants: Iterable[int],
    ops: Iterable[bytes],
    lock_keys: Iterable[bytes],
) -> bytes:
    enc = Encoder().u8(TXOP_PREPARE).raw(txid).u16(coordinator)
    enc.sequence(list(participants), lambda e, s: e.u16(s))
    enc.sequence(list(ops), lambda e, op: e.blob(op))
    enc.sequence(list(lock_keys), lambda e, k: e.blob(k))
    return enc.finish()


def encode_commit(txid: bytes) -> bytes:
    return Encoder().u8(TXOP_COMMIT).raw(txid).finish()


def encode_abort(txid: bytes) -> bytes:
    return Encoder().u8(TXOP_ABORT).raw(txid).finish()


def encode_decide(txid: bytes, decision: int) -> bytes:
    return Encoder().u8(TXOP_DECIDE).raw(txid).u8(decision).finish()


def encode_resolve(txid: bytes) -> bytes:
    return Encoder().u8(TXOP_RESOLVE).raw(txid).finish()


def encode_status(txid: bytes) -> bytes:
    return Encoder().u8(TXOP_STATUS).raw(txid).finish()


def encode_forget(txid: bytes) -> bytes:
    return Encoder().u8(TXOP_FORGET).raw(txid).finish()


class TxReply:
    """A decoded shard-layer reply."""

    __slots__ = ("status", "decision", "holder_txid", "holder_coordinator",
                 "inner_replies", "message")

    def __init__(self, status: int, decision: int = 0, holder_txid: bytes = b"",
                 holder_coordinator: int = 0, inner_replies=(), message: str = ""):
        self.status = status
        self.decision = decision
        self.holder_txid = holder_txid
        self.holder_coordinator = holder_coordinator
        self.inner_replies = inner_replies
        self.message = message


def is_tx_reply(reply: bytes) -> bool:
    return bool(reply) and reply[0] == REPLY_MAGIC


def decode_tx_reply(reply: bytes) -> TxReply:
    dec = Decoder(reply)
    if dec.u8() != REPLY_MAGIC:
        raise StateError("not a shard-layer reply")
    status = dec.u8()
    if status == ST_LOCKED:
        return TxReply(status, holder_txid=dec.raw(TXID_BYTES),
                       holder_coordinator=dec.u16())
    if status == ST_DECISION:
        return TxReply(status, decision=dec.u8())
    if status == ST_OK:
        count = dec.u32()
        return TxReply(status, inner_replies=tuple(dec.blob() for _ in range(count)))
    if status == ST_ERR:
        return TxReply(status, message=dec.blob().decode())
    return TxReply(status)


def _reply(status: int) -> bytes:
    return bytes((REPLY_MAGIC, status, 0, 0, 0, 0))  # u32 zero inner count


def _reply_ok(inner_replies: Iterable[bytes] = ()) -> bytes:
    enc = Encoder().u8(REPLY_MAGIC).u8(ST_OK)
    enc.sequence(list(inner_replies), lambda e, r: e.blob(r))
    return enc.finish()


def _reply_locked(holder_txid: bytes, holder_coordinator: int) -> bytes:
    return (
        Encoder().u8(REPLY_MAGIC).u8(ST_LOCKED)
        .raw(holder_txid).u16(holder_coordinator).finish()
    )


def _reply_decision(decision: int) -> bytes:
    return Encoder().u8(REPLY_MAGIC).u8(ST_DECISION).u8(decision).finish()


def _reply_err(message: str) -> bytes:
    return Encoder().u8(REPLY_MAGIC).u8(ST_ERR).blob(message.encode()).finish()


class PreparedTx:
    """One prepared (locked, undecided) transaction at this shard."""

    __slots__ = ("client_id", "coordinator", "participants", "ops", "keys")

    def __init__(self, client_id: int, coordinator: int,
                 participants: tuple[int, ...], ops: tuple[bytes, ...],
                 keys: tuple[bytes, ...]):
        self.client_id = client_id
        self.coordinator = coordinator
        self.participants = participants
        self.ops = ops
        self.keys = keys


class ShardTxApplication(Application):
    """Wraps an application with replicated 2PC participant state.

    ``keys_of`` maps any inner operation to the lock keys it touches
    (kv keys, or ``table:<name>`` units for SQL); plain operations that
    hit a locked key are refused with a LOCKED reply carrying the holder,
    which is what lets *other* routers discover and recover stranded
    transactions.
    """

    def __init__(
        self,
        inner: Application,
        keys_of: Callable[[bytes], Iterable[bytes]],
        shard_id: int = 0,
        tx_pages: int = 8,
        retain_limit: int = 256,
    ) -> None:
        if tx_pages < 1:
            raise StateError("the transaction table needs at least one page")
        self.inner = inner
        self.keys_of = keys_of
        self.shard_id = shard_id
        self.tx_pages = tx_pages
        # Presumed-abort garbage collection keeps the replicated tables
        # bounded: finished outcomes and abort decisions beyond this many
        # entries are dropped oldest-first.  Commit decisions are only
        # dropped by TXOP_FORGET (sent by the router once every
        # participant acked the outcome) or, as a last resort, past a 4x
        # hard cap — forgetting an unacked commit is the one eviction
        # that could cost atomicity, so it gets the widest margin.
        self.retain_limit = retain_limit
        self.state = None
        self.tx_offset = 0
        self.tx_bytes = 0
        self._prepared: dict[bytes, PreparedTx] = {}
        self._locks: dict[bytes, bytes] = {}  # lock key -> holder txid
        self._outcomes: dict[bytes, int] = {}  # participant-side: applied result
        self._decisions: dict[bytes, int] = {}  # coordinator-side: the decision
        self._accumulated_ns = 0
        self._stats = None
        self._tracer = None
        self._track = ""

    # -- Application plumbing -------------------------------------------------

    def bind_state(self, state, app_offset: int) -> None:
        self.state = state
        self.tx_offset = app_offset
        self.tx_bytes = self.tx_pages * state.page_size
        if app_offset + self.tx_bytes >= state.size:
            raise StateError("transaction table leaves no room for the application")
        self.inner.bind_state(state, app_offset + self.tx_bytes)
        self._load_from_state()

    def attach_obs(self, obs, track: str) -> None:
        registry = getattr(obs, "registry", None)
        if registry is not None:
            self._stats = registry.view(f"{track}.shard.")
        self._tracer = getattr(obs, "tracer", None)
        self._track = track
        self.inner.attach_obs(obs, track)

    def on_state_installed(self) -> None:
        self._load_from_state()
        self.inner.on_state_installed()

    def authorize_join(self, idbuf: bytes):
        return self.inner.authorize_join(idbuf)

    def execute_cost_ns(self, op: bytes, readonly: bool) -> int:
        if op and op[0] in _TX_OPS:
            return 3 * MICROSECOND
        return self.inner.execute_cost_ns(op, readonly)

    def take_accumulated_cost(self) -> int:
        cost = self._accumulated_ns + self.inner.take_accumulated_cost()
        self._accumulated_ns = 0
        return cost

    def _count(self, name: str) -> None:
        if self._stats is not None:
            self._stats[name] += 1

    def _mark(self, phase: str, txid: bytes) -> None:
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.event(
                self._track, f"tx.{phase}", cat="shard",
                args={"txid": txid.hex()[:8], "shard": self.shard_id},
            )

    # -- execution ------------------------------------------------------------

    def execute(self, op: bytes, client_id: int, nondet_ts: int, readonly: bool) -> bytes:
        kind = op[0] if op else 0
        if kind not in _TX_OPS:
            # A plain single-shard operation: honor transaction locks so
            # isolation holds between the direct path and the 2PC path.
            for key in self.keys_of(op):
                holder = self._locks.get(key)
                if holder is not None:
                    self._count("lock_conflicts")
                    entry = self._prepared[holder]
                    return _reply_locked(holder, entry.coordinator)
            return self.inner.execute(op, client_id, nondet_ts, readonly)
        dec = Decoder(op)
        dec.u8()
        txid = dec.raw(TXID_BYTES)
        if kind == TXOP_PREPARE:
            return self._on_prepare(dec, txid, client_id)
        if kind == TXOP_COMMIT:
            return self._on_commit(txid, nondet_ts)
        if kind == TXOP_ABORT:
            return self._on_abort(txid)
        if kind == TXOP_DECIDE:
            return self._on_decide(txid, dec.u8())
        if kind == TXOP_RESOLVE:
            return self._on_resolve(txid)
        if kind == TXOP_FORGET:
            return self._on_forget(txid)
        return self._on_status(txid)

    def _on_prepare(self, dec: Decoder, txid: bytes, client_id: int) -> bytes:
        self._count("prepares")
        outcome = self._outcomes.get(txid)
        if outcome == DECISION_ABORT:
            # Tombstone: the transaction was aborted here; a retransmitted
            # PREPARE must not re-acquire locks.
            return _reply(ST_TOMBSTONE)
        if outcome == DECISION_COMMIT or txid in self._prepared:
            return _reply_ok()  # idempotent re-prepare
        coordinator = dec.u16()
        participants = tuple(dec.u16() for _ in range(dec.u32()))
        ops = tuple(dec.blob() for _ in range(dec.u32()))
        keys = tuple(dec.blob() for _ in range(dec.u32()))
        for key in keys:
            holder = self._locks.get(key)
            if holder is not None and holder != txid:
                self._count("lock_conflicts")
                entry = self._prepared[holder]
                return _reply_locked(holder, entry.coordinator)
        self._prepared[txid] = PreparedTx(client_id, coordinator, participants, ops, keys)
        for key in keys:
            self._locks[key] = txid
        self._persist()
        self._mark("prepare", txid)
        return _reply_ok()

    def _on_commit(self, txid: bytes, nondet_ts: int) -> bytes:
        outcome = self._outcomes.get(txid)
        if outcome == DECISION_COMMIT:
            return _reply_ok()  # idempotent
        if outcome == DECISION_ABORT:
            # The atomicity bug invariant #6 hunts for: refuse loudly.
            return _reply_err("commit after abort")
        entry = self._prepared.pop(txid, None)
        if entry is None:
            return _reply_err("commit for unprepared transaction")
        self._count("commits")
        replies = []
        for inner_op in entry.ops:
            self._accumulated_ns += self.inner.execute_cost_ns(inner_op, False)
            replies.append(
                self.inner.execute(inner_op, entry.client_id, nondet_ts, False)
            )
        self._release_locks(txid, entry)
        self._outcomes[txid] = DECISION_COMMIT
        self._gc()
        self._persist()
        self._mark("commit", txid)
        return _reply_ok(replies)

    def _on_abort(self, txid: bytes) -> bytes:
        outcome = self._outcomes.get(txid)
        if outcome == DECISION_COMMIT:
            return _reply_err("abort after commit")
        if outcome == DECISION_ABORT:
            return _reply_ok()  # idempotent
        self._count("aborts")
        entry = self._prepared.pop(txid, None)
        if entry is not None:
            self._release_locks(txid, entry)
        # Tombstone even when never prepared here: blocks a late PREPARE.
        self._outcomes[txid] = DECISION_ABORT
        self._gc()
        self._persist()
        self._mark("abort", txid)
        return _reply_ok()

    def _on_decide(self, txid: bytes, wanted: int) -> bytes:
        existing = self._decisions.get(txid)
        if existing is not None:
            return _reply_decision(existing)  # first writer won
        self._count("decisions")
        self._decisions[txid] = wanted
        self._gc()
        self._persist()
        self._mark("decide", txid)
        return _reply_decision(wanted)

    def _on_resolve(self, txid: bytes) -> bytes:
        existing = self._decisions.get(txid)
        if existing is not None:
            return _reply_decision(existing)
        # Presumed abort: no decision was ever durably recorded, so none
        # can have been acted upon — record abort, first writer wins.
        self._count("resolves")
        self._decisions[txid] = DECISION_ABORT
        self._gc()
        self._persist()
        self._mark("resolve", txid)
        return _reply_decision(DECISION_ABORT)

    def _on_forget(self, txid: bytes) -> bytes:
        """End of transaction: drop the decision record (presumed abort).

        Sent by the router once every participant acknowledged the
        outcome — from then on nobody can need to RESOLVE this
        transaction, and a resolve that arrives anyway presumes abort,
        which no longer matters because no participant still holds
        prepared state for it.
        """
        if self._decisions.pop(txid, None) is not None:
            self._count("forgets")
            self._persist()
            self._mark("forget", txid)
        return _reply_ok()

    def _on_status(self, txid: bytes) -> bytes:
        decision = self._decisions.get(txid)
        if decision is not None:
            return _reply_decision(decision)
        outcome = self._outcomes.get(txid)
        if outcome is not None:
            return _reply_decision(outcome)
        return _reply(ST_UNKNOWN)

    def _gc(self) -> None:
        """Bound the finished-transaction tables (oldest evicted first).

        Dict insertion order is identical at every replica of the group
        (they execute the same operations in the same order, and the
        tables persist in insertion order), so eviction is deterministic.
        Dropping an old outcome only weakens idempotency for extremely
        late duplicates; dropping an abort decision is free under
        presumed abort.  Commit decisions outlive both — see
        ``retain_limit`` in ``__init__``.
        """
        while len(self._outcomes) > self.retain_limit:
            del self._outcomes[next(iter(self._outcomes))]
        if len(self._decisions) > self.retain_limit:
            for txid in [
                t for t, d in self._decisions.items() if d == DECISION_ABORT
            ]:
                if len(self._decisions) <= self.retain_limit:
                    break
                del self._decisions[txid]
        while len(self._decisions) > 4 * self.retain_limit:
            del self._decisions[next(iter(self._decisions))]

    def _release_locks(self, txid: bytes, entry: PreparedTx) -> None:
        for key in entry.keys:
            if self._locks.get(key) == txid:
                del self._locks[key]

    # -- inspection (harness / invariant checks) ------------------------------

    def prepared_txids(self) -> tuple[bytes, ...]:
        return tuple(sorted(self._prepared))

    def prepared_entry(self, txid: bytes) -> Optional[PreparedTx]:
        return self._prepared.get(txid)

    def outcomes(self) -> dict[bytes, int]:
        return dict(self._outcomes)

    def decisions(self) -> dict[bytes, int]:
        return dict(self._decisions)

    # -- replicated persistence ----------------------------------------------

    def _persist(self) -> None:
        """Serialize the whole transaction table into the reserved pages.

        Canonical encoding: replicas reach identical bytes for identical
        logical state, so checkpoint roots agree.
        """
        enc = Encoder()
        enc.u32(len(self._prepared))
        for txid in sorted(self._prepared):
            entry = self._prepared[txid]
            enc.raw(txid).u64(entry.client_id).u16(entry.coordinator)
            enc.sequence(entry.participants, lambda e, s: e.u16(s))
            enc.sequence(entry.ops, lambda e, op: e.blob(op))
            enc.sequence(entry.keys, lambda e, k: e.blob(k))
        # Outcomes and decisions persist in insertion order, not sorted:
        # the order is itself replicated state (garbage collection evicts
        # oldest-first), so a replica that catches up via state transfer
        # must adopt it, or later evictions would diverge.  The order is
        # the same at every replica, so the encoding stays canonical.
        enc.u32(len(self._outcomes))
        for txid, outcome in self._outcomes.items():
            enc.raw(txid).u8(outcome)
        enc.u32(len(self._decisions))
        for txid, decision in self._decisions.items():
            enc.raw(txid).u8(decision)
        payload = enc.finish()
        if len(payload) + 8 > self.tx_bytes:
            raise StateError(
                f"transaction table ({len(payload)} bytes) overflows its "
                f"{self.tx_bytes}-byte reservation — raise tx_pages"
            )
        data = Encoder().u32(_STATE_MAGIC).u32(len(payload)).raw(payload).finish()
        self.state.modify(self.tx_offset, len(data))
        self.state.write(self.tx_offset, data)

    def _load_from_state(self) -> None:
        self._prepared = {}
        self._locks = {}
        self._outcomes = {}
        self._decisions = {}
        header = Decoder(self.state.read(self.tx_offset, 8))
        if header.u32() != _STATE_MAGIC:
            return  # fresh region
        length = header.u32()
        dec = Decoder(self.state.read(self.tx_offset + 8, length))
        for _ in range(dec.u32()):
            txid = dec.raw(TXID_BYTES)
            client_id = dec.u64()
            coordinator = dec.u16()
            participants = tuple(dec.u16() for _ in range(dec.u32()))
            ops = tuple(dec.blob() for _ in range(dec.u32()))
            keys = tuple(dec.blob() for _ in range(dec.u32()))
            self._prepared[txid] = PreparedTx(
                client_id, coordinator, participants, ops, keys
            )
            for key in keys:
                self._locks[key] = txid
        for _ in range(dec.u32()):
            txid = dec.raw(TXID_BYTES)
            self._outcomes[txid] = dec.u8()
        for _ in range(dec.u32()):
            txid = dec.raw(TXID_BYTES)
            self._decisions[txid] = dec.u8()
