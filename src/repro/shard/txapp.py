"""The per-shard transaction wrapper: 2PC participant state, replicated.

:class:`ShardTxApplication` wraps any :class:`~repro.pbft.replica.Application`
and adds the shard-side half of the cross-shard commit protocol
(Basil-style: BFT groups as 2PC participants, see DESIGN.md §9).  The
protocol messages are ordinary operations ordered through the group's own
PBFT log — PREPARE, COMMIT, ABORT, DECIDE, RESOLVE — so every replica of
a group processes them in the same order and the transaction tables at
the replicas of one shard never diverge.

Safety rests on two rules:

* a transaction's **decision** (commit or abort) is recorded exactly once,
  by whichever DECIDE or RESOLVE op is ordered *first* in the coordinator
  shard's log — later writers get the recorded decision back, they cannot
  flip it;
* an **abort tombstone** outlives the prepared entry, so a late PREPARE
  retransmission for an aborted transaction is refused instead of
  re-acquiring locks forever.

All transaction state (prepared entries, lock table, outcomes, decisions)
lives in pages reserved at the front of the wrapped application's state
partition, so checkpoints, rollback, and state transfer carry it exactly
like application data: a replica that catches up via state transfer also
catches up on locks.

The same wrapper carries the shard side of **live rebalancing** (DESIGN.md
§12): a *migration unit* — a kv key range or a SQL table — can be frozen
here (the source), copied chunk by chunk into another group (the
destination), activated there, and finally committed here, leaving a
**moved tombstone** that answers every later operation on the unit with a
``WRONG_SHARD`` redirect carrying the authoritative ``(unit, shard,
version)`` fact.  Every migration step is an ordinary operation ordered
through the group's PBFT log, so the replicas of a group always agree on
what is frozen, what has arrived, and what has left — and all of it
persists in the same reserved pages, so a replica that crashes and
catches up via state transfer also catches up on the migration.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.common.errors import StateError
from repro.common.units import MICROSECOND
from repro.pbft.replica import Application
from repro.pbft.wire import Decoder, Encoder
from repro.shard.directory import key_position

# -- operation opcodes (first byte; 0xFF is the middleware's) -----------------
TXOP_PREPARE = 0xB1
TXOP_COMMIT = 0xB2
TXOP_ABORT = 0xB3
TXOP_DECIDE = 0xB4
TXOP_RESOLVE = 0xB5
TXOP_STATUS = 0xB6
TXOP_FORGET = 0xB7

# Migration opcodes (live rebalancing; DESIGN.md §12).
TXOP_MIG_FREEZE = 0xB8    # source: stop writes to a unit, report lock holders
TXOP_MIG_EXPORT = 0xB9    # source: serialize one chunk of the frozen unit
TXOP_MIG_BEGIN = 0xBA     # destination: freeze the incoming unit
TXOP_MIG_INSTALL = 0xBB   # destination: apply one chunk (idempotent by index)
TXOP_MIG_ACTIVATE = 0xBC  # destination: own the unit, start serving it
TXOP_MIG_COMMIT = 0xBD    # source: purge the unit, leave a moved tombstone
TXOP_MIG_ABORT = 0xBE     # either side: cancel an in-flight migration
TXOP_MIG_STATUS = 0xBF    # either side: where did this migration get to?

_MIG_OPS = frozenset(
    (TXOP_MIG_FREEZE, TXOP_MIG_EXPORT, TXOP_MIG_BEGIN, TXOP_MIG_INSTALL,
     TXOP_MIG_ACTIVATE, TXOP_MIG_COMMIT, TXOP_MIG_ABORT, TXOP_MIG_STATUS)
)

_TX_OPS = frozenset(
    (TXOP_PREPARE, TXOP_COMMIT, TXOP_ABORT, TXOP_DECIDE, TXOP_RESOLVE,
     TXOP_STATUS, TXOP_FORGET)
) | _MIG_OPS

# -- shard-layer reply marker --------------------------------------------------
# Replies from the transaction layer start with this byte so routers can
# tell them apart from inner-application replies (which start 0x00-0x03).
REPLY_MAGIC = 0xB0

ST_OK = 0x01
ST_LOCKED = 0x02
ST_TOMBSTONE = 0x03
ST_DECISION = 0x04
ST_UNKNOWN = 0x05
ST_FROZEN = 0x06       # unit is mid-migration; retry after a short backoff
ST_WRONG_SHARD = 0x07  # unit moved away; reply carries (unit, shard, version)
ST_MIG = 0x08          # reply to a migration op; payload is op-specific

ST_ERR = 0x00

DECISION_ABORT = 0
DECISION_COMMIT = 1

TXID_BYTES = 16
MIGID_BYTES = TXID_BYTES

_STATE_MAGIC = 0x54585331  # "TXS1"

# Migration roles and phases (wire + persisted encoding).
ROLE_SRC = 0
ROLE_DST = 1

MIG_UNKNOWN = 0   # this shard holds no record of the migration
MIG_SRC_ACTIVE = 1
MIG_DST_ACTIVE = 2
MIG_MOVED = 3     # source side committed: unit purged, tombstone live
MIG_OWNED = 4     # destination side activated: unit served here

# -- migration units ----------------------------------------------------------
# A unit is what moves between groups as one atom: a kv key range in the
# 32-bit hash space, ("range", lo, hi) with half-open [lo, hi), or a whole
# SQL table, ("table", name).

UNIT_RANGE = 0
UNIT_TABLE = 1


def encode_unit(enc: Encoder, unit) -> None:
    if unit[0] == "range":
        enc.u8(UNIT_RANGE).u64(unit[1]).u64(unit[2])
    elif unit[0] == "table":
        enc.u8(UNIT_TABLE).blob(unit[1].encode())
    else:
        raise StateError(f"unknown migration unit kind {unit[0]!r}")


def decode_unit(dec: Decoder):
    kind = dec.u8()
    if kind == UNIT_RANGE:
        return ("range", dec.u64(), dec.u64())
    if kind == UNIT_TABLE:
        return ("table", dec.blob().decode())
    raise StateError(f"unknown migration unit wire kind {kind}")


def unit_covers(unit, lock_key: bytes) -> bool:
    """Does a migration unit cover this lock key?

    Range units cover kv keys by hash position (the same position the
    directory routes by); table units cover exactly the ``table:<name>``
    lock unit the SQL ``keys_of`` emits.
    """
    if unit[0] == "range":
        return unit[1] <= key_position(lock_key) < unit[2]
    return lock_key == b"table:" + unit[1].encode()


# -- operation encoding (used by routers and tests) ---------------------------

def encode_prepare(
    txid: bytes,
    coordinator: int,
    participants: Iterable[int],
    ops: Iterable[bytes],
    lock_keys: Iterable[bytes],
) -> bytes:
    enc = Encoder().u8(TXOP_PREPARE).raw(txid).u16(coordinator)
    enc.sequence(list(participants), lambda e, s: e.u16(s))
    enc.sequence(list(ops), lambda e, op: e.blob(op))
    enc.sequence(list(lock_keys), lambda e, k: e.blob(k))
    return enc.finish()


def encode_commit(txid: bytes) -> bytes:
    return Encoder().u8(TXOP_COMMIT).raw(txid).finish()


def encode_abort(txid: bytes) -> bytes:
    return Encoder().u8(TXOP_ABORT).raw(txid).finish()


def encode_decide(txid: bytes, decision: int) -> bytes:
    return Encoder().u8(TXOP_DECIDE).raw(txid).u8(decision).finish()


def encode_resolve(txid: bytes) -> bytes:
    return Encoder().u8(TXOP_RESOLVE).raw(txid).finish()


def encode_status(txid: bytes) -> bytes:
    return Encoder().u8(TXOP_STATUS).raw(txid).finish()


def encode_forget(txid: bytes) -> bytes:
    return Encoder().u8(TXOP_FORGET).raw(txid).finish()


# -- migration op encoding (used by the rebalancer and tests) -----------------

def encode_mig_freeze(mig_id: bytes, unit, dst: int) -> bytes:
    enc = Encoder().u8(TXOP_MIG_FREEZE).raw(mig_id)
    encode_unit(enc, unit)
    return enc.u16(dst).finish()


def encode_mig_export(mig_id: bytes, cursor: int, budget: int) -> bytes:
    return (
        Encoder().u8(TXOP_MIG_EXPORT).raw(mig_id)
        .u64(cursor).u32(budget).finish()
    )


def encode_mig_begin(mig_id: bytes, unit, src: int) -> bytes:
    enc = Encoder().u8(TXOP_MIG_BEGIN).raw(mig_id)
    encode_unit(enc, unit)
    return enc.u16(src).finish()


def encode_mig_install(mig_id: bytes, chunk_index: int, chunk: bytes) -> bytes:
    return (
        Encoder().u8(TXOP_MIG_INSTALL).raw(mig_id)
        .u32(chunk_index).blob(chunk).finish()
    )


def encode_mig_activate(mig_id: bytes, unit, version: int) -> bytes:
    enc = Encoder().u8(TXOP_MIG_ACTIVATE).raw(mig_id)
    encode_unit(enc, unit)
    return enc.u32(version).finish()


def encode_mig_commit(mig_id: bytes, unit, dst: int, version: int) -> bytes:
    enc = Encoder().u8(TXOP_MIG_COMMIT).raw(mig_id)
    encode_unit(enc, unit)
    return enc.u16(dst).u32(version).finish()


def encode_mig_abort(mig_id: bytes) -> bytes:
    return Encoder().u8(TXOP_MIG_ABORT).raw(mig_id).finish()


def encode_mig_status(mig_id: bytes) -> bytes:
    return Encoder().u8(TXOP_MIG_STATUS).raw(mig_id).finish()


# -- migration reply payloads (inside an ST_MIG reply) ------------------------

def decode_freeze_payload(payload: bytes) -> tuple:
    """FREEZE reply: the prepared transactions still holding locks on the
    unit, as (txid, coordinator_shard) pairs — the rebalancer drains or
    presumed-abort-resolves these before exporting."""
    dec = Decoder(payload)
    return tuple(
        (dec.raw(TXID_BYTES), dec.u16()) for _ in range(dec.u32())
    )


def decode_export_payload(payload: bytes):
    """EXPORT reply: (chunk, next_cursor, done)."""
    dec = Decoder(payload)
    next_cursor = dec.u64()
    done = bool(dec.u8())
    return dec.blob(), next_cursor, done


def decode_install_payload(payload: bytes):
    """INSTALL reply: (applied, chunks_done)."""
    dec = Decoder(payload)
    return bool(dec.u8()), dec.u32()


def decode_status_payload(payload: bytes):
    """STATUS reply: (phase, chunks_done) — phase is one of the MIG_*
    constants."""
    dec = Decoder(payload)
    return dec.u8(), dec.u32()


class TxReply:
    """A decoded shard-layer reply."""

    __slots__ = ("status", "decision", "holder_txid", "holder_coordinator",
                 "inner_replies", "message", "unit", "shard", "version",
                 "payload")

    def __init__(self, status: int, decision: int = 0, holder_txid: bytes = b"",
                 holder_coordinator: int = 0, inner_replies=(), message: str = "",
                 unit=None, shard: int = 0, version: int = 0,
                 payload: bytes = b""):
        self.status = status
        self.decision = decision
        self.holder_txid = holder_txid
        self.holder_coordinator = holder_coordinator
        self.inner_replies = inner_replies
        self.message = message
        self.unit = unit
        self.shard = shard
        self.version = version
        self.payload = payload


def is_tx_reply(reply: bytes) -> bool:
    return bool(reply) and reply[0] == REPLY_MAGIC


def decode_tx_reply(reply: bytes) -> TxReply:
    dec = Decoder(reply)
    if dec.u8() != REPLY_MAGIC:
        raise StateError("not a shard-layer reply")
    status = dec.u8()
    if status == ST_LOCKED:
        return TxReply(status, holder_txid=dec.raw(TXID_BYTES),
                       holder_coordinator=dec.u16())
    if status == ST_DECISION:
        return TxReply(status, decision=dec.u8())
    if status == ST_OK:
        count = dec.u32()
        return TxReply(status, inner_replies=tuple(dec.blob() for _ in range(count)))
    if status == ST_WRONG_SHARD:
        unit = decode_unit(dec)
        return TxReply(status, unit=unit, shard=dec.u16(), version=dec.u32())
    if status == ST_MIG:
        return TxReply(status, payload=dec.blob())
    if status == ST_ERR:
        return TxReply(status, message=dec.blob().decode())
    return TxReply(status)


def _reply(status: int) -> bytes:
    return bytes((REPLY_MAGIC, status, 0, 0, 0, 0))  # u32 zero inner count


def _reply_ok(inner_replies: Iterable[bytes] = ()) -> bytes:
    enc = Encoder().u8(REPLY_MAGIC).u8(ST_OK)
    enc.sequence(list(inner_replies), lambda e, r: e.blob(r))
    return enc.finish()


def _reply_locked(holder_txid: bytes, holder_coordinator: int) -> bytes:
    return (
        Encoder().u8(REPLY_MAGIC).u8(ST_LOCKED)
        .raw(holder_txid).u16(holder_coordinator).finish()
    )


def _reply_decision(decision: int) -> bytes:
    return Encoder().u8(REPLY_MAGIC).u8(ST_DECISION).u8(decision).finish()


def _reply_err(message: str) -> bytes:
    return Encoder().u8(REPLY_MAGIC).u8(ST_ERR).blob(message.encode()).finish()


def _reply_wrong_shard(unit, shard: int, version: int) -> bytes:
    enc = Encoder().u8(REPLY_MAGIC).u8(ST_WRONG_SHARD)
    encode_unit(enc, unit)
    return enc.u16(shard).u32(version).finish()


def _reply_mig(payload: bytes = b"") -> bytes:
    return Encoder().u8(REPLY_MAGIC).u8(ST_MIG).blob(payload).finish()


class Migration:
    """One in-flight migration this shard participates in (either role)."""

    __slots__ = ("mig_id", "role", "unit", "peer", "chunks_done")

    def __init__(self, mig_id: bytes, role: int, unit, peer: int,
                 chunks_done: int = 0):
        self.mig_id = mig_id
        self.role = role
        self.unit = unit
        self.peer = peer
        self.chunks_done = chunks_done


class PreparedTx:
    """One prepared (locked, undecided) transaction at this shard."""

    __slots__ = ("client_id", "coordinator", "participants", "ops", "keys")

    def __init__(self, client_id: int, coordinator: int,
                 participants: tuple[int, ...], ops: tuple[bytes, ...],
                 keys: tuple[bytes, ...]):
        self.client_id = client_id
        self.coordinator = coordinator
        self.participants = participants
        self.ops = ops
        self.keys = keys


class ShardTxApplication(Application):
    """Wraps an application with replicated 2PC participant state.

    ``keys_of`` maps any inner operation to the lock keys it touches
    (kv keys, or ``table:<name>`` units for SQL); plain operations that
    hit a locked key are refused with a LOCKED reply carrying the holder,
    which is what lets *other* routers discover and recover stranded
    transactions.
    """

    def __init__(
        self,
        inner: Application,
        keys_of: Callable[[bytes], Iterable[bytes]],
        shard_id: int = 0,
        tx_pages: int = 8,
        retain_limit: int = 256,
    ) -> None:
        if tx_pages < 1:
            raise StateError("the transaction table needs at least one page")
        self.inner = inner
        self.keys_of = keys_of
        self.shard_id = shard_id
        self.tx_pages = tx_pages
        # Presumed-abort garbage collection keeps the replicated tables
        # bounded: finished outcomes and abort decisions beyond this many
        # entries are dropped oldest-first.  Commit decisions are only
        # dropped by TXOP_FORGET (sent by the router once every
        # participant acked the outcome) or, as a last resort, past a 4x
        # hard cap — forgetting an unacked commit is the one eviction
        # that could cost atomicity, so it gets the widest margin.
        self.retain_limit = retain_limit
        self.state = None
        self.tx_offset = 0
        self.tx_bytes = 0
        self._prepared: dict[bytes, PreparedTx] = {}
        self._locks: dict[bytes, bytes] = {}  # lock key -> holder txid
        self._outcomes: dict[bytes, int] = {}  # participant-side: applied result
        self._decisions: dict[bytes, int] = {}  # coordinator-side: the decision
        # Live rebalancing (DESIGN.md §12), all replicated alongside the
        # transaction tables:
        #   _migrations — in-flight migrations (either role); their units
        #     are frozen: writes are refused with ST_FROZEN until the
        #     migration commits, aborts, or (destination) activates.
        #   _moved — source-side tombstones: the unit left, every later
        #     op on it draws a WRONG_SHARD redirect with the new home.
        #   _owned — destination-side facts: the unit arrived and is
        #     served here (makes ACTIVATE/INSTALL re-drives idempotent).
        # Moved/owned facts are healing accelerators capped oldest-first
        # at ``moved_retain_limit`` — the authoritative placement is the
        # published directory, which every new router clones.
        self._migrations: dict[bytes, Migration] = {}
        self._moved: dict[bytes, tuple] = {}  # mig_id -> (unit, dst, version)
        self._owned: dict[bytes, tuple] = {}  # mig_id -> (unit, version)
        self.moved_retain_limit = 64
        self._accumulated_ns = 0
        self._stats = None
        self._tracer = None
        self._track = ""

    # -- Application plumbing -------------------------------------------------

    def bind_state(self, state, app_offset: int) -> None:
        self.state = state
        self.tx_offset = app_offset
        self.tx_bytes = self.tx_pages * state.page_size
        if app_offset + self.tx_bytes >= state.size:
            raise StateError("transaction table leaves no room for the application")
        self.inner.bind_state(state, app_offset + self.tx_bytes)
        self._load_from_state()

    def attach_obs(self, obs, track: str) -> None:
        registry = getattr(obs, "registry", None)
        if registry is not None:
            self._stats = registry.view(f"{track}.shard.")
        self._tracer = getattr(obs, "tracer", None)
        self._track = track
        self.inner.attach_obs(obs, track)

    def on_state_installed(self) -> None:
        self._load_from_state()
        self.inner.on_state_installed()

    def authorize_join(self, idbuf: bytes):
        return self.inner.authorize_join(idbuf)

    def execute_cost_ns(self, op: bytes, readonly: bool) -> int:
        if op and op[0] in _MIG_OPS:
            # Chunk transfer charges the bulk cost via take_accumulated_cost.
            return 10 * MICROSECOND
        if op and op[0] in _TX_OPS:
            return 3 * MICROSECOND
        return self.inner.execute_cost_ns(op, readonly)

    def take_accumulated_cost(self) -> int:
        cost = self._accumulated_ns + self.inner.take_accumulated_cost()
        self._accumulated_ns = 0
        return cost

    def _count(self, name: str) -> None:
        if self._stats is not None:
            self._stats[name] += 1

    def _mark(self, phase: str, txid: bytes) -> None:
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.event(
                self._track, f"tx.{phase}", cat="shard",
                args={"txid": txid.hex()[:8], "shard": self.shard_id},
            )

    # -- execution ------------------------------------------------------------

    def execute(self, op: bytes, client_id: int, nondet_ts: int, readonly: bool) -> bytes:
        kind = op[0] if op else 0
        if kind not in _TX_OPS:
            # A plain single-shard operation: honor migration state first
            # (a moved unit redirects, a frozen unit refuses writes), then
            # transaction locks, so isolation holds between the direct
            # path and the 2PC path.
            if self._moved or self._migrations:
                block = self._migration_block(tuple(self.keys_of(op)), readonly)
                if block is not None:
                    return block
            for key in self.keys_of(op):
                holder = self._locks.get(key)
                if holder is not None:
                    self._count("lock_conflicts")
                    entry = self._prepared[holder]
                    return _reply_locked(holder, entry.coordinator)
            return self.inner.execute(op, client_id, nondet_ts, readonly)
        dec = Decoder(op)
        dec.u8()
        txid = dec.raw(TXID_BYTES)
        if kind == TXOP_PREPARE:
            return self._on_prepare(dec, txid, client_id)
        if kind == TXOP_COMMIT:
            return self._on_commit(txid, nondet_ts)
        if kind == TXOP_ABORT:
            return self._on_abort(txid)
        if kind == TXOP_DECIDE:
            return self._on_decide(txid, dec.u8())
        if kind == TXOP_RESOLVE:
            return self._on_resolve(txid)
        if kind == TXOP_FORGET:
            return self._on_forget(txid)
        if kind == TXOP_MIG_FREEZE:
            return self._on_mig_freeze(dec, txid)
        if kind == TXOP_MIG_EXPORT:
            return self._on_mig_export(dec, txid)
        if kind == TXOP_MIG_BEGIN:
            return self._on_mig_begin(dec, txid)
        if kind == TXOP_MIG_INSTALL:
            return self._on_mig_install(dec, txid)
        if kind == TXOP_MIG_ACTIVATE:
            return self._on_mig_activate(dec, txid)
        if kind == TXOP_MIG_COMMIT:
            return self._on_mig_commit(dec, txid)
        if kind == TXOP_MIG_ABORT:
            return self._on_mig_abort(txid)
        if kind == TXOP_MIG_STATUS:
            return self._on_mig_status(txid)
        return self._on_status(txid)

    def _migration_block(self, keys, readonly: bool):
        """The migration-layer verdict for an op touching ``keys``:
        a WRONG_SHARD redirect (unit moved away), an ST_FROZEN refusal
        (unit mid-migration), or None (proceed).

        Reads stay allowed on a *source*-frozen unit — the data is still
        authoritative here until MIG_COMMIT purges it, and no write can
        change it meanwhile.  A *destination* unit refuses reads too: its
        data is half-installed until MIG_ACTIVATE.
        """
        for key in keys:
            for unit, dst, version in self._moved.values():
                if unit_covers(unit, key):
                    self._count("wrong_shard_replies")
                    return _reply_wrong_shard(unit, dst, version)
            for mig in self._migrations.values():
                if (not readonly or mig.role == ROLE_DST) and \
                        unit_covers(mig.unit, key):
                    self._count("frozen_refusals")
                    return _reply(ST_FROZEN)
        return None

    def _on_prepare(self, dec: Decoder, txid: bytes, client_id: int) -> bytes:
        self._count("prepares")
        outcome = self._outcomes.get(txid)
        if outcome == DECISION_ABORT:
            # Tombstone: the transaction was aborted here; a retransmitted
            # PREPARE must not re-acquire locks.
            return _reply(ST_TOMBSTONE)
        if outcome == DECISION_COMMIT or txid in self._prepared:
            return _reply_ok()  # idempotent re-prepare
        coordinator = dec.u16()
        participants = tuple(dec.u16() for _ in range(dec.u32()))
        ops = tuple(dec.blob() for _ in range(dec.u32()))
        keys = tuple(dec.blob() for _ in range(dec.u32()))
        if self._moved or self._migrations:
            # A prepare acquires locks (a write): frozen and moved units
            # both refuse, so no new holder can appear mid-migration.
            block = self._migration_block(keys, False)
            if block is not None:
                return block
        for key in keys:
            holder = self._locks.get(key)
            if holder is not None and holder != txid:
                self._count("lock_conflicts")
                entry = self._prepared[holder]
                return _reply_locked(holder, entry.coordinator)
        self._prepared[txid] = PreparedTx(client_id, coordinator, participants, ops, keys)
        for key in keys:
            self._locks[key] = txid
        self._persist()
        self._mark("prepare", txid)
        return _reply_ok()

    def _on_commit(self, txid: bytes, nondet_ts: int) -> bytes:
        outcome = self._outcomes.get(txid)
        if outcome == DECISION_COMMIT:
            return _reply_ok()  # idempotent
        if outcome == DECISION_ABORT:
            # The atomicity bug invariant #6 hunts for: refuse loudly.
            return _reply_err("commit after abort")
        entry = self._prepared.pop(txid, None)
        if entry is None:
            return _reply_err("commit for unprepared transaction")
        self._count("commits")
        replies = []
        for inner_op in entry.ops:
            self._accumulated_ns += self.inner.execute_cost_ns(inner_op, False)
            replies.append(
                self.inner.execute(inner_op, entry.client_id, nondet_ts, False)
            )
        self._release_locks(txid, entry)
        self._outcomes[txid] = DECISION_COMMIT
        self._gc()
        self._persist()
        self._mark("commit", txid)
        return _reply_ok(replies)

    def _on_abort(self, txid: bytes) -> bytes:
        outcome = self._outcomes.get(txid)
        if outcome == DECISION_COMMIT:
            return _reply_err("abort after commit")
        if outcome == DECISION_ABORT:
            return _reply_ok()  # idempotent
        self._count("aborts")
        entry = self._prepared.pop(txid, None)
        if entry is not None:
            self._release_locks(txid, entry)
        # Tombstone even when never prepared here: blocks a late PREPARE.
        self._outcomes[txid] = DECISION_ABORT
        self._gc()
        self._persist()
        self._mark("abort", txid)
        return _reply_ok()

    def _on_decide(self, txid: bytes, wanted: int) -> bytes:
        existing = self._decisions.get(txid)
        if existing is not None:
            return _reply_decision(existing)  # first writer won
        self._count("decisions")
        self._decisions[txid] = wanted
        self._gc()
        self._persist()
        self._mark("decide", txid)
        return _reply_decision(wanted)

    def _on_resolve(self, txid: bytes) -> bytes:
        existing = self._decisions.get(txid)
        if existing is not None:
            return _reply_decision(existing)
        # Presumed abort: no decision was ever durably recorded, so none
        # can have been acted upon — record abort, first writer wins.
        self._count("resolves")
        self._decisions[txid] = DECISION_ABORT
        self._gc()
        self._persist()
        self._mark("resolve", txid)
        return _reply_decision(DECISION_ABORT)

    def _on_forget(self, txid: bytes) -> bytes:
        """End of transaction: drop the decision record (presumed abort).

        Sent by the router once every participant acknowledged the
        outcome — from then on nobody can need to RESOLVE this
        transaction, and a resolve that arrives anyway presumes abort,
        which no longer matters because no participant still holds
        prepared state for it.
        """
        if self._decisions.pop(txid, None) is not None:
            self._count("forgets")
            self._persist()
            self._mark("forget", txid)
        return _reply_ok()

    def _on_status(self, txid: bytes) -> bytes:
        decision = self._decisions.get(txid)
        if decision is not None:
            return _reply_decision(decision)
        outcome = self._outcomes.get(txid)
        if outcome is not None:
            return _reply_decision(outcome)
        return _reply(ST_UNKNOWN)

    # -- migration handlers (live rebalancing, DESIGN.md §12) -----------------

    def _on_mig_freeze(self, dec: Decoder, mig_id: bytes) -> bytes:
        unit = decode_unit(dec)
        dst = dec.u16()
        if mig_id in self._moved:
            # Already committed: re-freeze is a no-op with no holders.
            return _reply_mig(Encoder().u32(0).finish())
        mig = self._migrations.get(mig_id)
        if mig is None:
            mig = Migration(mig_id, ROLE_SRC, unit, dst)
            self._migrations[mig_id] = mig
            self._count("migrations_frozen")
            self._persist()
            self._mark("mig_freeze", mig_id)
        # Report the prepared transactions still holding locks on the
        # unit; the freeze blocks new ones, the rebalancer drains these.
        holders = [
            (txid, self._prepared[txid].coordinator)
            for txid in sorted(self._prepared)
            if any(unit_covers(mig.unit, k) for k in self._prepared[txid].keys)
        ]
        enc = Encoder()
        enc.sequence(holders, lambda e, h: e.raw(h[0]).u16(h[1]))
        return _reply_mig(enc.finish())

    def _on_mig_export(self, dec: Decoder, mig_id: bytes) -> bytes:
        mig = self._migrations.get(mig_id)
        if mig is None or mig.role != ROLE_SRC:
            return _reply_err("export without an active source migration")
        for txid, entry in self._prepared.items():
            if any(unit_covers(mig.unit, k) for k in entry.keys):
                return _reply_err("export before prepared holders drained")
        cursor = dec.u64()
        budget = dec.u32()
        export = getattr(self.inner, "migrate_export", None)
        if export is None:
            return _reply_err("application does not support migration")
        # Deterministic: the unit is frozen, so every replica serializes
        # the identical chunk for the identical (cursor, budget).
        chunk, next_cursor, done = export(mig.unit, cursor, budget)
        self._accumulated_ns += 2 * len(chunk)
        self._count("chunks_exported")
        enc = Encoder().u64(next_cursor).u8(1 if done else 0).blob(chunk)
        return _reply_mig(enc.finish())

    def _on_mig_begin(self, dec: Decoder, mig_id: bytes) -> bytes:
        unit = decode_unit(dec)
        src = dec.u16()
        if mig_id in self._owned:
            return _reply_mig()  # already activated; re-drive is a no-op
        if mig_id not in self._migrations:
            self._migrations[mig_id] = Migration(mig_id, ROLE_DST, unit, src)
            self._count("migrations_incoming")
            self._persist()
            self._mark("mig_begin", mig_id)
        return _reply_mig()

    def _on_mig_install(self, dec: Decoder, mig_id: bytes) -> bytes:
        chunk_index = dec.u32()
        chunk = dec.blob()
        mig = self._migrations.get(mig_id)
        if mig is None:
            if mig_id in self._owned:
                # Post-activation re-drive: everything is already in.
                return _reply_mig(Encoder().u8(0).u32(0).finish())
            return _reply_err("install without MIG_BEGIN")
        if mig.role != ROLE_DST:
            return _reply_err("install at the migration source")
        if chunk_index < mig.chunks_done:
            # A rebalancer re-driving after a crash re-exports from
            # cursor 0; chunks already installed dedupe by index.
            self._count("chunks_deduped")
            return _reply_mig(Encoder().u8(0).u32(mig.chunks_done).finish())
        if chunk_index > mig.chunks_done:
            return _reply_err(
                f"install gap: chunk {chunk_index} after {mig.chunks_done}"
            )
        install = getattr(self.inner, "migrate_install", None)
        if install is None:
            return _reply_err("application does not support migration")
        install(mig.unit, chunk)
        self._accumulated_ns += 2 * len(chunk)
        mig.chunks_done += 1
        self._count("chunks_installed")
        self._persist()
        return _reply_mig(Encoder().u8(1).u32(mig.chunks_done).finish())

    def _on_mig_activate(self, dec: Decoder, mig_id: bytes) -> bytes:
        unit = decode_unit(dec)
        version = dec.u32()
        if mig_id in self._owned:
            return _reply_mig()  # idempotent
        mig = self._migrations.get(mig_id)
        if mig is None or mig.role != ROLE_DST:
            return _reply_err("activate without an incoming migration")
        del self._migrations[mig_id]
        self._owned[mig_id] = (unit, version)
        self._trim_facts()
        self._count("migrations_activated")
        self._persist()
        self._mark("mig_activate", mig_id)
        return _reply_mig()

    def _on_mig_commit(self, dec: Decoder, mig_id: bytes) -> bytes:
        unit = decode_unit(dec)
        dst = dec.u16()
        version = dec.u32()
        if mig_id in self._moved:
            return _reply_mig()  # idempotent
        mig = self._migrations.get(mig_id)
        if mig is None or mig.role != ROLE_SRC:
            return _reply_err("commit without an active source migration")
        purge = getattr(self.inner, "migrate_purge", None)
        if purge is None:
            return _reply_err("application does not support migration")
        purge(mig.unit)
        del self._migrations[mig_id]
        self._moved[mig_id] = (mig.unit, dst, version)
        self._trim_facts()
        self._count("migrations_committed")
        self._persist()
        self._mark("mig_commit", mig_id)
        return _reply_mig()

    def _on_mig_abort(self, mig_id: bytes) -> bytes:
        mig = self._migrations.pop(mig_id, None)
        if mig is not None:
            if mig.role == ROLE_DST:
                # Drop the half-installed copy; the source still has it all.
                purge = getattr(self.inner, "migrate_purge", None)
                if purge is not None:
                    purge(mig.unit)
            self._count("migrations_aborted")
            self._persist()
            self._mark("mig_abort", mig_id)
        return _reply_mig()

    def _on_mig_status(self, mig_id: bytes) -> bytes:
        if mig_id in self._moved:
            phase, chunks = MIG_MOVED, 0
        elif mig_id in self._owned:
            phase, chunks = MIG_OWNED, 0
        else:
            mig = self._migrations.get(mig_id)
            if mig is None:
                phase, chunks = MIG_UNKNOWN, 0
            else:
                phase = MIG_SRC_ACTIVE if mig.role == ROLE_SRC else MIG_DST_ACTIVE
                chunks = mig.chunks_done
        return _reply_mig(Encoder().u8(phase).u32(chunks).finish())

    def _trim_facts(self) -> None:
        while len(self._moved) > self.moved_retain_limit:
            del self._moved[next(iter(self._moved))]
            self._count("moved_facts_evicted")
        while len(self._owned) > self.moved_retain_limit:
            del self._owned[next(iter(self._owned))]

    def _gc(self) -> None:
        """Bound the finished-transaction tables (oldest evicted first).

        Dict insertion order is identical at every replica of the group
        (they execute the same operations in the same order, and the
        tables persist in insertion order), so eviction is deterministic.
        Dropping an old outcome only weakens idempotency for extremely
        late duplicates; dropping an abort decision is free under
        presumed abort.  Commit decisions outlive both — see
        ``retain_limit`` in ``__init__``.
        """
        while len(self._outcomes) > self.retain_limit:
            del self._outcomes[next(iter(self._outcomes))]
        if len(self._decisions) > self.retain_limit:
            for txid in [
                t for t, d in self._decisions.items() if d == DECISION_ABORT
            ]:
                if len(self._decisions) <= self.retain_limit:
                    break
                del self._decisions[txid]
        while len(self._decisions) > 4 * self.retain_limit:
            del self._decisions[next(iter(self._decisions))]

    def _release_locks(self, txid: bytes, entry: PreparedTx) -> None:
        for key in entry.keys:
            if self._locks.get(key) == txid:
                del self._locks[key]

    # -- inspection (harness / invariant checks) ------------------------------

    def prepared_txids(self) -> tuple[bytes, ...]:
        return tuple(sorted(self._prepared))

    def prepared_entry(self, txid: bytes) -> Optional[PreparedTx]:
        return self._prepared.get(txid)

    def outcomes(self) -> dict[bytes, int]:
        return dict(self._outcomes)

    def decisions(self) -> dict[bytes, int]:
        return dict(self._decisions)

    def migrations(self) -> dict[bytes, tuple]:
        """In-flight migrations: mig_id -> (role, unit, peer, chunks_done)."""
        return {
            mig_id: (mig.role, mig.unit, mig.peer, mig.chunks_done)
            for mig_id, mig in self._migrations.items()
        }

    def moved_units(self) -> dict[bytes, tuple]:
        """Source-side tombstones: mig_id -> (unit, dst_shard, version)."""
        return dict(self._moved)

    def owned_units(self) -> dict[bytes, tuple]:
        """Destination-side facts: mig_id -> (unit, version)."""
        return dict(self._owned)

    def frozen_units(self) -> tuple:
        return tuple(mig.unit for mig in self._migrations.values())

    # -- replicated persistence ----------------------------------------------

    def _persist(self) -> None:
        """Serialize the whole transaction table into the reserved pages.

        Canonical encoding: replicas reach identical bytes for identical
        logical state, so checkpoint roots agree.
        """
        enc = Encoder()
        enc.u32(len(self._prepared))
        for txid in sorted(self._prepared):
            entry = self._prepared[txid]
            enc.raw(txid).u64(entry.client_id).u16(entry.coordinator)
            enc.sequence(entry.participants, lambda e, s: e.u16(s))
            enc.sequence(entry.ops, lambda e, op: e.blob(op))
            enc.sequence(entry.keys, lambda e, k: e.blob(k))
        # Outcomes and decisions persist in insertion order, not sorted:
        # the order is itself replicated state (garbage collection evicts
        # oldest-first), so a replica that catches up via state transfer
        # must adopt it, or later evictions would diverge.  The order is
        # the same at every replica, so the encoding stays canonical.
        enc.u32(len(self._outcomes))
        for txid, outcome in self._outcomes.items():
            enc.raw(txid).u8(outcome)
        enc.u32(len(self._decisions))
        for txid, decision in self._decisions.items():
            enc.raw(txid).u8(decision)
        # Migration state persists in insertion order too (moved/owned
        # facts are evicted oldest-first, so the order is itself state).
        enc.u32(len(self._migrations))
        for mig_id, mig in self._migrations.items():
            enc.raw(mig_id).u8(mig.role)
            encode_unit(enc, mig.unit)
            enc.u16(mig.peer).u32(mig.chunks_done)
        enc.u32(len(self._moved))
        for mig_id, (unit, dst, version) in self._moved.items():
            enc.raw(mig_id)
            encode_unit(enc, unit)
            enc.u16(dst).u32(version)
        enc.u32(len(self._owned))
        for mig_id, (unit, version) in self._owned.items():
            enc.raw(mig_id)
            encode_unit(enc, unit)
            enc.u32(version)
        payload = enc.finish()
        if len(payload) + 8 > self.tx_bytes:
            raise StateError(
                f"transaction table ({len(payload)} bytes) overflows its "
                f"{self.tx_bytes}-byte reservation — raise tx_pages"
            )
        data = Encoder().u32(_STATE_MAGIC).u32(len(payload)).raw(payload).finish()
        self.state.modify(self.tx_offset, len(data))
        self.state.write(self.tx_offset, data)

    def _load_from_state(self) -> None:
        self._prepared = {}
        self._locks = {}
        self._outcomes = {}
        self._decisions = {}
        self._migrations = {}
        self._moved = {}
        self._owned = {}
        header = Decoder(self.state.read(self.tx_offset, 8))
        if header.u32() != _STATE_MAGIC:
            return  # fresh region
        length = header.u32()
        dec = Decoder(self.state.read(self.tx_offset + 8, length))
        for _ in range(dec.u32()):
            txid = dec.raw(TXID_BYTES)
            client_id = dec.u64()
            coordinator = dec.u16()
            participants = tuple(dec.u16() for _ in range(dec.u32()))
            ops = tuple(dec.blob() for _ in range(dec.u32()))
            keys = tuple(dec.blob() for _ in range(dec.u32()))
            self._prepared[txid] = PreparedTx(
                client_id, coordinator, participants, ops, keys
            )
            for key in keys:
                self._locks[key] = txid
        for _ in range(dec.u32()):
            txid = dec.raw(TXID_BYTES)
            self._outcomes[txid] = dec.u8()
        for _ in range(dec.u32()):
            txid = dec.raw(TXID_BYTES)
            self._decisions[txid] = dec.u8()
        if dec.finished():
            return  # state persisted before migrations existed
        for _ in range(dec.u32()):
            mig_id = dec.raw(MIGID_BYTES)
            role = dec.u8()
            unit = decode_unit(dec)
            peer = dec.u16()
            chunks_done = dec.u32()
            self._migrations[mig_id] = Migration(mig_id, role, unit, peer,
                                                 chunks_done)
        for _ in range(dec.u32()):
            mig_id = dec.raw(MIGID_BYTES)
            unit = decode_unit(dec)
            self._moved[mig_id] = (unit, dec.u16(), dec.u32())
        for _ in range(dec.u32()):
            mig_id = dec.raw(MIGID_BYTES)
            unit = decode_unit(dec)
            self._owned[mig_id] = (unit, dec.u32())
