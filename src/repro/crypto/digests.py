"""MD5 digests — the hash the original PBFT codebase used.

MD5 is of course broken as a cryptographic hash today; we keep it for
fidelity to the system under study.  Everything takes digests through this
module so swapping the primitive is a one-line change.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

DIGEST_SIZE = 16


def md5_digest(data: bytes) -> bytes:
    """Digest a byte string."""
    return hashlib.md5(data).digest()


def digest_parts(parts: Iterable[bytes]) -> bytes:
    """Digest the concatenation of ``parts`` without building it in memory."""
    h = hashlib.md5()
    for part in parts:
        h.update(part)
    return h.digest()
