"""Cryptographic substrate.

Matches the primitives of the original PBFT implementation (paper section
2.1): MD5 digests, UMAC32-style message authentication codes combined into
per-replica *authenticators*, and the Rabin cryptosystem for asymmetric
signatures.  Section 3.3.1's proposed remedy — an (f+1, n) threshold
signature scheme — is implemented in :mod:`repro.crypto.threshold`.

Two layers:

* **functional** — the operations really compute and really verify, so a
  corrupted message genuinely fails authentication in tests;
* **cost** — every operation has a simulated CPU cost
  (:class:`repro.crypto.costs.CryptoCosts`); the signature >> MAC asymmetry
  is what produces the paper's Table 1 throughput collapse when MACs are
  disabled.
"""

from repro.crypto.digests import md5_digest, digest_parts, DIGEST_SIZE
from repro.crypto.mac import MacKey, compute_mac, verify_mac, MAC_SIZE
from repro.crypto.authenticators import Authenticator, make_authenticator, verify_authenticator
from repro.crypto.rabin import RabinKeyPair, RabinPublicKey, rabin_generate, rabin_sign, rabin_verify
from repro.crypto.threshold import (
    ThresholdScheme,
    ThresholdShare,
    PartialSignature,
    threshold_setup,
    threshold_sign_partial,
    threshold_combine,
    threshold_verify,
)
from repro.crypto.costs import CryptoCosts

__all__ = [
    "md5_digest",
    "digest_parts",
    "DIGEST_SIZE",
    "MacKey",
    "compute_mac",
    "verify_mac",
    "MAC_SIZE",
    "Authenticator",
    "make_authenticator",
    "verify_authenticator",
    "RabinKeyPair",
    "RabinPublicKey",
    "rabin_generate",
    "rabin_sign",
    "rabin_verify",
    "ThresholdScheme",
    "ThresholdShare",
    "PartialSignature",
    "threshold_setup",
    "threshold_sign_partial",
    "threshold_combine",
    "threshold_verify",
    "CryptoCosts",
]
