"""UMAC32-style message authentication codes.

The original PBFT uses UMAC32: a fast universal-hash MAC with a 32-bit tag.
We reproduce the *interface and tag size* with HMAC-MD5 truncated to four
bytes; the simulated cost model (:mod:`repro.crypto.costs`) carries the
"MACs are ~3 orders of magnitude cheaper than signatures" property that the
paper's Table 1 turns on.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.common.errors import CryptoError
from repro.common.hotpath import HOTPATH

MAC_SIZE = 4
_KEY_SIZE = 16
_MD5_BLOCK = 64  # MD5 block size; HMAC pads/xors the key to this width.


class MacKey:
    """A shared symmetric session key between one client and one replica."""

    __slots__ = ("key", "_iproto", "_oproto")

    def __init__(self, key: bytes) -> None:
        if len(key) != _KEY_SIZE:
            raise CryptoError(f"MAC key must be {_KEY_SIZE} bytes, got {len(key)}")
        self.key = key
        # Lazily built inner/outer MD5 states with the HMAC key schedule
        # (key xor ipad / key xor opad) already absorbed; compute_mac()
        # copies them instead of re-deriving the schedule per tag.  The
        # construction H((K^opad) || H((K^ipad) || data)) is HMAC by
        # definition, so the tags are byte-identical to hmac.new()'s.
        self._iproto = None
        self._oproto = None

    @staticmethod
    def generate(rng) -> "MacKey":
        """Generate a key from a deterministic RNG stream."""
        return MacKey(bytes(rng.randrange(256) for _ in range(_KEY_SIZE)))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MacKey) and hmac.compare_digest(self.key, other.key)

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:
        return f"MacKey({self.key[:4].hex()}..)"


def compute_mac(key: MacKey, data: bytes) -> bytes:
    """Compute the 4-byte tag over ``data``."""
    if HOTPATH.enabled:
        iproto = key._iproto
        if iproto is None:
            block = key.key.ljust(_MD5_BLOCK, b"\0")
            iproto = key._iproto = hashlib.md5(bytes(b ^ 0x36 for b in block))
            key._oproto = hashlib.md5(bytes(b ^ 0x5C for b in block))
        inner = iproto.copy()
        inner.update(data)
        outer = key._oproto.copy()
        outer.update(inner.digest())
        return outer.digest()[:MAC_SIZE]
    return hmac.new(key.key, data, hashlib.md5).digest()[:MAC_SIZE]


def verify_mac(key: MacKey, data: bytes, tag: bytes) -> bool:
    """Constant-time check of a 4-byte tag."""
    if len(tag) != MAC_SIZE:
        return False
    return hmac.compare_digest(compute_mac(key, data), tag)
