"""Authenticators: one MAC per replica, attached to a single message.

This is the optimization Castro & Liskov introduced to avoid public-key
signatures on the critical path (paper section 2.1).  A client (or replica)
holds a distinct session key for every replica and stamps each message with
a vector of MACs — each replica checks only its own entry.

The paper's section 2.3 shows the dark side: a restarted replica has lost
the session keys, so every authenticator in the replayed log fails to
verify until the periodic blind rebroadcast re-delivers the keys.  That
behaviour is reproduced in :mod:`repro.pbft.recovery`.
"""

from __future__ import annotations

from repro.crypto.mac import MacKey, compute_mac, verify_mac


class Authenticator:
    """A vector of per-replica MAC tags over one message digest."""

    __slots__ = ("tags",)

    def __init__(self, tags: dict[int, bytes]) -> None:
        self.tags = tags

    def tag_for(self, replica_id: int) -> bytes | None:
        return self.tags.get(replica_id)

    @property
    def size(self) -> int:
        """Wire size: 4 bytes of tag plus 2 bytes of replica id per entry."""
        return len(self.tags) * 6

    def __len__(self) -> int:
        return len(self.tags)

    def __repr__(self) -> str:
        return f"Authenticator({sorted(self.tags)})"


def make_authenticator(keys: dict[int, MacKey], data: bytes) -> Authenticator:
    """MAC ``data`` once per replica with that replica's session key."""
    return Authenticator({rid: compute_mac(key, data) for rid, key in keys.items()})


def verify_authenticator(
    key: MacKey, replica_id: int, data: bytes, auth: Authenticator
) -> bool:
    """Verify this replica's own entry; other entries are opaque to it."""
    tag = auth.tag_for(replica_id)
    if tag is None:
        return False
    return verify_mac(key, data, tag)
