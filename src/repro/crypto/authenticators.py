"""Authenticators: one MAC per replica, attached to a single message.

This is the optimization Castro & Liskov introduced to avoid public-key
signatures on the critical path (paper section 2.1).  A client (or replica)
holds a distinct session key for every replica and stamps each message with
a vector of MACs — each replica checks only its own entry.

The paper's section 2.3 shows the dark side: a restarted replica has lost
the session keys, so every authenticator in the replayed log fails to
verify until the periodic blind rebroadcast re-delivers the keys.  That
behaviour is reproduced in :mod:`repro.pbft.recovery`.
"""

from __future__ import annotations

import hmac
from collections import OrderedDict

from repro.common.hotpath import HOTPATH
from repro.crypto.mac import MAC_SIZE, MacKey, compute_mac, verify_mac


class Authenticator:
    """A vector of per-replica MAC tags over one message digest."""

    __slots__ = ("tags",)

    def __init__(self, tags: dict[int, bytes]) -> None:
        self.tags = tags

    def tag_for(self, replica_id: int) -> bytes | None:
        return self.tags.get(replica_id)

    @property
    def size(self) -> int:
        """Wire size: 4 bytes of tag plus 2 bytes of replica id per entry."""
        return len(self.tags) * 6

    def __len__(self) -> int:
        return len(self.tags)

    def __repr__(self) -> str:
        return f"Authenticator({sorted(self.tags)})"


def make_authenticator(keys: dict[int, MacKey], data: bytes) -> Authenticator:
    """MAC ``data`` once per replica with that replica's session key."""
    return Authenticator({rid: compute_mac(key, data) for rid, key in keys.items()})


class MacCache:
    """Bounded memo of MAC tags keyed by ``(session key bytes, data)``.

    A MAC is a pure function of the key and the message bytes, so the memo
    can never change a tag — only skip recomputing one.  The protocol
    recomputes the same tag constantly: the sender MACs a message once per
    replica when building an authenticator and again on retransmission,
    and every receiver re-derives its own entry to verify it.  Determinism
    is preserved because a cache hit returns exactly the bytes a fresh
    computation would.

    Eviction is FIFO over insertion order with a bound high enough that
    the working set (messages currently in flight) never thrashes.  The
    cache keys on the raw key *bytes*, so dropping and re-learning a
    session key (restart recovery, section 2.3) naturally maps onto the
    right entries: a different key means a different cache line.
    """

    __slots__ = ("max_entries", "hits", "misses", "_tags")

    def __init__(self, max_entries: int = 1 << 15) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        # OrderedDict for O(1) oldest-first eviction; a plain dict's
        # next(iter(...)) degrades to O(n) tombstone scans under churn.
        self._tags: OrderedDict[tuple[bytes, bytes], bytes] = OrderedDict()

    def __len__(self) -> int:
        return len(self._tags)

    def tag(self, key: MacKey, data: bytes) -> bytes:
        """Compute (or recall) the 4-byte tag over ``data``."""
        if not HOTPATH.enabled:
            return compute_mac(key, data)
        tags = self._tags
        cache_key = (key.key, data)
        tag = tags.get(cache_key)
        if tag is None:
            self.misses += 1
            tag = compute_mac(key, data)
            if len(tags) >= self.max_entries:
                tags.popitem(last=False)
            tags[cache_key] = tag
        else:
            self.hits += 1
        return tag

    def verify(self, key: MacKey, data: bytes, tag: bytes) -> bool:
        """Constant-time tag check through the cache."""
        if len(tag) != MAC_SIZE:
            return False
        return hmac.compare_digest(self.tag(key, data), tag)

    def authenticator(self, keys: dict[int, MacKey], data: bytes) -> Authenticator:
        """:func:`make_authenticator` through the cache."""
        tag = self.tag
        return Authenticator({rid: tag(key, data) for rid, key in keys.items()})

    def verify_authenticator(
        self, key: MacKey, replica_id: int, data: bytes, auth: Authenticator
    ) -> bool:
        """:func:`verify_authenticator` through the cache."""
        tag = auth.tag_for(replica_id)
        if tag is None:
            return False
        return self.verify(key, data, tag)

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._tags)}


def verify_authenticator(
    key: MacKey, replica_id: int, data: bytes, auth: Authenticator
) -> bool:
    """Verify this replica's own entry; other entries are opaque to it."""
    tag = auth.tag_for(replica_id)
    if tag is None:
        return False
    return verify_mac(key, data, tag)
