"""Deterministic prime generation for the Rabin and threshold schemes.

Miller-Rabin with a fixed witness schedule derived from the caller's RNG
stream keeps key generation reproducible from the simulation seed.
"""

from __future__ import annotations

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]


def is_probable_prime(n: int, rng, rounds: int = 24) -> bool:
    """Miller-Rabin primality test with ``rounds`` random witnesses."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def random_prime(bits: int, rng, congruence: tuple[int, int] | None = None) -> int:
    """Draw a random ``bits``-bit prime, optionally with ``n % mod == rem``.

    ``congruence=(mod, rem)`` supports Rabin's requirement for primes that
    are 3 mod 4 (square roots computable as ``u**((p+1)/4)``).
    """
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if congruence is not None:
            mod, rem = congruence
            candidate += (rem - candidate) % mod
            if candidate.bit_length() != bits:
                continue
        if is_probable_prime(candidate, rng):
            return candidate
