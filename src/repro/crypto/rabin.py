"""The Rabin signature scheme, as used by the original PBFT codebase.

Rabin was chosen by Castro & Liskov because verification is a single
modular squaring — far cheaper than signing, which needs a modular square
root.  We implement the standard construction:

* keys: ``n = p * q`` with ``p ≡ q ≡ 3 (mod 4)`` (Blum integers), so the
  principal square root of a quadratic residue ``u`` mod p is
  ``u**((p+1)//4) mod p``;
* signing: hash the message together with an incrementing salt until the
  hash value is a quadratic residue mod both primes, then take the CRT
  combination of the two roots;
* verification: recompute the salted hash and check ``s*s ≡ u (mod n)``.

Key sizes in the tests are small (the simulation charges the *cost model's*
time, not wall time), but the arithmetic is the real thing: forged or
corrupted signatures genuinely fail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import CryptoError
from repro.crypto.digests import md5_digest
from repro.crypto.primes import random_prime

_MAX_SALT = 1 << 16


@dataclass(frozen=True)
class RabinPublicKey:
    """The public modulus."""

    n: int

    @property
    def size_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8


@dataclass(frozen=True)
class RabinKeyPair:
    """A Rabin key pair; ``p * q == public.n``."""

    public: RabinPublicKey
    p: int
    q: int


@dataclass(frozen=True)
class RabinSignature:
    """A signature: the salt that made the hash a residue, plus the root."""

    salt: int
    root: int

    @property
    def size_bytes(self) -> int:
        return 2 + (self.root.bit_length() + 7) // 8


def rabin_generate(rng, bits: int = 512) -> RabinKeyPair:
    """Generate a key pair with a ``bits``-bit modulus."""
    if bits < 32:
        raise CryptoError("modulus too small to be meaningful")
    half = bits // 2
    p = random_prime(half, rng, congruence=(4, 3))
    q = random_prime(bits - half, rng, congruence=(4, 3))
    while q == p:
        q = random_prime(bits - half, rng, congruence=(4, 3))
    return RabinKeyPair(public=RabinPublicKey(p * q), p=p, q=q)


def _salted_value(message: bytes, salt: int, n: int) -> int:
    raw = md5_digest(message + salt.to_bytes(2, "big"))
    return int.from_bytes(raw, "big") % n


def rabin_sign(key: RabinKeyPair, message: bytes) -> RabinSignature:
    """Sign ``message``: find a salt making its hash a residue, take a root."""
    p, q, n = key.p, key.q, key.public.n
    for salt in range(_MAX_SALT):
        u = _salted_value(message, salt, n)
        if u == 0:
            continue
        # Euler's criterion mod each prime.
        if pow(u, (p - 1) // 2, p) != 1 or pow(u, (q - 1) // 2, q) != 1:
            continue
        root_p = pow(u, (p + 1) // 4, p)
        root_q = pow(u, (q + 1) // 4, q)
        # CRT combine: s ≡ root_p (mod p), s ≡ root_q (mod q).
        q_inv_p = pow(q, -1, p)
        s = (root_q + q * ((root_p - root_q) * q_inv_p % p)) % n
        return RabinSignature(salt=salt, root=s)
    raise CryptoError("could not find a quadratic-residue salt (astronomically unlikely)")


def rabin_verify(public: RabinPublicKey, message: bytes, signature: RabinSignature) -> bool:
    """Verify with one modular squaring."""
    if not 0 < signature.root < public.n:
        return False
    u = _salted_value(message, signature.salt, public.n)
    return (signature.root * signature.root) % public.n == u
