"""An (f+1, n) threshold signature scheme (paper section 3.3.1).

The paper proposes threshold signatures as the remedy for PBFT's inability
to support server-side key material: "the set of n replicas would
collectively generate a digital signature despite up to f byzantine
faults", with no replica ever holding the whole private key.

We implement a discrete-log based scheme over a Schnorr-style group:

* setup (a trusted dealer, as in Desmedt-Frankel) picks a secret exponent
  ``x``, publishes ``y = g**x mod p``, and deals Shamir shares of ``x``
  over the exponent field GF(order);
* a partial signature on message m is ``g**(share_i * H(m)) mod p``;
* any ``threshold`` partials combine by Lagrange interpolation *in the
  exponent* to ``g**(x * H(m))``;
* verification checks the combined value against ``y**H(m) mod p``.

This is a faithful mathematical model of threshold reconstruction (wrong or
missing partials make combination fail verification); it is **not** intended
as production cryptography — exactly like the paper, which proposes the
mechanism rather than a hardened implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import CryptoError
from repro.crypto.digests import md5_digest
from repro.crypto.primes import is_probable_prime, random_prime


@dataclass(frozen=True)
class ThresholdScheme:
    """Public parameters: group, generator, public value, and the threshold."""

    p: int  # safe prime: p = 2*order + 1
    order: int
    g: int
    public: int  # g**x mod p
    threshold: int
    n: int


@dataclass(frozen=True)
class ThresholdShare:
    """Replica i's Shamir share of the secret exponent."""

    index: int  # 1-based share index (0 would expose the secret)
    value: int


@dataclass(frozen=True)
class PartialSignature:
    index: int
    value: int


def _hash_to_exponent(message: bytes, order: int) -> int:
    h = int.from_bytes(md5_digest(message), "big") % order
    return h or 1


def _find_safe_prime(bits: int, rng) -> tuple[int, int]:
    """Return (p, order) with p = 2*order + 1 both prime."""
    while True:
        order = random_prime(bits - 1, rng)
        p = 2 * order + 1
        if is_probable_prime(p, rng):
            return p, order


def threshold_setup(n: int, threshold: int, rng, bits: int = 128) -> tuple[ThresholdScheme, list[ThresholdShare]]:
    """Deal shares of a fresh secret; ``threshold`` partials reconstruct.

    For PBFT the paper prescribes ``threshold = f + 1`` out of ``n = 3f+1``.
    """
    if not 1 <= threshold <= n:
        raise CryptoError(f"threshold {threshold} out of range for n={n}")
    p, order = _find_safe_prime(bits, rng)
    # A generator of the order-`order` subgroup: square any h not in {1, p-1}.
    while True:
        h = rng.randrange(2, p - 1)
        g = pow(h, 2, p)
        if g != 1:
            break
    secret = rng.randrange(1, order)
    # Shamir polynomial of degree threshold-1 over GF(order).
    coeffs = [secret] + [rng.randrange(order) for _ in range(threshold - 1)]
    shares = []
    for index in range(1, n + 1):
        value = 0
        for coeff in reversed(coeffs):
            value = (value * index + coeff) % order
        shares.append(ThresholdShare(index=index, value=value))
    scheme = ThresholdScheme(
        p=p, order=order, g=g, public=pow(g, secret, p), threshold=threshold, n=n
    )
    return scheme, shares


def threshold_sign_partial(
    scheme: ThresholdScheme, share: ThresholdShare, message: bytes
) -> PartialSignature:
    """Replica-local step: exponentiate by the share times the message hash."""
    e = _hash_to_exponent(message, scheme.order)
    return PartialSignature(
        index=share.index, value=pow(scheme.g, share.value * e % scheme.order, scheme.p)
    )


def threshold_combine(
    scheme: ThresholdScheme, partials: list[PartialSignature]
) -> int:
    """Lagrange-combine exactly ``threshold`` partials into a full signature."""
    if len({part.index for part in partials}) < scheme.threshold:
        raise CryptoError(
            f"need {scheme.threshold} distinct partials, got {len(partials)}"
        )
    chosen = sorted(partials, key=lambda part: part.index)[: scheme.threshold]
    indices = [part.index for part in chosen]
    signature = 1
    for part in chosen:
        num, den = 1, 1
        for j in indices:
            if j == part.index:
                continue
            num = num * (-j) % scheme.order
            den = den * (part.index - j) % scheme.order
        coeff = num * pow(den, -1, scheme.order) % scheme.order
        signature = signature * pow(part.value, coeff, scheme.p) % scheme.p
    return signature


def threshold_verify(scheme: ThresholdScheme, message: bytes, signature: int) -> bool:
    """Check the combined signature against the public value."""
    e = _hash_to_exponent(message, scheme.order)
    return signature == pow(scheme.public, e, scheme.p)
