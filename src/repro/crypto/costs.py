"""Simulated CPU costs of cryptographic operations.

The functional primitives in this package run in (negligible, unmetered)
host time; *simulated* time is charged through this table.  The defaults
are calibrated so the full harness reproduces the throughput ratios of the
paper's Table 1 — see EXPERIMENTS.md for the calibration notes.  The
decisive property is the asymmetry Castro & Liskov exploited and the paper
re-measures: MAC operations cost microseconds, Rabin signing costs a
goodly fraction of a millisecond, and Rabin verification sits in between
(cheap squaring, but still big-number arithmetic).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.units import MICROSECOND


@dataclass(frozen=True)
class CryptoCosts:
    """Per-operation simulated CPU time, in nanoseconds."""

    digest_base_ns: int = 1 * MICROSECOND
    digest_per_byte_ns_x100: int = 150  # 1.5 ns/byte, scaled to keep ints
    mac_ns: int = 3 * MICROSECOND
    sign_ns: int = 520 * MICROSECOND
    verify_ns: int = 40 * MICROSECOND
    threshold_partial_ns: int = 750 * MICROSECOND
    threshold_combine_ns: int = 900 * MICROSECOND

    def digest_cost(self, size: int) -> int:
        """Cost of digesting ``size`` bytes."""
        return self.digest_base_ns + (size * self.digest_per_byte_ns_x100) // 100

    def authenticator_cost(self, n_replicas: int) -> int:
        """Cost of computing a full authenticator (one MAC per replica)."""
        return self.mac_ns * n_replicas

    def scaled(self, factor: float) -> "CryptoCosts":
        """A uniformly scaled table (used by calibration sweeps)."""
        return replace(
            self,
            digest_base_ns=round(self.digest_base_ns * factor),
            digest_per_byte_ns_x100=round(self.digest_per_byte_ns_x100 * factor),
            mac_ns=round(self.mac_ns * factor),
            sign_ns=round(self.sign_ns * factor),
            verify_ns=round(self.verify_ns * factor),
            threshold_partial_ns=round(self.threshold_partial_ns * factor),
            threshold_combine_ns=round(self.threshold_combine_ns * factor),
        )
