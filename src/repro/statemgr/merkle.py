"""Incremental Merkle tree over page digests.

Stored as a flat array binary heap of digests: node 1 is the root, node i's
children are 2i and 2i+1, and the leaves (padded to a power of two) start
at index ``leaf_base``.  Updating one leaf re-hashes only its root path —
O(log n) digests per modified page, which is what makes per-checkpoint
root computation cheap when few pages changed.
"""

from __future__ import annotations

from repro.common.errors import StateError
from repro.crypto.digests import digest_parts, md5_digest

_EMPTY_LEAF = md5_digest(b"repro.merkle.empty-leaf")


class MerkleTree:
    """A fixed-capacity hash tree keyed by leaf index."""

    def __init__(self, num_leaves: int) -> None:
        if num_leaves <= 0:
            raise StateError("merkle tree needs at least one leaf")
        self.num_leaves = num_leaves
        capacity = 1
        while capacity < num_leaves:
            capacity *= 2
        self.capacity = capacity
        self.leaf_base = capacity
        self._nodes: list[bytes] = [b""] * (2 * capacity)
        self._fill_uniform(_EMPTY_LEAF)
        self.digests_computed = 0  # instrumentation for efficiency tests

    def _fill_uniform(self, leaf_digest: bytes) -> None:
        """Fill every leaf with ``leaf_digest``.

        All leaves being equal makes every internal level uniform too, so
        the whole tree needs only one digest per level — O(log n) hashing
        instead of the O(n) a node-by-node build would cost.
        """
        nodes = self._nodes
        digest = leaf_digest
        lo = self.leaf_base
        hi = 2 * self.capacity
        while True:
            for i in range(lo, hi):
                nodes[i] = digest
            if lo == 1:
                return
            digest = digest_parts((digest, digest))
            hi = lo
            lo //= 2

    @classmethod
    def uniform(cls, num_leaves: int, leaf_digest: bytes) -> "MerkleTree":
        """A tree with every leaf set to ``leaf_digest`` (fast bulk init)."""
        tree = cls(num_leaves)
        if leaf_digest != _EMPTY_LEAF:
            tree._fill_uniform(leaf_digest)
        return tree

    def update_leaf(self, index: int, digest: bytes) -> None:
        """Set leaf ``index`` and re-hash its path to the root."""
        if not 0 <= index < self.num_leaves:
            raise StateError(f"leaf index {index} out of range 0..{self.num_leaves - 1}")
        node = self.leaf_base + index
        if self._nodes[node] == digest:
            return
        self._nodes[node] = digest
        node //= 2
        while node >= 1:
            self._nodes[node] = digest_parts(
                (self._nodes[2 * node], self._nodes[2 * node + 1])
            )
            self.digests_computed += 1
            node //= 2

    def update_leaves(self, items) -> None:
        """Batch form of :meth:`update_leaf` for ``(index, digest)`` pairs.

        Writes every changed leaf first, then re-hashes the affected
        internal nodes level by level so a node shared by several dirty
        leaves is digested once instead of once per leaf.  Produces a tree
        byte-identical to applying :meth:`update_leaf` per pair (property
        tested), at a cost that approaches one digest per *distinct*
        internal node on dense batches.
        """
        nodes = self._nodes
        leaf_base = self.leaf_base
        num_leaves = self.num_leaves
        level: set[int] = set()
        for index, digest in items:
            if not 0 <= index < num_leaves:
                raise StateError(
                    f"leaf index {index} out of range 0..{num_leaves - 1}"
                )
            node = leaf_base + index
            if nodes[node] != digest:
                nodes[node] = digest
                level.add(node >> 1)
        # All leaves live on one level, so their parents do too: each pass
        # digests one whole level of distinct ancestors.  A single-leaf
        # tree has no internal nodes (the leaf *is* the root): node 0.
        level.discard(0)
        while level:
            next_level: set[int] = set()
            for node in level:
                nodes[node] = digest_parts((nodes[2 * node], nodes[2 * node + 1]))
                self.digests_computed += 1
                if node > 1:
                    next_level.add(node >> 1)
            level = next_level

    def leaf(self, index: int) -> bytes:
        if not 0 <= index < self.num_leaves:
            raise StateError(f"leaf index {index} out of range")
        return self._nodes[self.leaf_base + index]

    def node(self, node_index: int) -> bytes:
        """Raw node access (1-based heap index) — used by the tree walk."""
        if not 1 <= node_index < 2 * self.capacity:
            raise StateError(f"node index {node_index} out of range")
        return self._nodes[node_index]

    @property
    def root(self) -> bytes:
        return self._nodes[1]

    def snapshot_nodes(self) -> list[bytes]:
        """An immutable copy of all nodes (used by checkpoints)."""
        return list(self._nodes)

    @classmethod
    def from_snapshot(cls, num_leaves: int, nodes: list[bytes]) -> "MerkleTree":
        tree = cls(num_leaves)
        if len(nodes) != len(tree._nodes):
            raise StateError("snapshot size does not match tree capacity")
        tree._nodes = list(nodes)
        return tree
