"""Incremental Merkle tree over page digests.

Stored as a flat array binary heap of digests: node 1 is the root, node i's
children are 2i and 2i+1, and the leaves (padded to a power of two) start
at index ``leaf_base``.  Updating one leaf re-hashes only its root path —
O(log n) digests per modified page, which is what makes per-checkpoint
root computation cheap when few pages changed.
"""

from __future__ import annotations

from repro.common.errors import StateError
from repro.crypto.digests import digest_parts, md5_digest

_EMPTY_LEAF = md5_digest(b"repro.merkle.empty-leaf")


class MerkleTree:
    """A fixed-capacity hash tree keyed by leaf index."""

    def __init__(self, num_leaves: int) -> None:
        if num_leaves <= 0:
            raise StateError("merkle tree needs at least one leaf")
        self.num_leaves = num_leaves
        capacity = 1
        while capacity < num_leaves:
            capacity *= 2
        self.capacity = capacity
        self.leaf_base = capacity
        self._nodes: list[bytes] = [b""] * (2 * capacity)
        for i in range(capacity):
            self._nodes[self.leaf_base + i] = _EMPTY_LEAF
        for i in range(capacity - 1, 0, -1):
            self._nodes[i] = digest_parts((self._nodes[2 * i], self._nodes[2 * i + 1]))
        self.digests_computed = 0  # instrumentation for efficiency tests

    def update_leaf(self, index: int, digest: bytes) -> None:
        """Set leaf ``index`` and re-hash its path to the root."""
        if not 0 <= index < self.num_leaves:
            raise StateError(f"leaf index {index} out of range 0..{self.num_leaves - 1}")
        node = self.leaf_base + index
        if self._nodes[node] == digest:
            return
        self._nodes[node] = digest
        node //= 2
        while node >= 1:
            self._nodes[node] = digest_parts(
                (self._nodes[2 * node], self._nodes[2 * node + 1])
            )
            self.digests_computed += 1
            node //= 2

    def leaf(self, index: int) -> bytes:
        if not 0 <= index < self.num_leaves:
            raise StateError(f"leaf index {index} out of range")
        return self._nodes[self.leaf_base + index]

    def node(self, node_index: int) -> bytes:
        """Raw node access (1-based heap index) — used by the tree walk."""
        if not 1 <= node_index < 2 * self.capacity:
            raise StateError(f"node index {node_index} out of range")
        return self._nodes[node_index]

    @property
    def root(self) -> bytes:
        return self._nodes[1]

    def snapshot_nodes(self) -> list[bytes]:
        """An immutable copy of all nodes (used by checkpoints)."""
        return list(self._nodes)

    @classmethod
    def from_snapshot(cls, num_leaves: int, nodes: list[bytes]) -> "MerkleTree":
        tree = cls(num_leaves)
        if len(nodes) != len(tree._nodes):
            raise StateError("snapshot size does not match tree capacity")
        tree._nodes = list(nodes)
        return tree
