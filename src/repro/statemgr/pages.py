"""The paged state region with the notify-before-modify contract."""

from __future__ import annotations

from repro.common.errors import StateError
from repro.common.hotpath import HOTPATH
from repro.crypto.digests import md5_digest
from repro.statemgr.merkle import MerkleTree


class PagedState:
    """A continuous memory region divided into equal-length pages.

    Pages are held as immutable ``bytes`` objects, which makes copy-on-write
    checkpointing free: a snapshot is a shallow copy of the page list, and a
    later write replaces the page object rather than mutating it.

    The PBFT contract (paper section 3.2): the application "has free read
    access to it, but is required to notify the library before making
    changes to any region".  :meth:`write` enforces this — an unnotified
    write raises :class:`~repro.common.errors.StateError` instead of
    silently corrupting checkpoints, turning the paper's "havoc" into a
    detectable bug.
    """

    def __init__(self, num_pages: int, page_size: int) -> None:
        if num_pages <= 0 or page_size <= 0:
            raise StateError("num_pages and page_size must be positive")
        self.num_pages = num_pages
        self.page_size = page_size
        self.size = num_pages * page_size
        zero_page = bytes(page_size)
        self._pages: list[bytes] = [zero_page] * num_pages
        # Every page starts zeroed, so the tree is uniform: built with one
        # digest per level instead of one per page.
        self._tree = MerkleTree.uniform(num_pages, md5_digest(zero_page))
        self._notified: set[int] = set()
        self._dirty: set[int] = set()
        self.writes = 0

    # -- the application-facing contract -------------------------------------

    def modify(self, offset: int, length: int) -> None:
        """Notify the library that ``[offset, offset+length)`` may change."""
        if length < 0:
            raise StateError("modify length must be non-negative")
        self._check_range(offset, length)
        if length == 0:
            return
        first = offset // self.page_size
        last = (offset + length - 1) // self.page_size
        self._notified.update(range(first, last + 1))

    def read(self, offset: int, length: int) -> bytes:
        """Read bytes; always allowed."""
        if HOTPATH.enabled and length > 0 and offset >= 0:
            # Fast path: a read contained in one page is a single slice.
            page_size = self.page_size
            first, in_page = divmod(offset, page_size)
            end = in_page + length
            if end <= page_size and first < self.num_pages:
                return self._pages[first][in_page:end]
        self._check_range(offset, length)
        if length == 0:
            return b""
        out = []
        remaining = length
        pos = offset
        while remaining > 0:
            page_index, in_page = divmod(pos, self.page_size)
            take = min(remaining, self.page_size - in_page)
            out.append(self._pages[page_index][in_page : in_page + take])
            pos += take
            remaining -= take
        return b"".join(out)

    def write(self, offset: int, data: bytes) -> None:
        """Write bytes; every touched page must have been notified."""
        if HOTPATH.enabled and data.__class__ is bytes and data and offset >= 0:
            # Fast path: a write contained in one notified page (the common
            # case — application writes are far smaller than a page) is a
            # single slice-splice with none of the multi-page bookkeeping.
            # The notified-set membership check doubles as the bounds check:
            # modify() only ever admits in-range pages.
            page_size = self.page_size
            first, in_page = divmod(offset, page_size)
            end = in_page + len(data)
            if end <= page_size and first in self._notified:
                self.writes += 1
                old = self._pages[first]
                if len(data) == page_size:
                    self._pages[first] = data
                else:
                    self._pages[first] = old[:in_page] + data + old[end:]
                self._dirty.add(first)
                return
        self._check_range(offset, len(data))
        if not data:
            return
        first = offset // self.page_size
        last = (offset + len(data) - 1) // self.page_size
        unnotified = [p for p in range(first, last + 1) if p not in self._notified]
        if unnotified:
            raise StateError(
                f"write to pages {unnotified} without a prior modify() "
                "notification — this is the misbehaviour the paper warns "
                "would corrupt PBFT state synchronization (section 3.2)"
            )
        self.writes += 1
        if not isinstance(data, bytes):
            data = bytes(data)
        pos = offset
        remaining = memoryview(data)
        while len(remaining) > 0:
            page_index, in_page = divmod(pos, self.page_size)
            take = min(len(remaining), self.page_size - in_page)
            old = self._pages[page_index]
            new = old[:in_page] + bytes(remaining[:take]) + old[in_page + take :]
            self._pages[page_index] = new
            self._dirty.add(page_index)
            pos += take
            remaining = remaining[take:]

    # -- library-side operations ----------------------------------------------

    def refresh_tree(self) -> bytes:
        """Re-digest dirty pages into the Merkle tree; return the root.

        Only pages written since the last refresh are re-digested, and the
        batched tree update re-hashes each affected internal node once —
        a checkpoint costs O(dirty · log n) digests, not O(n).
        """
        if self._dirty:
            pages = self._pages
            if HOTPATH.enabled:
                self._tree.update_leaves(
                    (i, md5_digest(pages[i])) for i in sorted(self._dirty)
                )
            else:
                for page_index in sorted(self._dirty):
                    self._tree.update_leaf(page_index, md5_digest(pages[page_index]))
            self._dirty.clear()
        return self._tree.root

    def end_of_execution(self) -> None:
        """Reset the per-request notification window.

        The library calls this after each request executes; a page notified
        during one request must be re-notified before the next request may
        write it.
        """
        self._notified.clear()

    @property
    def root(self) -> bytes:
        """Current Merkle root (dirty pages are folded in first)."""
        return self.refresh_tree()

    @property
    def tree(self) -> MerkleTree:
        self.refresh_tree()
        return self._tree

    def page(self, index: int) -> bytes:
        if not 0 <= index < self.num_pages:
            raise StateError(f"page index {index} out of range")
        return self._pages[index]

    def install_page(self, index: int, data: bytes) -> None:
        """State transfer: overwrite a whole page, bypassing notifications."""
        if len(data) != self.page_size:
            raise StateError(
                f"page data must be exactly {self.page_size} bytes, got {len(data)}"
            )
        if not 0 <= index < self.num_pages:
            raise StateError(f"page index {index} out of range")
        self._pages[index] = data
        self._dirty.add(index)

    def snapshot_pages(self) -> list[bytes]:
        """Copy-on-write snapshot: O(num_pages) references, zero data copies."""
        self.refresh_tree()
        return list(self._pages)

    def restore(self, pages: list[bytes], tree_nodes: list[bytes] | None = None) -> None:
        """Roll the whole region back to a snapshot.

        When the caller holds the matching Merkle snapshot (checkpoints
        store both), the tree is installed directly instead of re-digesting
        every page.  ``tree_nodes`` must be the snapshot taken from the
        same page set; checkpoint construction guarantees the pairing.
        """
        if len(pages) != self.num_pages:
            raise StateError("snapshot page count mismatch")
        self._pages = list(pages)
        self._notified.clear()
        if tree_nodes is not None and HOTPATH.enabled:
            self._tree = MerkleTree.from_snapshot(self.num_pages, tree_nodes)
            self._dirty.clear()
            return
        self._dirty = set(range(self.num_pages))
        self.refresh_tree()

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise StateError(
                f"range [{offset}, {offset + length}) outside state of size {self.size}"
            )
