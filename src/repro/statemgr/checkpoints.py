"""Numbered state snapshots and their stabilization lifecycle.

PBFT takes a checkpoint every K executed requests.  A checkpoint becomes
*stable* once a replica holds 2f+1 matching checkpoint messages, at which
point the message log below it can be garbage collected and the low/high
watermarks advance (paper section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import StateError


@dataclass
class Checkpoint:
    """A copy-on-write snapshot of the state at sequence number ``seq``."""

    seq: int
    root: bytes
    pages: list[bytes]
    tree_nodes: list[bytes]
    proof: dict[int, bytes] = field(default_factory=dict)  # replica -> claimed root
    # Library bookkeeping snapshotted with the state (conceptually part of
    # the library partition pages): per-client execution watermarks etc.
    meta: dict = field(default_factory=dict)

    @property
    def stable_votes(self) -> int:
        return len(self.proof)


class CheckpointStore:
    """Holds recent checkpoints; tracks the latest stable one."""

    def __init__(self, quorum: int, max_kept: int = 4) -> None:
        if quorum <= 0:
            raise StateError("checkpoint quorum must be positive")
        self.quorum = quorum
        self.max_kept = max_kept
        self._by_seq: dict[int, Checkpoint] = {}
        self.stable_seq: int = 0
        self.stable_root: bytes | None = None

    def add(self, checkpoint: Checkpoint) -> None:
        self._by_seq[checkpoint.seq] = checkpoint
        self._trim()

    def get(self, seq: int) -> Checkpoint | None:
        return self._by_seq.get(seq)

    def latest(self) -> Checkpoint | None:
        if not self._by_seq:
            return None
        return self._by_seq[max(self._by_seq)]

    def latest_stable(self) -> Checkpoint | None:
        return self._by_seq.get(self.stable_seq)

    def record_vote(self, seq: int, replica: int, root: bytes) -> bool:
        """Record one replica's checkpoint message; returns True when the
        local checkpoint at ``seq`` just became stable."""
        checkpoint = self._by_seq.get(seq)
        if checkpoint is None:
            return False
        if root != checkpoint.root:
            return False  # divergent claim; never counts toward stability
        already_stable = seq <= self.stable_seq and self.stable_root is not None
        checkpoint.proof[replica] = root
        if checkpoint.stable_votes >= self.quorum and seq > self.stable_seq:
            self.stable_seq = seq
            self.stable_root = checkpoint.root
            self._trim()
            return not already_stable
        return False

    def _trim(self) -> None:
        # Keep the stable checkpoint plus the most recent max_kept.
        seqs = sorted(self._by_seq)
        keep = set(seqs[-self.max_kept :])
        keep.add(self.stable_seq)
        for seq in seqs:
            if seq not in keep and seq < self.stable_seq:
                del self._by_seq[seq]
