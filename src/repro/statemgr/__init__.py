"""PBFT state management substrate.

The original implementation "defines application 'state' as a single
continuous virtual memory region" split into equal pages, synchronized
across replicas with copy-on-write snapshots and a Merkle (hash) tree whose
root digest uniquely identifies the whole region (paper section 2.1).

This package reproduces that machinery:

* :class:`PagedState` — the memory region, with the library's
  notify-before-modify contract (and *detection* of the "havoc caused by a
  misbehaving application which fails to notify" that the paper warns
  about, section 3.2);
* :class:`MerkleTree` — incremental hash tree over page digests;
* :class:`CheckpointStore` — numbered snapshots, stabilization, GC;
* :func:`diff_pages` — the "efficient tree walking algorithm ... to
  identify the (hopefully few) data pages that are different".
"""

from repro.statemgr.pages import PagedState
from repro.statemgr.merkle import MerkleTree
from repro.statemgr.checkpoints import Checkpoint, CheckpointStore
from repro.statemgr.transfer import diff_pages, TreeFetchStats

__all__ = [
    "PagedState",
    "MerkleTree",
    "Checkpoint",
    "CheckpointStore",
    "diff_pages",
    "TreeFetchStats",
]
