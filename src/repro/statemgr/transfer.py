"""The tree-walking state-transfer diff.

"If a peer finds itself out of sync, an efficient tree walking algorithm is
started from the root, to identify the (hopefully few) data pages that are
different and have them retransmitted by the rest of the group."
(paper section 2.1)

:func:`diff_pages` walks a local tree against a remote one reachable only
through a digest-fetch callback, descending only into subtrees whose
digests differ.  The returned :class:`TreeFetchStats` makes the efficiency
claim testable: digests fetched is O(diff * log n), not O(n).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.statemgr.merkle import MerkleTree


@dataclass
class TreeFetchStats:
    """Instrumentation for one diff walk."""

    digests_fetched: int = 0
    pages_different: list[int] = field(default_factory=list)


def diff_pages(
    local: MerkleTree,
    fetch_remote_node: Callable[[int], bytes],
    stats: TreeFetchStats | None = None,
) -> list[int]:
    """Return leaf indices where the remote tree differs from ``local``.

    ``fetch_remote_node(node_index)`` returns the remote digest for a
    1-based heap node index; in the replica it is backed by FetchDigests
    protocol messages, in tests by a second in-memory tree.
    """
    stats = stats if stats is not None else TreeFetchStats()
    pending = [1]
    while pending:
        node = pending.pop()
        remote = fetch_remote_node(node)
        stats.digests_fetched += 1
        if remote == local.node(node):
            continue
        if node >= local.leaf_base:
            leaf = node - local.leaf_base
            if leaf < local.num_leaves:
                stats.pages_different.append(leaf)
            continue
        pending.append(2 * node + 1)
        pending.append(2 * node)
    stats.pages_different.sort()
    return stats.pages_different
