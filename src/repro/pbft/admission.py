"""Bounded admission pipeline: overload and Byzantine-client defenses.

The paper's configurations run at or beyond saturation, yet the original
middleware accepts unbounded work: any client — including a Byzantine
flooder — can enqueue arbitrarily many operations, and clients learn
about overload only through timeouts.  This module supplies the replica's
admission layer (see DESIGN.md, "Overload model and graceful
degradation"):

* a per-client in-flight cap enforcing the protocol's "one outstanding
  operation per client" rule at the primary;
* a deterministic load-shedding policy for the bounded batching queue —
  shed the *newest* request of the *heaviest* client, so a flooder sheds
  its own tail before displacing anyone else's work;
* a penalty box that mutes senders after repeated authentication
  failures (invalid-MAC / garbage floods), dropping their packets before
  the (expensive) verification step.

Everything here is deliberately free of replica state: the structures
are plain data keyed by client/sender ids, so the policy is unit-testable
and the shed set is a pure function of arrival order — same seed, same
shed set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.pbft.config import PbftConfig
from repro.pbft.messages import Request

# Verdicts from the per-client in-flight check.
ADMIT = "admit"
# The same (client, req_id) is already admitted to the queue (under a
# different digest — retransmissions of the identical request are caught
# earlier, by the queued-digest check): absorbed without consuming more
# queue space.
DUPLICATE = "duplicate"
# A *different* request while the client already has queued, not-yet-
# ordered work: the client is violating the one-outstanding-op rule;
# dropped with a BUSY reply.
CAPPED = "capped"


def pick_shed_victim(pending: list[Request], arriving: Request) -> Request:
    """The deterministic shedding policy: newest request of the heaviest client.

    The arriving request counts toward its client's load, so a flooder
    whose burst fills the queue sheds its own newest request rather than
    displacing lighter clients.  Ties break toward the higher client id —
    an arbitrary but deterministic choice, so identical arrival histories
    always produce identical shed sets.
    """
    counts: dict[int, int] = {}
    for req in pending:
        counts[req.client] = counts.get(req.client, 0) + 1
    counts[arriving.client] = counts.get(arriving.client, 0) + 1
    heaviest = max(counts, key=lambda c: (counts[c], c))
    if heaviest == arriving.client:
        return arriving
    for req in reversed(pending):
        if req.client == heaviest:
            return req
    return arriving


@dataclass
class _BoxEntry:
    strikes: int
    window_start: int
    muted_until: int


class PenaltyBox:
    """Mutes senders that keep failing authentication.

    ``threshold`` failures within one ``duration_ns`` window mute the
    sender for ``duration_ns``; while muted, its packets are dropped for
    the cost of a header peek instead of a full MAC/signature check.
    Entries are forgotten once a mute expires, so a sender that stops
    misbehaving starts from a clean slate.
    """

    def __init__(self, threshold: int, duration_ns: int) -> None:
        self.threshold = threshold
        self.duration_ns = duration_ns
        self.entries: dict[tuple[str, int], _BoxEntry] = {}

    def strike(self, key: tuple[str, int], now: int) -> bool:
        """Record an auth failure; returns True if the sender was just muted."""
        entry = self.entries.get(key)
        if entry is None:
            entry = self.entries[key] = _BoxEntry(0, now, 0)
        if now - entry.window_start > self.duration_ns:
            entry.strikes = 0
            entry.window_start = now
        entry.strikes += 1
        if entry.strikes >= self.threshold and entry.muted_until <= now:
            if self.duration_ns <= 0:
                return False
            entry.muted_until = now + self.duration_ns
            entry.strikes = 0
            return True
        return False

    def muted(self, key: tuple[str, int], now: int) -> bool:
        entry = self.entries.get(key)
        if entry is None:
            return False
        if entry.muted_until and entry.muted_until <= now:
            del self.entries[key]
            return False
        return entry.muted_until > now


class AdmissionControl:
    """Per-replica admission state: in-flight tracking and the penalty box."""

    def __init__(self, config: PbftConfig) -> None:
        self.config = config
        # client id -> req_ids admitted to the batching queue but not yet
        # assigned a sequence number; released at pre-prepare issuance.
        self.inflight: dict[int, set[int]] = {}
        self.penalty = PenaltyBox(
            config.penalty_box_threshold, config.penalty_box_ns
        )

    def inflight_verdict(self, req: Request) -> str:
        cap = self.config.max_client_inflight
        if cap <= 0:
            return ADMIT
        admitted = self.inflight.get(req.client)
        if not admitted:
            return ADMIT
        if req.req_id in admitted:
            return DUPLICATE
        if len(admitted) >= cap:
            return CAPPED
        return ADMIT

    def note_inflight(self, req: Request) -> None:
        if self.config.max_client_inflight <= 0:
            return
        self.inflight.setdefault(req.client, set()).add(req.req_id)

    def release(self, client: int, req_id: int) -> None:
        admitted = self.inflight.get(client)
        if admitted is None:
            return
        admitted.discard(req_id)
        if not admitted:
            del self.inflight[client]

    def release_client(self, client: int) -> None:
        self.inflight.pop(client, None)

    def reset_inflight(self) -> None:
        """Forget all in-flight bookkeeping (view entry, restart).

        At-most-once execution is still guaranteed by the request store;
        the cap is an overload defense, so after a reset it is simply
        re-learned from the rebuilt queue.
        """
        self.inflight.clear()

    def retry_hint_ns(self, queue_depth: int, budget: Optional[int]) -> int:
        """Retry-after hint scaled by queue pressure at rejection time."""
        base = self.config.busy_retry_hint_ns
        if not budget or budget <= 0:
            return base
        return base * max(1, (queue_depth + budget - 1) // budget)
