"""View changes: deposing a faulty primary and electing the next.

Mixin methods for :class:`repro.pbft.replica.Replica`.  The mechanics
follow the paper's section 2.1 description of the Castro-Liskov protocol:
backups monitor the primary with a timer armed whenever a known request is
outstanding; on expiry they broadcast a view-change message carrying their
stable-checkpoint proof and the set of prepared batches; the new primary
(``new_view mod n``) collects 2f+1 and installs the view with a new-view
message that re-proposes every batch that might have committed.
"""

from __future__ import annotations

from repro.pbft.messages import (
    NewViewMsg,
    PrePrepare,
    PreparedProof,
    ViewChangeMsg,
)


class ViewChangeMixin:
    """View-change behaviour, mixed into Replica."""

    # -- timer management --------------------------------------------------------

    def _arm_vc_timer(self) -> None:
        if self.crashed or self.in_view_change:
            return
        if self.wedged or self.transfer is not None:
            # A wedged or transferring replica is missing data *itself*;
            # the primary is not the suspect, and deposing it would not
            # recover the missing request bodies (paper section 2.4: the
            # replica simply waits for the next checkpoint).
            return
        if self._vc_timer is not None and self._vc_timer.pending:
            return
        self._vc_timer = self.host.sim.schedule(
            self._vc_timeout_current, self._on_vc_timeout
        )

    def _disarm_vc_timer(self) -> None:
        if self._vc_timer is not None:
            self._vc_timer.cancel()
            self._vc_timer = None
        self._vc_timeout_current = self.config.view_change_timeout_ns

    def _on_vc_timeout(self) -> None:
        if self.crashed:
            return
        self._vc_timer = None
        if not self._has_outstanding_work():
            return
        # Exponential backoff: each failed view change doubles the patience
        # granted to the next primary.
        self._vc_timeout_current *= 2
        self.start_view_change(self.view + 1)

    def _has_outstanding_work(self) -> bool:
        for slot in self.log.slots.values():
            if not slot.executed:
                return True
        if self.is_primary and self.pending_requests:
            return True
        # Prune waiting requests that got executed through another path.
        stale = {
            digest
            for digest in self.waiting_requests
            if (req := self.reqstore.get(digest)) is not None
            and self.reqstore.already_executed(req)
        }
        self.waiting_requests -= stale
        return bool(self.waiting_requests)

    # -- initiating ---------------------------------------------------------------

    def start_view_change(self, new_view: int) -> None:
        """Vote to move to ``new_view`` and stop participating in the old."""
        if new_view <= self.view or self.crashed:
            return
        self.in_view_change = True
        self.pending_new_view = new_view
        if self._vc_timer is not None:
            self._vc_timer.cancel()
            self._vc_timer = None
        self._rollback_uncommitted()
        stable = self.checkpoints.latest_stable()
        stable_seq = self.checkpoints.stable_seq
        stable_root = stable.root if stable else bytes(16)
        proof = (
            tuple(sorted(stable.proof.items())) if stable else ()
        )
        prepared = tuple(
            PreparedProof(
                seq=seq,
                view=view,
                batch_digest=pp.batch_digest,
                request_digests=pp.request_digests,
                nondet=pp.nondet,
            )
            for seq, view, pp in self.log.prepared_proofs(self.config.f)
            if seq > stable_seq
        )
        msg = ViewChangeMsg(
            new_view=new_view,
            stable_seq=stable_seq,
            stable_root=stable_root,
            checkpoint_proof=proof,
            prepared=prepared,
            sender=self.node_id,
        )
        self.view_changes.setdefault(new_view, {})[self.node_id] = msg
        self.stats["view_changes_started"] += 1
        if self.tracer.enabled:
            self.tracer.event(
                self.host.name, "view-change", cat="pbft.viewchange",
                args={"new_view": new_view},
            )
        self.broadcast_to_replicas(msg, exclude=self.node_id)
        self._maybe_install_new_view(new_view)
        # If the new primary never shows up, move on to the next view.
        self._vc_timer = self.host.sim.schedule(
            self._vc_timeout_current, self._on_vc_timeout_during_change
        )

    def _on_vc_timeout_during_change(self) -> None:
        if self.crashed or not self.in_view_change:
            return
        supporters = len(self.view_changes.get(self.pending_new_view, {}))
        if supporters <= self.config.f:
            # Nobody shares our suspicion: we are the confused party, not
            # the primary.  Abandon the view change, rejoin the current
            # view, and ask peers to retransmit whatever we missed.
            self.in_view_change = False
            self._vc_timeout_current = self.config.view_change_timeout_ns
            self.stats["view_changes_abandoned"] += 1
            self._send_status(recovering=False)
            self._execute_ready()
            if self._has_outstanding_work():
                self._arm_vc_timer()
            return
        self._vc_timeout_current *= 2
        self.in_view_change = False  # allow re-entry for the next view
        self.start_view_change(self.pending_new_view + 1)

    # -- receiving ------------------------------------------------------------------

    def on_view_change(self, msg: ViewChangeMsg) -> None:
        if msg.new_view <= self.view:
            return
        self.view_changes.setdefault(msg.new_view, {})[msg.sender] = msg
        # Liveness rule: if f+1 replicas are already asking for a higher
        # view, join the earliest such view even without a local timeout.
        if not self.in_view_change:
            for view in sorted(self.view_changes):
                if view <= self.view:
                    continue
                voters = set(self.view_changes[view])
                voters.discard(self.node_id)
                if len(voters) >= self.config.f + 1:
                    self.start_view_change(view)
                    break
        self._maybe_install_new_view(msg.new_view)

    @staticmethod
    def _compute_new_view_proposal(
        votes: dict[int, ViewChangeMsg],
    ) -> tuple[int, tuple[PreparedProof, ...]]:
        """min-s and the re-proposed O set implied by a V set of votes.

        Deterministic in the *contents* of ``votes``: iteration is sorted
        by sender and ties are broken strictly by higher view, so any
        replica holding the same view-change messages derives the same
        proposal — the basis for validating a NEW-VIEW against its
        embedded V set.
        """
        min_s = max(vc.stable_seq for vc in votes.values())
        chosen: dict[int, PreparedProof] = {}  # seq -> highest-view proof
        max_s = min_s
        for _rid, vc in sorted(votes.items()):
            for proof in vc.prepared:
                if proof.seq <= min_s:
                    continue
                best = chosen.get(proof.seq)
                if best is None or proof.view > best.view:
                    chosen[proof.seq] = proof
                max_s = max(max_s, proof.seq)
        pre_prepares = tuple(
            chosen.get(
                seq,
                PreparedProof(
                    seq=seq, view=0, batch_digest=bytes(16), noop=True
                ),
            )
            for seq in range(min_s + 1, max_s + 1)
        )
        return min_s, pre_prepares

    def _maybe_install_new_view(self, new_view: int) -> None:
        """If we are the would-be primary and have a quorum, send NEW-VIEW."""
        if self.primary_of(new_view) != self.node_id:
            return
        votes = self.view_changes.get(new_view, {})
        if len(votes) < self.config.quorum:
            return
        if self.view >= new_view:
            return
        min_s, pre_prepares = self._compute_new_view_proposal(votes)
        nv = NewViewMsg(
            view=new_view,
            view_changes=tuple(vc for _rid, vc in sorted(votes.items())),
            pre_prepares=pre_prepares,
            stable_seq=min_s,
            sender=self.node_id,
        )
        self.broadcast_to_replicas(nv, exclude=self.node_id)
        self._enter_view(new_view, nv)

    def _validate_new_view(self, msg: NewViewMsg) -> bool:
        """Check a NEW-VIEW against its embedded V set before installing.

        A correct NEW-VIEW must (a) carry quorum view-change votes for
        this exact view from distinct senders, (b) agree with any
        first-hand vote we hold from those senders, and (c) re-propose
        exactly the min-s and O set implied by the votes — otherwise a
        faulty new primary could smuggle an arbitrary batch into the new
        view or silently drop a prepared one.
        """
        votes: dict[int, ViewChangeMsg] = {}
        for vc in msg.view_changes:
            if vc.new_view != msg.view or vc.sender in votes:
                return False
            votes[vc.sender] = vc
        if len(votes) < self.config.quorum:
            return False
        first_hand = self.view_changes.get(msg.view, {})
        for rid, vc in votes.items():
            known = first_hand.get(rid)
            if known is not None and known.digest != vc.digest:
                return False  # forged or altered vote
        min_s, expected = self._compute_new_view_proposal(votes)
        return msg.stable_seq == min_s and msg.pre_prepares == expected

    def on_new_view(self, msg: NewViewMsg) -> None:
        self._note_view_evidence(msg.sender, msg.view)
        if msg.view <= self.view:
            return
        if msg.sender != self.primary_of(msg.view):
            return
        if not self._validate_new_view(msg):
            self.stats["new_views_rejected"] += 1
            if self.tracer.enabled:
                self.tracer.event(
                    self.host.name, "new-view-rejected", cat="pbft.viewchange",
                    args={"view": msg.view, "sender": msg.sender},
                )
            # The would-be primary proved itself faulty: move past it.
            self.start_view_change(msg.view + 1)
            return
        self._enter_view(msg.view, msg)

    # -- view synchronization (restart liveness) ---------------------------------------

    def _note_view_evidence(self, rid: int, view: int) -> None:
        """Track the highest view each peer has demonstrably installed.

        A restarted (or long-partitioned) replica can come back into a
        group that moved past its view while it was down.  The ordinary
        paths to learn the new view — the NEW-VIEW broadcast, or f+1
        view-change votes — are one-shot messages it already missed, and
        peers never repeat them.  Evidence of *installed* views instead
        leaks continuously: status gossip, agreement traffic, and batch
        retransmissions all carry the sender's view.  Once f+1 distinct
        peers attest to views above ours, at least one correct replica
        installed such a view, so adopting it is safe (the NEW-VIEW
        certificate already convinced a quorum; we only need the number).
        """
        if rid == self.node_id or view <= 0:
            return
        if view > self.view_evidence.get(rid, 0):
            self.view_evidence[rid] = view
        # Re-evaluate even when the evidence is not news: the threshold may
        # have been reached while we were mid-view-change (sync is deferred
        # then), and peers keep repeating the same attested view via status
        # gossip rather than ever sending a fresh, higher one.
        self._maybe_sync_view()

    def _maybe_sync_view(self) -> None:
        if self.crashed or self.in_view_change:
            return
        ahead = sorted(
            (v for v in self.view_evidence.values() if v > self.view),
            reverse=True,
        )
        if len(ahead) <= self.config.f:
            return
        # The f+1'th highest attested view: at least one attester is
        # correct, so a quorum really certified some view >= target.
        target = ahead[self.config.f]
        if target <= self.view:
            return
        if self.primary_of(target) == self.node_id:
            # We would be the primary of the target view, but we hold no
            # NEW-VIEW certificate to justify proposing in it.  Blindly
            # adopting primaryship could equivocate against the O set the
            # real certificate fixed.  Stay put: the group's view-change
            # protocol will move past us to a view we can safely follow.
            return
        self._sync_to_view(target)

    def _sync_to_view(self, view: int) -> None:
        """Adopt ``view`` without a first-hand NEW-VIEW certificate.

        Equivalent to arriving in ``view`` as a backup with an empty O set:
        roll back tentative work, reset the batching queue, and let status
        gossip plus client retransmissions rebuild the log in the new view.
        """
        self._rollback_uncommitted()
        self.view = view
        self.pending_new_view = view
        self.view_changes = {v: m for v, m in self.view_changes.items() if v > view}
        self._disarm_vc_timer()
        self.stats["view_syncs"] += 1
        if self.tracer.enabled:
            self.tracer.event(
                self.host.name, "view-sync", cat="pbft.viewchange",
                args={"view": view},
            )
        # Same queue handoff as a deposed primary entering a view as
        # backup: clients retransmit, the new primary orders.
        for req in self.pending_requests:
            self.waiting_requests.add(req.digest)
        self.pending_requests = []
        self.queued_digests = set()
        self.admission.reset_inflight()
        self._depth_gauge.set(0)
        self._send_status(recovering=self.recovering)
        if self._has_outstanding_work():
            self._arm_vc_timer()

    # -- installation ------------------------------------------------------------------

    def _enter_view(self, view: int, nv: NewViewMsg) -> None:
        """Install ``view``, re-running agreement for the re-proposed set."""
        self.view = view
        self.in_view_change = False
        self.pending_new_view = view
        self.view_changes = {v: m for v, m in self.view_changes.items() if v > view}
        self._disarm_vc_timer()
        self.stats["views_installed"] += 1
        if self.tracer.enabled:
            self.tracer.event(
                self.host.name, "new-view", cat="pbft.viewchange",
                args={"view": view},
            )
        is_primary = self.primary_of(view) == self.node_id
        highest = nv.stable_seq
        for proof in nv.pre_prepares:
            seq = proof.seq
            highest = max(highest, seq)
            if seq <= self.log.low_watermark:
                continue
            if seq > self.log.high_watermark:
                # We are behind the quorum's stable checkpoint: this slot
                # lies outside our log window.  Skip it — checkpoint and
                # status gossip will bring us up to date via state
                # transfer rather than an out-of-window log write.
                continue
            if proof.noop:
                # Explicit gap filler: no batch prepared at this number,
                # so the new view orders an empty batch there to let the
                # numbers after it execute in order.
                rebuilt = PrePrepare(
                    view=view,
                    seq=seq,
                    request_digests=(),
                    nondet=b"",
                    sender=nv.sender,
                )
            else:
                # The proof carries the batch contents, so every replica
                # can re-propose it in the new view — even one that never
                # saw the original pre-prepare.
                rebuilt = PrePrepare(
                    view=view,
                    seq=seq,
                    request_digests=proof.request_digests,
                    nondet=proof.nondet,
                    sender=nv.sender,
                )
            slot = self.log.slot(seq)
            vs = slot.view_slot(view)
            vs.pre_prepare = rebuilt
            if not slot.executed:
                if not is_primary:
                    self._send_prepare(rebuilt)
                self._maybe_prepared(seq, view)
        if is_primary:
            self.next_seq = max(self.next_seq, highest)
            # Rebuild the batching queue from scratch so pending_requests
            # and queued_digests stay an exact pair.  Carrying the old
            # queued_digests across the view boundary left stale entries
            # whenever the new view's O set re-proposed (or executed) a
            # batch we still had queued — and a stale digest permanently
            # blocks that request's re-submission, because both admission
            # and this rebuild skip digests already marked queued.
            reproposed: set[bytes] = set()
            for proof in nv.pre_prepares:
                reproposed.update(proof.request_digests)
            # The waiting set is requeued only when we have executed up
            # to the quorum's stable checkpoint.  A new primary that lags
            # behind it may hold waiting bodies whose operations already
            # executed cluster-wide; its stale execution marks cannot
            # filter them, and re-proposing one wedges the group: the
            # batch commits (no body needed to prepare), but caught-up
            # replicas GC'd the executed bodies and in-order execution
            # halts forever at the slot.  At or past the stable
            # checkpoint the marks are trustworthy — anything executed
            # elsewhere beyond them sits in a prepared slot the new view
            # carries, so the reproposed filter below catches it.  A
            # lagging primary instead waits for client retransmissions,
            # which re-check already_executed at arrival, after catch-up.
            carried = list(self.pending_requests)
            if self.last_exec >= nv.stable_seq:
                carried += [
                    self.reqstore.get(digest)
                    for digest in sorted(self.waiting_requests)
                ]
            self.pending_requests = []
            self.queued_digests = set()
            self.admission.reset_inflight()
            for req in carried:
                if req is None or self.reqstore.already_executed(req):
                    continue
                if req.digest in reproposed or req.digest in self.queued_digests:
                    continue
                self.queued_digests.add(req.digest)
                self.pending_requests.append(req)
                self.admission.note_inflight(req)
            self.waiting_requests.clear()
            self._depth_gauge.set(len(self.pending_requests))
            self._try_issue_batches()
        else:
            # A deposed primary hands its queue back to the waiting set;
            # clients retransmit and the new primary orders them.
            for req in self.pending_requests:
                self.waiting_requests.add(req.digest)
            self.pending_requests = []
            self.queued_digests = set()
            self.admission.reset_inflight()
            self._depth_gauge.set(0)
        if self._has_outstanding_work():
            self._arm_vc_timer()
