"""The PBFT middleware — the system the paper studies.

This package implements the Castro-Liskov protocol (paper section 2.1) with
the optimizations whose robustness/performance trade-offs the paper
measures, each individually toggleable from :class:`PbftConfig`:

* MAC authenticators vs. Rabin signatures;
* "big request" handling (client multicasts the body, the primary
  circulates only the digest) with a configurable size threshold — the
  default threshold of 0 treats *all* requests as big;
* request batching behind a congestion window;
* tentative execution before commit, with the matching client quorums;
* the read-only fast path.

It also implements checkpointing and state transfer over
:mod:`repro.statemgr`, view changes, replica restart/recovery (including
the authenticator staleness stall of paper section 2.3), and the BASE-style
non-determinism upcalls (section 2.5).
"""

from repro.pbft.config import PbftConfig, CostModel
from repro.pbft.messages import (
    Request,
    PrePrepare,
    Prepare,
    Commit,
    Reply,
    CheckpointMsg,
    ViewChangeMsg,
    NewViewMsg,
    StatusMsg,
    BatchRetransmit,
    FetchDigestsMsg,
    DigestsMsg,
    FetchPagesMsg,
    PagesMsg,
    AuthenticatorRefresh,
)
from repro.pbft.replica import Replica, Application, NullApplication
from repro.pbft.client import PbftClient
from repro.pbft.cluster import Cluster, build_cluster

__all__ = [
    "PbftConfig",
    "CostModel",
    "Request",
    "PrePrepare",
    "Prepare",
    "Commit",
    "Reply",
    "CheckpointMsg",
    "ViewChangeMsg",
    "NewViewMsg",
    "StatusMsg",
    "BatchRetransmit",
    "FetchDigestsMsg",
    "DigestsMsg",
    "FetchPagesMsg",
    "PagesMsg",
    "AuthenticatorRefresh",
    "Replica",
    "Application",
    "NullApplication",
    "PbftClient",
    "Cluster",
    "build_cluster",
]
