"""Non-determinism handling (paper sections 2.1 and 2.5).

The primary attaches non-deterministic data (here: its local timestamp) to
each pre-prepare via an application up-call; every replica executes with
the *same* data, keeping the state machine deterministic.  BASE added a
second up-call that *validates* the data on each backup.

Section 2.5's subtle issue lives in :class:`TimeDeltaValidator`: validating
"fresh" pre-prepares against a time delta works, but the same check fails
when a request is *replayed* during recovery, because the drift is then
large — and the original implementation cannot tell replay from normal
processing.  :class:`PbftConfig.skip_nondet_validation_on_replay` enables
the paper's proposed fix.
"""

from __future__ import annotations

import struct

from repro.net.fabric import Host

_TS = struct.Struct(">q")


def encode_timestamp(ts_ns: int) -> bytes:
    return _TS.pack(ts_ns)


def decode_timestamp(nondet: bytes) -> int:
    if len(nondet) < _TS.size:
        return 0
    return _TS.unpack_from(nondet)[0]


class TimestampProvider:
    """Primary-side up-call: attach the primary's wall clock."""

    def generate(self, host: Host) -> bytes:
        return encode_timestamp(host.local_time())


class TimeDeltaValidator:
    """Backup-side up-call: accept timestamps within a configured delta.

    ``replaying`` is True when the request is being replayed from the log
    during recovery; the original implementation has no such flag (message
    execution "is completely orthogonal to its origin"), which is what
    breaks — modelled by ``recovery_aware=False``.
    """

    def __init__(self, delta_ns: int, recovery_aware: bool = False) -> None:
        self.delta_ns = delta_ns
        self.recovery_aware = recovery_aware
        self.rejections = 0
        self.replay_rejections = 0

    def validate(self, nondet: bytes, host: Host, replaying: bool = False) -> bool:
        if replaying and self.recovery_aware:
            return True
        ts = decode_timestamp(nondet)
        ok = abs(host.local_time() - ts) <= self.delta_ns
        if not ok:
            self.rejections += 1
            if replaying:
                self.replay_rejections += 1
        return ok


class AcceptAllValidator:
    """A validator that never rejects (for configurations without one)."""

    def validate(self, nondet: bytes, host: Host, replaying: bool = False) -> bool:
        return True
