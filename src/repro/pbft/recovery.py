"""Replica recovery: restart, log replay, and checkpoint state transfer.

Mixin methods for :class:`repro.pbft.replica.Replica` covering three paper
observations:

* **section 2.3** — a restarted replica re-synchronizes to the latest
  checkpoint but cannot validate the requests remaining in the log: its
  client session keys are transient and gone, so authenticators fail until
  the clients' periodic blind rebroadcast re-delivers them.  With
  signatures instead of MACs, replay works immediately.
* **section 2.4** — a replica that missed a *big* request body commits the
  digest but wedges at execution; it is only rescued by the next
  checkpoint's state transfer.
* **section 2.5** — non-determinism validation re-runs on replayed
  requests, where the time delta is now large; unless the validator is
  recovery-aware, replay stalls.

State transfer itself is the Merkle tree walk of
:mod:`repro.statemgr.transfer`, driven over Fetch/Digests/Pages messages.
"""

from __future__ import annotations

from typing import Optional

from repro.pbft.messages import (
    BatchRetransmit,
    CheckpointMsg,
    DigestsMsg,
    FetchDigestsMsg,
    FetchPagesMsg,
    PagesMsg,
    Reply,
    StatusMsg,
)
from repro.pbft.wire import Decoder
from repro.pbft.nondet import decode_timestamp
from repro.statemgr.merkle import MerkleTree

_FETCH_NODE_BATCH = 64
_FETCH_PAGE_BATCH = 8
_RETRANSMIT_LIMIT = 64


class StateTransferTask:
    """One in-progress checkpoint fetch: tree walk, then page download."""

    def __init__(self, replica, target_seq: int, target_root: bytes, source: int) -> None:
        self.replica = replica
        self.target_seq = target_seq
        self.target_root = target_root
        self.source = source
        self.pending_nodes: list[int] = [1]
        self.outstanding_nodes: set[int] = set()
        self.diff_pages: set[int] = set()
        self.outstanding_pages: set[int] = set()
        self.walk_done = False
        self.digests_fetched = 0
        self.pages_fetched = 0
        self._progress_marker = (0, 0)

    def start(self) -> None:
        self._request_nodes()

    def retry(self) -> None:
        """Re-issue outstanding fetches if nothing arrived since the last
        check (lost datagrams would otherwise hang the transfer forever)."""
        marker = (self.digests_fetched, self.pages_fetched)
        if marker != self._progress_marker:
            self._progress_marker = marker
            return
        if not self.walk_done:
            self.pending_nodes = sorted(set(self.pending_nodes) | self.outstanding_nodes)
            self.outstanding_nodes.clear()
            self._request_nodes()
        elif self.diff_pages:
            self.outstanding_pages.clear()
            self._request_pages()

    def _request_nodes(self) -> None:
        batch = tuple(self.pending_nodes[:_FETCH_NODE_BATCH])
        del self.pending_nodes[: len(batch)]
        if not batch:
            if not self.outstanding_nodes:
                self._finish_walk()
            return
        self.outstanding_nodes.update(batch)
        self.replica.send_to_replica(
            self.source,
            FetchDigestsMsg(
                checkpoint_seq=self.target_seq,
                node_indices=batch,
                sender=self.replica.node_id,
            ),
        )

    def on_digests(self, msg: DigestsMsg) -> None:
        if msg.checkpoint_seq != self.target_seq or self.walk_done:
            return
        local_tree = self.replica.state.tree
        for node, remote_digest in msg.entries:
            self.outstanding_nodes.discard(node)
            self.digests_fetched += 1
            if remote_digest == local_tree.node(node):
                continue
            if node >= local_tree.leaf_base:
                leaf = node - local_tree.leaf_base
                if leaf < local_tree.num_leaves:
                    self.diff_pages.add(leaf)
                continue
            self.pending_nodes.append(2 * node)
            self.pending_nodes.append(2 * node + 1)
        self._request_nodes()

    def _finish_walk(self) -> None:
        self.walk_done = True
        if not self.diff_pages:
            self.replica.finish_state_transfer(self, (), ())
            return
        self._request_pages()

    def _request_pages(self) -> None:
        want = sorted(self.diff_pages - self.outstanding_pages)
        batch = tuple(want[:_FETCH_PAGE_BATCH])
        if not batch:
            return
        self.outstanding_pages.update(batch)
        self.replica.send_to_replica(
            self.source,
            FetchPagesMsg(
                checkpoint_seq=self.target_seq,
                page_indices=batch,
                sender=self.replica.node_id,
            ),
        )

    def on_pages(self, msg: PagesMsg) -> None:
        if msg.checkpoint_seq != self.target_seq:
            return
        for index, data in msg.pages:
            if index in self.diff_pages:
                self.replica.state.install_page(index, data)
                self.replica.host.charge_cpu(self.replica.costs.page_transfer_ns)
                self.diff_pages.discard(index)
                self.outstanding_pages.discard(index)
                self.pages_fetched += 1
        if msg.client_marks:
            self._marks = dict(msg.client_marks)
        if msg.client_replies:
            self._replies = dict(msg.client_replies)
        if self.diff_pages:
            self._request_pages()
            return
        marks = getattr(self, "_marks", {})
        replies = getattr(self, "_replies", {})
        self.replica.finish_state_transfer(
            self, tuple(marks.items()), tuple(replies.items())
        )


class RecoveryMixin:
    """Crash/restart, status gossip, replay and state transfer handling."""

    # -- crash & restart ------------------------------------------------------------

    def crash(self) -> None:
        """Stop the replica: close the socket, freeze all timers."""
        self.crashed = True
        self.socket.close()
        self._disarm_vc_timer()
        if self._status_timer is not None:
            self._status_timer.cancel()
            self._status_timer = None
        if self._gossip_timer is not None:
            self._gossip_timer.cancel()
            self._gossip_timer = None
        self.stats["crashes"] += 1
        if self.tracer.enabled:
            self.tracer.event(self.host.name, "crash", cat="pbft.fault")

    def restart(self) -> None:
        """Come back up from durable state only (paper section 2.3).

        Durable: the latest *stable* checkpoint (the original treats memory
        as stable storage via UPS; the SQL backend adds true disk
        durability).  Transient, and therefore lost: the message log, the
        request store, and — crucially — the client MAC session keys.
        """
        from repro.pbft.log import MessageLog, RequestStore

        self.socket = self.host.fabric.bind(self.host.name, self.socket.port)
        self.socket.on_receive(self._on_packet)
        self.crashed = False
        stable = self.checkpoints.latest_stable()
        stable_seq = self.checkpoints.stable_seq
        self.log = MessageLog(self.config.log_window)
        self.log.low_watermark = stable_seq
        self.reqstore = RequestStore()
        self.pending_requests = []
        self.queued_digests = set()
        self.admission.reset_inflight()
        self.exec_journal = {}
        self.view_changes = {}
        self.in_view_change = False
        self.wedged = False
        self.transfer = None
        self.stalled_batches = {}
        self.waiting_requests = set()
        if stable is not None:
            self.state.restore(stable.pages, stable.tree_nodes)
            self.reqstore.last_executed_req = dict(stable.meta.get("client_marks", {}))
            # Stable-checkpoint replies are final regardless of how they
            # were flagged when the checkpoint was taken.
            self.reqstore.last_reply = {
                client: reply.stabilized()
                for client, reply in stable.meta.get("client_replies", {}).items()
            }
        else:
            # No checkpoint has stabilized yet, so the durable image is the
            # genesis state.  Tentatively-executed effects must not survive
            # the crash: the fresh request store would re-execute those
            # requests on replay, double-applying them and forking this
            # replica's checkpoint roots from the quorum's.
            self.state.restore(self._genesis_pages, self._genesis_tree_nodes)
        self.last_exec = stable_seq
        self.committed_upto = stable_seq
        self.next_seq = max(self.next_seq, stable_seq)
        # Session keys: replica-replica keys re-derive from static
        # configuration; client keys are gone until AuthenticatorRefresh.
        self.drop_session_keys("client")
        self._state_installed()
        self.recovering = True
        self.recovery_started_at = self.host.sim.now
        self.recovery_target = stable_seq
        self.stats["restarts"] += 1
        if self.tracer.enabled:
            self.tracer.event(self.host.name, "restart", cat="pbft.fault")
        if self._gossip_timer is None or not self._gossip_timer.pending:
            self._gossip_timer = self.host.sim.schedule(
                self.config.status_interval_ns, self._status_gossip
            )
        self._send_status(recovering=True)
        self._schedule_status_retry()

    def _schedule_status_retry(self) -> None:
        if self._status_timer is not None and self._status_timer.pending:
            return
        self._status_timer = self.host.sim.schedule(
            self.config.status_retry_ns, self._status_retry
        )

    def _status_retry(self) -> None:
        self._status_timer = None
        if self.crashed or not self.recovering:
            return
        self._retry_stalled_batches()
        if self.recovering:
            self._send_status(recovering=True)
            self._schedule_status_retry()

    def _send_status(self, recovering: bool) -> None:
        msg = StatusMsg(
            view=self.view,
            last_exec_seq=self.last_exec,
            stable_seq=self.checkpoints.stable_seq,
            sender=self.node_id,
            recovering=recovering,
        )
        self.broadcast_to_replicas(msg, exclude=self.node_id)

    def _nudge_stale_view(self, peer: int) -> None:
        """Targeted status to a peer stuck in an older view (rate-limited)."""
        now = self.host.sim.now
        last = self._view_nudges.get(peer)
        if last is not None and now - last < self.config.status_interval_ns:
            return
        self._view_nudges[peer] = now
        self.stats["view_nudges_sent"] += 1
        self.send_to_replica(
            peer,
            StatusMsg(
                view=self.view,
                last_exec_seq=self.last_exec,
                stable_seq=self.checkpoints.stable_seq,
                sender=self.node_id,
                recovering=self.recovering,
            ),
        )

    # -- serving peers ------------------------------------------------------------

    def on_status(self, msg: StatusMsg, env=None) -> None:
        peer = msg.sender
        self._note_view_evidence(peer, msg.view)
        if msg.view < self.view:
            # The peer is operating in a view the group already left.  The
            # NEW-VIEW it missed is a one-shot nobody repeats, and if the
            # group's tail is only tentatively executed there is no
            # committed traffic to leak the view either — the seed=320
            # wedge.  Answer with our own status so the peer accumulates
            # f+1 attestations and view-syncs.
            self._nudge_stale_view(peer)
        if msg.last_exec_seq >= self.last_exec and not msg.recovering:
            return
        stable_seq = self.checkpoints.stable_seq
        if msg.last_exec_seq < stable_seq:
            # Peer is behind our log horizon: it needs state transfer.
            stable = self.checkpoints.latest_stable()
            if stable is not None:
                self.send_to_replica(
                    peer,
                    CheckpointMsg(seq=stable.seq, root=stable.root, sender=self.node_id),
                )
            return
        sent = 0
        seq = msg.last_exec_seq + 1
        # Only *committed* batches may be exported: a tentatively executed
        # batch could still be undone by a view change, and shipping it
        # with a commit certificate would launder speculation into fact.
        while seq <= self.committed_upto and sent < _RETRANSMIT_LIMIT:
            entry = self.exec_journal.get(seq)
            if entry is None:
                break
            pp, requests = entry
            # Request bodies belong to clients: peers replay them only for
            # a *recovering* replica rebuilding its log (section 2.3).  A
            # merely lagging replica gets the certificate and must already
            # hold the bodies — if a big-request body is what it lost, it
            # stays wedged until the next checkpoint (section 2.4).
            bodies = tuple(requests) if msg.recovering else tuple(
                r for r in requests if not r.big
            )
            self.send_to_replica(
                peer,
                BatchRetransmit(
                    pre_prepare=pp,
                    commit_proof=tuple(range(self.config.quorum)),
                    requests=bodies,
                    sender=self.node_id,
                ),
            )
            sent += 1
            seq += 1
        # View state is handled above: a stale-view peer got a status
        # nudge before the retransmit loop ran.

    # -- replaying batches ------------------------------------------------------------

    def on_batch_retransmit(self, msg: BatchRetransmit, env=None) -> None:
        # The journalled pre-prepare carries the view the batch executed
        # in: the exact signal a restarted replica needs to re-synchronize
        # its view (the NEW-VIEW itself was a one-shot it missed).
        self._note_view_evidence(msg.sender, msg.pre_prepare.view)
        seq = msg.pre_prepare.seq
        if seq <= self.last_exec:
            return
        if len(msg.commit_proof) < self.config.quorum:
            return
        self.recovery_target = max(self.recovery_target, seq)
        self.stalled_batches[seq] = msg
        self._retry_stalled_batches()

    def _retry_stalled_batches(self) -> None:
        """Replay contiguous stalled batches whose requests now validate."""
        for seq in [s for s in self.stalled_batches if s <= self.last_exec]:
            del self.stalled_batches[seq]
        progressed = True
        while progressed:
            progressed = False
            msg = self.stalled_batches.get(self.last_exec + 1)
            if msg is None:
                break
            if not self._replay_batch(msg):
                break
            del self.stalled_batches[msg.pre_prepare.seq]
            progressed = True
        if self.recovering and self.last_exec >= self.recovery_target:
            self._finish_recovery()

    def _replay_batch(self, msg: BatchRetransmit) -> bool:
        """Validate and execute one replayed batch; False if it must stall."""
        pp = msg.pre_prepare
        # Re-validate each client request, exactly as the original replays
        # the log.  This is where section 2.3 bites: in MAC mode a missing
        # session key fails authentication.
        for request in msg.requests:
            if not self._validate_replayed_request(request):
                self.stats["replay_auth_failures"] += 1
                return False
        # Section 2.5: non-determinism data is re-validated with no replay
        # awareness in the original implementation.
        if not self.nondet_validator.validate(pp.nondet, self.host, replaying=True):
            self.stats["replay_nondet_failures"] += 1
            return False
        for request in msg.requests:
            self.reqstore.add(request)
        # The message need not carry every body (big-request bodies come
        # from clients); the rest must already be in the request store.
        requests = [self.reqstore.get(d) for d in pp.request_digests]
        if any(r is None for r in requests):
            self._mark_wedged()
            return False
        slot = self.log.slot(pp.seq) if self.log.in_window(pp.seq) else None
        self._execute_batch(pp, requests, tentative=False, slot=slot)
        return True

    def _validate_replayed_request(self, request) -> bool:
        # Join system requests are self-certifying: the payload carries the
        # public key, and the challenge response proves address ownership.
        if request.op and request.op[0] == 0xFF:
            self.host.charge_cpu(self.costs.crypto.verify_ns)
            return True
        if self.config.use_macs:
            key = self.session_keys.get(("client", request.client))
            if key is None:
                return False
            self.host.charge_cpu(self.costs.crypto.mac_ns)
            return True
        public = self.keys.client_public(request.client)
        if public is None and self.membership is not None:
            public = self.membership.client_public(request.client)
        if public is None:
            return False
        self.host.charge_cpu(self.costs.crypto.verify_ns)
        return True

    def _finish_recovery(self) -> None:
        self.recovering = False
        self.recovery_completed_at = self.host.sim.now
        self.stats["recoveries_completed"] += 1
        if self._status_timer is not None:
            self._status_timer.cancel()
            self._status_timer = None

    # -- state transfer ------------------------------------------------------------

    def maybe_start_state_transfer(self, target_seq: int, target_root: bytes) -> None:
        """Jump forward to a stable checkpoint we missed (section 2.4)."""
        if self.transfer is not None and self.transfer.target_seq >= target_seq:
            return
        if target_seq <= self.last_exec:
            return
        source = next(
            rid for rid in range(self.config.n) if rid != self.node_id
        )
        # Prefer a replica that voted for this checkpoint root.
        votes = self.pending_votes.get(target_seq, {})
        for rid, root in sorted(votes.items()):
            if root == target_root and rid != self.node_id:
                source = rid
                break
        self.transfer = StateTransferTask(self, target_seq, target_root, source)
        self.stats["state_transfers_started"] += 1
        if self.tracer.enabled:
            self.tracer.event(
                self.host.name, "state-transfer-start", cat="pbft.transfer",
                args={"target_seq": target_seq, "source": source},
            )
        self.transfer.start()

    def transfer_is_stale(self) -> bool:
        """Drop an in-flight transfer whose target we have executed past.

        A view change can roll this replica back to its stable checkpoint
        and replay the log forward while a state transfer is still
        fetching pages.  Once ``last_exec`` reaches the transfer target
        the fetched checkpoint is *older* than the live state: installing
        its pages would rewind the pages while leaving ``last_exec`` and
        the per-client watermarks at their newer values, so re-executions
        after the next rollback are suppressed as duplicates and the
        replica forks from the quorum permanently.  The state the
        transfer was fetching is already materialized — abandon it.
        """
        if self.transfer is None or self.transfer.target_seq > self.last_exec:
            return False
        task = self.transfer
        self.transfer = None
        self.stats["state_transfers_abandoned"] += 1
        if self.tracer.enabled:
            self.tracer.event(
                self.host.name, "state-transfer-abandoned", cat="pbft.transfer",
                args={"target_seq": task.target_seq, "last_exec": self.last_exec},
            )
        return True

    def finish_state_transfer(
        self, task: StateTransferTask, client_marks, client_replies=()
    ) -> None:
        """Install the fetched checkpoint and resume from it."""
        if task.target_seq <= self.last_exec:
            # Reachable only via the no-diff walk (page installs are
            # guarded at dispatch): nothing was mutated, just drop it.
            self.transfer = None
            self.stats["state_transfers_abandoned"] += 1
            return
        root = self.state.refresh_tree()
        if root != task.target_root:
            # Wrong or stale data from the peer: retry with another source.
            self.stats["state_transfer_failures"] += 1
            self.transfer = None
            alt = (task.source + 1) % self.config.n
            if alt == self.node_id:
                alt = (alt + 1) % self.config.n
            retry = StateTransferTask(self, task.target_seq, task.target_root, alt)
            self.transfer = retry
            retry.start()
            return
        for client, req_id in client_marks:
            if self.reqstore.last_executed_req.get(client, -1) < req_id:
                self.reqstore.last_executed_req[client] = req_id
        # Adopting a client's watermark obliges us to answer its
        # retransmissions: install the checkpoint's last reply wherever it
        # is at least as recent as what we hold.  The transferred
        # checkpoint is stable, so its replies count as stable too.
        for client, data in client_replies:
            reply = Reply.decode(Decoder(data)).stabilized()
            cached = self.reqstore.last_reply.get(client)
            if cached is None or cached.req_id <= reply.req_id:
                self.reqstore.last_reply[client] = reply
        self.last_exec = max(self.last_exec, task.target_seq)
        self.committed_upto = max(self.committed_upto, task.target_seq)
        self.next_seq = max(self.next_seq, task.target_seq)
        self._clear_wedge()
        self.transfer = None
        self._state_installed()
        self._install_own_checkpoint(task.target_seq)
        self.stats["state_transfers_completed"] += 1
        self.stats["state_transfer_pages"] += task.pages_fetched
        if self.tracer.enabled:
            self.tracer.event(
                self.host.name, "state-transfer-complete", cat="pbft.transfer",
                args={"target_seq": task.target_seq, "pages": task.pages_fetched},
            )
        self._execute_ready()

    # -- answering fetches ------------------------------------------------------------

    def on_fetch_digests(self, msg: FetchDigestsMsg, env=None) -> None:
        checkpoint = self.checkpoints.get(msg.checkpoint_seq)
        if checkpoint is None:
            return
        tree = MerkleTree.from_snapshot(self.state.num_pages, checkpoint.tree_nodes)
        entries = tuple(
            (node, tree.node(node))
            for node in msg.node_indices
            if 1 <= node < 2 * tree.capacity
        )
        self.send_to_replica(
            msg.sender,
            DigestsMsg(
                checkpoint_seq=msg.checkpoint_seq, entries=entries, sender=self.node_id
            ),
        )

    def on_fetch_pages(self, msg: FetchPagesMsg, env=None) -> None:
        checkpoint = self.checkpoints.get(msg.checkpoint_seq)
        if checkpoint is None:
            return
        pages = tuple(
            (index, checkpoint.pages[index])
            for index in msg.page_indices
            if 0 <= index < len(checkpoint.pages)
        )
        marks = tuple(checkpoint.meta.get("client_marks", {}).items())
        replies = tuple(
            (client, reply.wire)
            for client, reply in checkpoint.meta.get("client_replies", {}).items()
        )
        self.send_to_replica(
            msg.sender,
            PagesMsg(
                checkpoint_seq=msg.checkpoint_seq,
                root=checkpoint.root,
                pages=pages,
                sender=self.node_id,
                client_marks=marks,
                client_replies=replies,
            ),
        )
