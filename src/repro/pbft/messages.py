"""Protocol messages.

Every message knows how to encode itself canonically (for authentication
and for wire sizing) and how to decode back; ``decode(encode(m)) == m`` is
property-tested.  The set mirrors the original PBFT implementation: the
three-phase agreement messages, replies, checkpointing, view changes,
status/retransmission, state-transfer fetches, and the periodic
authenticator refresh of paper section 2.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.common.errors import ProtocolError
from repro.common.hotpath import HOTPATH
from repro.crypto.digests import DIGEST_SIZE, md5_digest
from repro.pbft.wire import Decoder, Encoder

# Sequence number used before any request is assigned one.
NO_SEQ = 0


class WireMemo:
    """Memoized canonical bytes for a frozen message.

    Messages are immutable, so their canonical encoding and wire size are
    fixed at construction — yet the seed implementation re-encoded on
    every authentication and re-counted bytes on every send.  ``wire``
    and ``wire_size`` compute once and memoize in the instance
    ``__dict__`` (the same mechanism ``functools.cached_property`` uses on
    frozen dataclasses).  ``encode()``/``body_size()`` stay memo-free so
    differential tests can always compare a fresh encoding against the
    cached one, and so the global :data:`~repro.common.hotpath.HOTPATH`
    switch can reproduce seed behaviour exactly.
    """

    __slots__ = ()

    @property
    def wire(self) -> bytes:
        """Canonical encoding, computed at most once per object."""
        if not HOTPATH.enabled:
            return self.encode()
        memo = self.__dict__
        cached = memo.get("_wire")
        if cached is None:
            cached = memo["_wire"] = self.encode()
        return cached

    @property
    def wire_size(self) -> int:
        """Accounted wire size, computed at most once per object.

        Derived from ``body_size()``, *not* ``len(self.wire)``: the two
        intentionally differ for messages whose simulated wire cost covers
        material the in-memory encoding elides (``AuthenticatorRefresh``
        charges public-key-encrypted blocks per key entry).
        """
        if not HOTPATH.enabled:
            return self.body_size()
        memo = self.__dict__
        cached = memo.get("_wire_size")
        if cached is None:
            cached = memo["_wire_size"] = self.body_size()
        return cached

    def auth_bytes(self) -> bytes:
        return self.wire


@dataclass(frozen=True)
class Request(WireMemo):
    """A client operation submitted for total ordering.

    ``req_id`` is the client-local timestamp: monotonically increasing per
    client, used for at-most-once execution and reply matching.  ``big``
    requests were multicast by the client and circulate by digest only.
    """

    TAG = 1

    client: int
    req_id: int
    op: bytes
    readonly: bool = False
    big: bool = False

    def encode(self) -> bytes:
        return (
            Encoder()
            .u8(self.TAG)
            .u32(self.client)
            .u64(self.req_id)
            .blob(self.op)
            .boolean(self.readonly)
            .boolean(self.big)
            .finish()
        )

    @classmethod
    def decode(cls, dec: Decoder) -> "Request":
        if dec.u8() != cls.TAG:
            raise ProtocolError("not a Request")
        return cls(
            client=dec.u32(),
            req_id=dec.u64(),
            op=dec.blob(),
            readonly=dec.boolean(),
            big=dec.boolean(),
        )

    @cached_property
    def digest(self) -> bytes:
        return md5_digest(self.wire)

    def body_size(self) -> int:
        return 1 + 4 + 8 + (4 + len(self.op)) + 1 + 1


@dataclass(frozen=True)
class PrePrepare(WireMemo):
    """Primary's sequence-number assignment for a batch of requests.

    ``request_digests`` identifies the batch; ``inline_requests`` carries
    full bodies only when big-request handling did **not** divert them
    (i.e. the client sent the body to the primary alone, so the primary
    must forward it — the bandwidth/CPU cost the all-big optimization
    avoids).  ``nondet`` is the primary's non-determinism data (section
    2.5).
    """

    TAG = 2

    view: int
    seq: int
    request_digests: tuple[bytes, ...]
    nondet: bytes = b""
    inline_requests: tuple[Request, ...] = ()
    sender: int = 0

    def encode_header(self) -> bytes:
        enc = (
            Encoder()
            .u8(self.TAG)
            .u16(self.sender)
            .u64(self.view)
            .u64(self.seq)
            .blob(self.nondet)
        )
        enc.sequence(self.request_digests, lambda e, d: e.raw(d))
        return enc.finish()

    def encode(self) -> bytes:
        enc = Encoder().raw(self.encode_header())
        enc.sequence(self.inline_requests, lambda e, r: e.blob(r.encode()))
        return enc.finish()

    @classmethod
    def decode(cls, dec: Decoder) -> "PrePrepare":
        if dec.u8() != cls.TAG:
            raise ProtocolError("not a PrePrepare")
        sender = dec.u16()
        view = dec.u64()
        seq = dec.u64()
        nondet = dec.blob()
        digests = tuple(dec.sequence(lambda d: d.raw(DIGEST_SIZE)))
        inline = tuple(
            dec.sequence(lambda d: Request.decode(Decoder(d.blob())))
        )
        return cls(
            view=view,
            seq=seq,
            request_digests=digests,
            nondet=nondet,
            inline_requests=inline,
            sender=sender,
        )

    @property
    def header_wire(self) -> bytes:
        """Memoized header encoding (the authenticated portion)."""
        if not HOTPATH.enabled:
            return self.encode_header()
        memo = self.__dict__
        cached = memo.get("_header_wire")
        if cached is None:
            cached = memo["_header_wire"] = self.encode_header()
        return cached

    @cached_property
    def batch_digest(self) -> bytes:
        """Digest identifying (view, seq, batch, nondet) for prepare/commit."""
        return md5_digest(self.header_wire)

    def body_size(self) -> int:
        size = 1 + 2 + 8 + 8 + (4 + len(self.nondet))
        size += 4 + DIGEST_SIZE * len(self.request_digests)
        size += 4 + sum(4 + r.body_size() for r in self.inline_requests)
        return size

    def auth_bytes(self) -> bytes:
        # Inline bodies are covered transitively by their digests.
        return self.header_wire


@dataclass(frozen=True)
class Prepare(WireMemo):
    """A backup's agreement to the primary's sequence assignment."""

    TAG = 3

    view: int
    seq: int
    batch_digest: bytes
    sender: int

    def encode(self) -> bytes:
        return (
            Encoder()
            .u8(self.TAG)
            .u16(self.sender)
            .u64(self.view)
            .u64(self.seq)
            .raw(self.batch_digest)
            .finish()
        )

    @classmethod
    def decode(cls, dec: Decoder) -> "Prepare":
        if dec.u8() != cls.TAG:
            raise ProtocolError("not a Prepare")
        return cls(
            sender=dec.u16(),
            view=dec.u64(),
            seq=dec.u64(),
            batch_digest=dec.raw(DIGEST_SIZE),
        )

    def body_size(self) -> int:
        return 1 + 2 + 8 + 8 + DIGEST_SIZE


@dataclass(frozen=True)
class Commit(WireMemo):
    """Second-round vote guaranteeing total order across views."""

    TAG = 4

    view: int
    seq: int
    batch_digest: bytes
    sender: int

    def encode(self) -> bytes:
        return (
            Encoder()
            .u8(self.TAG)
            .u16(self.sender)
            .u64(self.view)
            .u64(self.seq)
            .raw(self.batch_digest)
            .finish()
        )

    @classmethod
    def decode(cls, dec: Decoder) -> "Commit":
        if dec.u8() != cls.TAG:
            raise ProtocolError("not a Commit")
        return cls(
            sender=dec.u16(),
            view=dec.u64(),
            seq=dec.u64(),
            batch_digest=dec.raw(DIGEST_SIZE),
        )

    def body_size(self) -> int:
        return 1 + 2 + 8 + 8 + DIGEST_SIZE


@dataclass(frozen=True)
class Reply(WireMemo):
    """A replica's reply, sent directly to the client.

    With the reply-digest optimization only the designated replica sends
    the full ``result``; the rest send its digest (``digest_only=True``).
    ``tentative`` replies were produced by execution before commit; the
    client needs 2f+1 of them (vs f+1 stable).
    """

    TAG = 5

    view: int
    req_id: int
    client: int
    sender: int
    result: bytes
    tentative: bool = False
    digest_only: bool = False

    def encode(self) -> bytes:
        return (
            Encoder()
            .u8(self.TAG)
            .u16(self.sender)
            .u64(self.view)
            .u64(self.req_id)
            .u32(self.client)
            .boolean(self.tentative)
            .boolean(self.digest_only)
            .blob(self.result)
            .finish()
        )

    @classmethod
    def decode(cls, dec: Decoder) -> "Reply":
        if dec.u8() != cls.TAG:
            raise ProtocolError("not a Reply")
        return cls(
            sender=dec.u16(),
            view=dec.u64(),
            req_id=dec.u64(),
            client=dec.u32(),
            tentative=dec.boolean(),
            digest_only=dec.boolean(),
            result=dec.blob(),
        )

    @cached_property
    def result_digest(self) -> bytes:
        """Digest used to match full and digest-only replies."""
        if self.digest_only:
            return self.result
        return md5_digest(self.result)

    def stabilized(self) -> "Reply":
        """This reply with the tentative flag cleared.

        Used when a later quorum proof (commit certificate, stable
        checkpoint) shows the execution that produced it is final; a
        no-op for replies that were stable to begin with.
        """
        if not self.tentative:
            return self
        return Reply(
            view=self.view,
            req_id=self.req_id,
            client=self.client,
            sender=self.sender,
            result=self.result,
            tentative=False,
            digest_only=self.digest_only,
        )

    def body_size(self) -> int:
        return 1 + 2 + 8 + 8 + 4 + 1 + 1 + (4 + len(self.result))


@dataclass(frozen=True)
class CheckpointMsg(WireMemo):
    """Proof-of-state message broadcast every K executions."""

    TAG = 6

    seq: int
    root: bytes
    sender: int

    def encode(self) -> bytes:
        return (
            Encoder()
            .u8(self.TAG)
            .u16(self.sender)
            .u64(self.seq)
            .raw(self.root)
            .finish()
        )

    @classmethod
    def decode(cls, dec: Decoder) -> "CheckpointMsg":
        if dec.u8() != cls.TAG:
            raise ProtocolError("not a CheckpointMsg")
        return cls(sender=dec.u16(), seq=dec.u64(), root=dec.raw(DIGEST_SIZE))

    def body_size(self) -> int:
        return 1 + 2 + 8 + DIGEST_SIZE


@dataclass(frozen=True)
class PreparedProof:
    """One entry of a view-change message's P set: a prepared batch.

    Carries the pre-prepare's *contents* (request digests + agreed
    non-determinism data), not merely its digest: the new primary and the
    backups must be able to re-propose the batch in the new view even if
    they never received the original pre-prepare.

    ``noop`` marks a sequence-number gap filler in a NEW-VIEW: no batch
    prepared at that number, so the new view orders an empty batch there.
    The flag is explicit because a *genuine* proof for an empty batch in
    view 0 would otherwise be indistinguishable from the placeholder.
    """

    seq: int
    view: int
    batch_digest: bytes
    request_digests: tuple[bytes, ...] = ()
    nondet: bytes = b""
    noop: bool = False

    def encode_into(self, enc: Encoder) -> None:
        enc.u64(self.seq).u64(self.view).raw(self.batch_digest)
        enc.boolean(self.noop)
        enc.blob(self.nondet)
        enc.sequence(self.request_digests, lambda e, d: e.raw(d))

    @classmethod
    def decode_from(cls, dec: Decoder) -> "PreparedProof":
        seq = dec.u64()
        view = dec.u64()
        batch_digest = dec.raw(DIGEST_SIZE)
        noop = dec.boolean()
        nondet = dec.blob()
        digests = tuple(dec.sequence(lambda d: d.raw(DIGEST_SIZE)))
        return cls(
            seq=seq,
            view=view,
            batch_digest=batch_digest,
            request_digests=digests,
            nondet=nondet,
            noop=noop,
        )

    def size(self) -> int:
        return (
            8 + 8 + DIGEST_SIZE + 1 + (4 + len(self.nondet))
            + 4 + DIGEST_SIZE * len(self.request_digests)
        )


@dataclass(frozen=True)
class ViewChangeMsg(WireMemo):
    """A replica's vote to depose the primary and move to ``new_view``."""

    TAG = 7

    new_view: int
    stable_seq: int
    stable_root: bytes
    checkpoint_proof: tuple[tuple[int, bytes], ...]  # (replica, root) votes
    prepared: tuple[PreparedProof, ...]
    sender: int

    def encode(self) -> bytes:
        enc = (
            Encoder()
            .u8(self.TAG)
            .u16(self.sender)
            .u64(self.new_view)
            .u64(self.stable_seq)
            .raw(self.stable_root)
        )
        enc.sequence(
            self.checkpoint_proof, lambda e, rv: e.u16(rv[0]).raw(rv[1])
        )
        enc.sequence(self.prepared, lambda e, p: p.encode_into(e))
        return enc.finish()

    @classmethod
    def decode(cls, dec: Decoder) -> "ViewChangeMsg":
        if dec.u8() != cls.TAG:
            raise ProtocolError("not a ViewChangeMsg")
        sender = dec.u16()
        new_view = dec.u64()
        stable_seq = dec.u64()
        stable_root = dec.raw(DIGEST_SIZE)
        proof = tuple(
            dec.sequence(lambda d: (d.u16(), d.raw(DIGEST_SIZE)))
        )
        prepared = tuple(dec.sequence(PreparedProof.decode_from))
        return cls(
            new_view=new_view,
            stable_seq=stable_seq,
            stable_root=stable_root,
            checkpoint_proof=proof,
            prepared=prepared,
            sender=sender,
        )

    @cached_property
    def digest(self) -> bytes:
        return md5_digest(self.wire)

    def body_size(self) -> int:
        return (
            1 + 2 + 8 + 8 + DIGEST_SIZE
            + 4 + len(self.checkpoint_proof) * (2 + DIGEST_SIZE)
            + 4 + sum(p.size() for p in self.prepared)
        )


@dataclass(frozen=True)
class NewViewMsg(WireMemo):
    """The new primary's installation message.

    ``view_changes`` is the full V set — the 2f+1 VIEW-CHANGE messages the
    new primary acted on.  Carrying the messages themselves (not merely
    their digests) lets every backup independently recompute min-s and the
    re-proposed ``pre_prepares`` and reject a NEW-VIEW whose O set was
    fabricated.  ``pre_prepares`` re-propose (as :class:`PreparedProof`
    contents) every batch that might have committed in earlier views; a
    ``noop`` entry fills a sequence-number gap.
    """

    TAG = 8

    view: int
    view_changes: tuple[ViewChangeMsg, ...]
    pre_prepares: tuple[PreparedProof, ...]
    stable_seq: int
    sender: int

    def encode(self) -> bytes:
        enc = (
            Encoder()
            .u8(self.TAG)
            .u16(self.sender)
            .u64(self.view)
            .u64(self.stable_seq)
        )
        enc.sequence(self.view_changes, lambda e, vc: e.blob(vc.encode()))
        enc.sequence(self.pre_prepares, lambda e, p: p.encode_into(e))
        return enc.finish()

    @classmethod
    def decode(cls, dec: Decoder) -> "NewViewMsg":
        if dec.u8() != cls.TAG:
            raise ProtocolError("not a NewViewMsg")
        sender = dec.u16()
        view = dec.u64()
        stable_seq = dec.u64()
        vcs = tuple(
            dec.sequence(lambda d: ViewChangeMsg.decode(Decoder(d.blob())))
        )
        pps = tuple(dec.sequence(PreparedProof.decode_from))
        return cls(
            view=view,
            view_changes=vcs,
            pre_prepares=pps,
            stable_seq=stable_seq,
            sender=sender,
        )

    @property
    def view_change_digests(self) -> tuple[tuple[int, bytes], ...]:
        return tuple((vc.sender, vc.digest) for vc in self.view_changes)

    def body_size(self) -> int:
        return (
            1 + 2 + 8 + 8
            + 4 + sum(4 + vc.body_size() for vc in self.view_changes)
            + 4 + sum(p.size() for p in self.pre_prepares)
        )


@dataclass(frozen=True)
class StatusMsg(WireMemo):
    """Periodic/recovery gossip of a replica's progress.

    Peers respond with whatever the sender is missing (committed batches,
    checkpoint messages) — the retransmission backbone for recovery.
    """

    TAG = 9

    view: int
    last_exec_seq: int
    stable_seq: int
    sender: int
    recovering: bool = False

    def encode(self) -> bytes:
        return (
            Encoder()
            .u8(self.TAG)
            .u16(self.sender)
            .u64(self.view)
            .u64(self.last_exec_seq)
            .u64(self.stable_seq)
            .boolean(self.recovering)
            .finish()
        )

    @classmethod
    def decode(cls, dec: Decoder) -> "StatusMsg":
        if dec.u8() != cls.TAG:
            raise ProtocolError("not a StatusMsg")
        return cls(
            sender=dec.u16(),
            view=dec.u64(),
            last_exec_seq=dec.u64(),
            stable_seq=dec.u64(),
            recovering=dec.boolean(),
        )

    def body_size(self) -> int:
        return 1 + 2 + 8 + 8 + 8 + 1


@dataclass(frozen=True)
class BatchRetransmit(WireMemo):
    """A committed batch replayed to a lagging/recovering replica.

    Carries the original pre-prepare (with full request bodies) plus the
    commit certificate.  The receiver still authenticates the *client
    requests* inside — which is exactly where the restarted replica of
    paper section 2.3 stalls: its session keys are gone, so the
    authenticators fail until the clients' periodic refresh re-arrives.
    """

    TAG = 10

    pre_prepare: PrePrepare
    commit_proof: tuple[int, ...]  # replicas whose commits certify the batch
    requests: tuple[Request, ...]
    sender: int

    def encode(self) -> bytes:
        enc = Encoder().u8(self.TAG).u16(self.sender)
        enc.blob(self.pre_prepare.encode())
        enc.sequence(self.commit_proof, lambda e, r: e.u16(r))
        enc.sequence(self.requests, lambda e, r: e.blob(r.encode()))
        return enc.finish()

    @classmethod
    def decode(cls, dec: Decoder) -> "BatchRetransmit":
        if dec.u8() != cls.TAG:
            raise ProtocolError("not a BatchRetransmit")
        sender = dec.u16()
        pp = PrePrepare.decode(Decoder(dec.blob()))
        proof = tuple(dec.sequence(lambda d: d.u16()))
        reqs = tuple(dec.sequence(lambda d: Request.decode(Decoder(d.blob()))))
        return cls(pre_prepare=pp, commit_proof=proof, requests=reqs, sender=sender)

    def body_size(self) -> int:
        return (
            1 + 2 + (4 + self.pre_prepare.body_size())
            + 4 + 2 * len(self.commit_proof)
            + 4 + sum(4 + r.body_size() for r in self.requests)
        )


@dataclass(frozen=True)
class FetchDigestsMsg(WireMemo):
    """State transfer: ask a peer for Merkle nodes of its stable checkpoint."""

    TAG = 11

    checkpoint_seq: int
    node_indices: tuple[int, ...]
    sender: int

    def encode(self) -> bytes:
        enc = Encoder().u8(self.TAG).u16(self.sender).u64(self.checkpoint_seq)
        enc.sequence(self.node_indices, lambda e, i: e.u32(i))
        return enc.finish()

    @classmethod
    def decode(cls, dec: Decoder) -> "FetchDigestsMsg":
        if dec.u8() != cls.TAG:
            raise ProtocolError("not a FetchDigestsMsg")
        sender = dec.u16()
        seq = dec.u64()
        idx = tuple(dec.sequence(lambda d: d.u32()))
        return cls(checkpoint_seq=seq, node_indices=idx, sender=sender)

    def body_size(self) -> int:
        return 1 + 2 + 8 + 4 + 4 * len(self.node_indices)


@dataclass(frozen=True)
class DigestsMsg(WireMemo):
    """State transfer: Merkle node digests from a stable checkpoint."""

    TAG = 12

    checkpoint_seq: int
    entries: tuple[tuple[int, bytes], ...]
    sender: int

    def encode(self) -> bytes:
        enc = Encoder().u8(self.TAG).u16(self.sender).u64(self.checkpoint_seq)
        enc.sequence(self.entries, lambda e, nd: e.u32(nd[0]).raw(nd[1]))
        return enc.finish()

    @classmethod
    def decode(cls, dec: Decoder) -> "DigestsMsg":
        if dec.u8() != cls.TAG:
            raise ProtocolError("not a DigestsMsg")
        sender = dec.u16()
        seq = dec.u64()
        entries = tuple(dec.sequence(lambda d: (d.u32(), d.raw(DIGEST_SIZE))))
        return cls(checkpoint_seq=seq, entries=entries, sender=sender)

    def body_size(self) -> int:
        return 1 + 2 + 8 + 4 + len(self.entries) * (4 + DIGEST_SIZE)


@dataclass(frozen=True)
class FetchPagesMsg(WireMemo):
    """State transfer: ask for the data of specific differing pages."""

    TAG = 13

    checkpoint_seq: int
    page_indices: tuple[int, ...]
    sender: int

    def encode(self) -> bytes:
        enc = Encoder().u8(self.TAG).u16(self.sender).u64(self.checkpoint_seq)
        enc.sequence(self.page_indices, lambda e, i: e.u32(i))
        return enc.finish()

    @classmethod
    def decode(cls, dec: Decoder) -> "FetchPagesMsg":
        if dec.u8() != cls.TAG:
            raise ProtocolError("not a FetchPagesMsg")
        sender = dec.u16()
        seq = dec.u64()
        idx = tuple(dec.sequence(lambda d: d.u32()))
        return cls(checkpoint_seq=seq, page_indices=idx, sender=sender)

    def body_size(self) -> int:
        return 1 + 2 + 8 + 4 + 4 * len(self.page_indices)


@dataclass(frozen=True)
class PagesMsg(WireMemo):
    """State transfer: page payloads for a stable checkpoint."""

    TAG = 14

    checkpoint_seq: int
    root: bytes
    pages: tuple[tuple[int, bytes], ...]
    sender: int
    # Per-client execution watermarks from the checkpoint's library
    # partition (the restarted replica needs them for at-most-once
    # semantics after jumping forward).
    client_marks: tuple[tuple[int, int], ...] = ()
    # The encoded last reply per client from the same partition.  Without
    # them a replica that learns a client's watermark by state transfer
    # treats the client's retransmissions as already executed but has
    # nothing cached to resend — a reply black hole.
    client_replies: tuple[tuple[int, bytes], ...] = ()

    def encode(self) -> bytes:
        enc = Encoder().u8(self.TAG).u16(self.sender).u64(self.checkpoint_seq)
        enc.raw(self.root)
        enc.sequence(self.pages, lambda e, ip: e.u32(ip[0]).blob(ip[1]))
        enc.sequence(self.client_marks, lambda e, cm: e.u32(cm[0]).u64(cm[1]))
        enc.sequence(self.client_replies, lambda e, cr: e.u32(cr[0]).blob(cr[1]))
        return enc.finish()

    @classmethod
    def decode(cls, dec: Decoder) -> "PagesMsg":
        if dec.u8() != cls.TAG:
            raise ProtocolError("not a PagesMsg")
        sender = dec.u16()
        seq = dec.u64()
        root = dec.raw(DIGEST_SIZE)
        pages = tuple(dec.sequence(lambda d: (d.u32(), d.blob())))
        marks = tuple(dec.sequence(lambda d: (d.u32(), d.u64())))
        replies = tuple(dec.sequence(lambda d: (d.u32(), d.blob())))
        return cls(
            checkpoint_seq=seq,
            root=root,
            pages=pages,
            sender=sender,
            client_marks=marks,
            client_replies=replies,
        )

    def body_size(self) -> int:
        return (
            1 + 2 + 8 + DIGEST_SIZE
            + 4 + sum(4 + 4 + len(data) for _, data in self.pages)
            + 4 + len(self.client_marks) * 12
            + 4 + sum(4 + 4 + len(data) for _, data in self.client_replies)
        )


@dataclass(frozen=True)
class AuthenticatorRefresh(WireMemo):
    """A client's blind periodic rebroadcast of its session keys.

    Paper section 2.3: "the blind retransmission of the authenticators from
    each node to all replicas, based on a timer" is the only way a
    restarted replica re-learns the keys it needs to validate client
    requests.  Keys are conceptually encrypted under each replica's public
    key; the simulator charges the corresponding sizes and costs.
    """

    TAG = 15

    client: int
    keys: tuple[tuple[int, bytes], ...]  # (replica, 16-byte key material)

    def encode(self) -> bytes:
        enc = Encoder().u8(self.TAG).u32(self.client)
        enc.sequence(self.keys, lambda e, rk: e.u16(rk[0]).raw(rk[1]))
        return enc.finish()

    @classmethod
    def decode(cls, dec: Decoder) -> "AuthenticatorRefresh":
        if dec.u8() != cls.TAG:
            raise ProtocolError("not an AuthenticatorRefresh")
        client = dec.u32()
        keys = tuple(dec.sequence(lambda d: (d.u16(), d.raw(16))))
        return cls(client=client, keys=keys)

    def body_size(self) -> int:
        # Each key entry ships as a public-key encrypted block (~64 bytes
        # for the small simulated Rabin moduli).
        return 1 + 4 + 4 + len(self.keys) * (2 + 64)


# BUSY reply reason codes (admission pipeline, see DESIGN.md overload
# section): the request was shed from a full queue, rejected because the
# client already has an operation in flight, or rejected for size.
BUSY_SHED = 0
BUSY_INFLIGHT = 1
BUSY_OVERSIZED = 2


@dataclass(frozen=True)
class BusyReply(WireMemo):
    """Explicit backpressure: the replica refused to queue a request.

    Sent instead of silently dropping when the admission pipeline sheds
    a request (queue budget exceeded) or rejects it (oversized).  Carries
    a retry-after hint and the queue depth observed at rejection time so
    clients can back off proportionally.  Advisory for timing only — a
    forged BUSY merely delays one retransmission — except for
    ``BUSY_OVERSIZED``, where the client requires f+1 matching replies
    from distinct replicas before failing the operation permanently.
    """

    TAG = 16

    view: int
    req_id: int
    client: int
    sender: int
    reason: int
    retry_after_ns: int
    queue_depth: int

    def encode(self) -> bytes:
        return (
            Encoder()
            .u8(self.TAG)
            .u16(self.sender)
            .u64(self.view)
            .u64(self.req_id)
            .u32(self.client)
            .u8(self.reason)
            .u64(self.retry_after_ns)
            .u32(self.queue_depth)
            .finish()
        )

    @classmethod
    def decode(cls, dec: Decoder) -> "BusyReply":
        if dec.u8() != cls.TAG:
            raise ProtocolError("not a BusyReply")
        return cls(
            sender=dec.u16(),
            view=dec.u64(),
            req_id=dec.u64(),
            client=dec.u32(),
            reason=dec.u8(),
            retry_after_ns=dec.u64(),
            queue_depth=dec.u32(),
        )

    def body_size(self) -> int:
        return 1 + 2 + 8 + 8 + 4 + 1 + 8 + 4


_TAG_TO_CLASS = {
    cls.TAG: cls
    for cls in (
        Request,
        PrePrepare,
        Prepare,
        Commit,
        Reply,
        CheckpointMsg,
        ViewChangeMsg,
        NewViewMsg,
        StatusMsg,
        BatchRetransmit,
        FetchDigestsMsg,
        DigestsMsg,
        FetchPagesMsg,
        PagesMsg,
        AuthenticatorRefresh,
        BusyReply,
    )
}


def decode_message(data: bytes):
    """Decode any protocol message from its canonical bytes."""
    if not data:
        raise ProtocolError("empty message")
    cls = _TAG_TO_CLASS.get(data[0])
    if cls is None:
        raise ProtocolError(f"unknown message tag {data[0]}")
    dec = Decoder(data)
    msg = cls.decode(dec)
    dec.expect_end()
    return msg
