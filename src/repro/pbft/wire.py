"""Canonical byte encoding for protocol messages.

Two purposes:

* **authentication material** — MACs and signatures are computed over these
  bytes, so corruption and forgery genuinely fail verification in tests;
* **wire sizes** — the network fabric charges bandwidth for the encoded
  size.

Within the simulator, messages travel as Python objects (DESIGN.md section
1); the codec below is the byte layout they *would* have, and it round-trips
(``decode(encode(m)) == m``) so the layout is honest.
"""

from __future__ import annotations

import struct
from typing import Callable

from repro.common.errors import ProtocolError

_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_I64 = struct.Struct(">q")


class Encoder:
    """Append-only canonical encoder."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def u8(self, value: int) -> "Encoder":
        self._parts.append(_U8.pack(value))
        return self

    def u16(self, value: int) -> "Encoder":
        self._parts.append(_U16.pack(value))
        return self

    def u32(self, value: int) -> "Encoder":
        self._parts.append(_U32.pack(value))
        return self

    def u64(self, value: int) -> "Encoder":
        self._parts.append(_U64.pack(value))
        return self

    def i64(self, value: int) -> "Encoder":
        self._parts.append(_I64.pack(value))
        return self

    def boolean(self, value: bool) -> "Encoder":
        return self.u8(1 if value else 0)

    def blob(self, data: bytes) -> "Encoder":
        """Length-prefixed byte string."""
        self._parts.append(_U32.pack(len(data)))
        self._parts.append(data)
        return self

    def raw(self, data: bytes) -> "Encoder":
        """Fixed-size field; caller guarantees the length."""
        self._parts.append(data)
        return self

    def sequence(self, items, encode_item: Callable[["Encoder", object], None]) -> "Encoder":
        self._parts.append(_U32.pack(len(items)))
        for item in items:
            encode_item(self, item)
        return self

    def finish(self) -> bytes:
        return b"".join(self._parts)


class Decoder:
    """Matching decoder, raising :class:`ProtocolError` on truncation."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, size: int) -> bytes:
        if self._pos + size > len(self._data):
            raise ProtocolError(
                f"truncated message: wanted {size} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        out = self._data[self._pos : self._pos + size]
        self._pos += size
        return out

    def u8(self) -> int:
        return _U8.unpack(self._take(1))[0]

    def u16(self) -> int:
        return _U16.unpack(self._take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self._take(8))[0]

    def i64(self) -> int:
        return _I64.unpack(self._take(8))[0]

    def boolean(self) -> bool:
        return self.u8() != 0

    def blob(self) -> bytes:
        size = self.u32()
        return self._take(size)

    def raw(self, size: int) -> bytes:
        return self._take(size)

    def sequence(self, decode_item: Callable[["Decoder"], object]) -> list:
        count = self.u32()
        return [decode_item(self) for _ in range(count)]

    def finished(self) -> bool:
        return self._pos == len(self._data)

    def expect_end(self) -> None:
        if not self.finished():
            raise ProtocolError(
                f"{len(self._data) - self._pos} trailing bytes after message"
            )
