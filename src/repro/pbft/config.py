"""PBFT middleware configuration.

One :class:`PbftConfig` instance describes a complete library build the way
the paper's Table 1 rows do: which optimizations are compiled in, the
protocol constants, and the simulated cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigError
from repro.common.units import MICROSECOND, MILLISECOND, SECOND
from repro.crypto.costs import CryptoCosts


@dataclass(frozen=True)
class CostModel:
    """Simulated CPU costs of non-crypto middleware work.

    Calibrated together with :class:`~repro.crypto.costs.CryptoCosts` so
    the harness reproduces the paper's Table 1 ratios (see EXPERIMENTS.md).
    """

    crypto: CryptoCosts = field(default_factory=CryptoCosts)
    # Fixed cost of receiving/dispatching any message (syscall, demux,
    # header parse) and of marshalling a send.
    msg_recv_ns: int = 7 * MICROSECOND
    msg_send_ns: int = 7 * MICROSECOND
    # Per-byte marshalling/copy cost, in hundredths of a ns per byte.
    per_byte_ns_x100: int = 350
    # Cost of executing a null operation inside the application upcall.
    execute_null_ns: int = 2 * MICROSECOND
    # Per-byte cost (hundredths of ns/byte) of carrying full request bodies
    # inside a pre-prepare: the primary re-marshals/digests per backup and
    # each backup re-digests to validate, all on the agreement critical
    # path.  This is what the "all requests treated as big" optimization
    # eliminates (paper sections 2.1 and 4.1).
    inline_body_ns_x100: int = 9000  # 90 ns/byte
    # Page digest + install cost during state transfer, per page.
    page_transfer_ns: int = 20 * MICROSECOND
    # Redirection-table lookup for dynamic client management (section 3.1):
    # "the cost of accessing the redirection table" — deliberately tiny.
    redirection_lookup_ns: int = 300

    def bytes_cost(self, size: int) -> int:
        return (size * self.per_byte_ns_x100) // 100


@dataclass(frozen=True)
class PbftConfig:
    """A complete middleware build configuration."""

    f: int = 1
    num_clients: int = 12

    # -- sharded deployments ---------------------------------------------------
    # Prefix applied to every host name and metric key owned by this group
    # ("s0-", "s1-", ...).  Multiple groups can then share one simulator,
    # network fabric, and metrics registry without host-name or metric-key
    # collisions; "" (the default) preserves the single-group layout.
    group_prefix: str = ""

    # -- Table 1 toggles -----------------------------------------------------
    use_macs: bool = True
    # Requests with bodies >= this many bytes are "big" (multicast by the
    # client; digest-only in the pre-prepare).  The library default is 0:
    # *every* request is big.  ``None`` disables big handling entirely.
    big_request_threshold: int | None = 0
    batching: bool = True
    dynamic_clients: bool = False

    # -- protocol constants ---------------------------------------------------
    checkpoint_interval: int = 128
    # High watermark = low watermark + log_window.
    log_window: int = 256
    # Batching congestion window: max sequence numbers assigned but not yet
    # executed at the primary before pre-prepares are postponed (paper
    # section 2.1).  While the window is full, arriving requests pool up
    # and later leave in a single batched pre-prepare — the pooling *is*
    # the batching optimization ("batched requests capture parallelism
    # from different clients").
    #
    # 1 is the measured knee (examples/batching_sweep.py, BENCH_batching
    # .json): with batching on, a window of 1 maximizes pooling and wins
    # the whole grid (26.0k op/s vs 23.2k at 2 and 13.0k at 8 with 24
    # clients); wider windows only help when batching is off (max_batch
    # = 1), where 2-4 roughly doubles throughput over 1.
    congestion_window: int = 1
    max_batch: int = 64
    tentative_execution: bool = True
    read_only_optimization: bool = True
    reply_digest_optimization: bool = True

    # -- timers ----------------------------------------------------------------
    client_retransmit_ns: int = 150 * MILLISECOND
    # Ceiling for the client's exponential retransmission backoff (the
    # interval doubles on every retransmission and resets on completion).
    client_retransmit_cap_ns: int = 2 * SECOND
    # Client backoff after a BUSY reply: a separate, jittered exponential
    # schedule (doubles per consecutive BUSY, +/-25% deterministic jitter)
    # so shed clients spread their retries instead of thundering back in
    # lock-step with the loss-retransmit timer.
    client_busy_backoff_ns: int = 20 * MILLISECOND
    client_busy_backoff_cap_ns: int = 1 * SECOND
    view_change_timeout_ns: int = 500 * MILLISECOND
    # Blind periodic rebroadcast of client session keys (section 2.3): the
    # only way a restarted replica re-learns authenticators.
    authenticator_rebroadcast_ns: int = 1 * SECOND
    checkpoint_broadcast_retry_ns: int = 200 * MILLISECOND
    status_retry_ns: int = 100 * MILLISECOND
    # Periodic status gossip while work is outstanding: lets lagging
    # replicas pull missing batches from peers (the original's STATUS
    # message retransmission backbone).
    status_interval_ns: int = 150 * MILLISECOND
    # Proactive recovery (repro.pbft.reconfig): each replica is key-
    # refreshed and restarted roughly once per interval, staggered so the
    # group never loses its quorum to recovery itself.  None disables it.
    proactive_recovery_interval_ns: int | None = None

    # -- overload robustness (admission pipeline) -------------------------------
    # Per-client in-flight cap at the primary: the protocol's "each client
    # waits for one request to complete before sending the next" rule
    # (Castro-Liskov section 4.1), previously unenforced.  A client's
    # retransmission of an already-admitted request is absorbed (replied
    # from the cache or dropped with a stat); a *different* request while
    # one is outstanding is dropped.  0 disables enforcement.
    max_client_inflight: int = 1
    # Global budget for the primary's batching queue (``pending_requests``).
    # When an arrival would exceed it, the newest request of the heaviest
    # client is shed with an explicit BUSY reply.  ``None`` = unbounded
    # (the legacy behaviour).  Backups bound ``waiting_requests`` by the
    # same budget.
    pending_queue_budget: int | None = 1024
    # Requests whose operation bodies exceed this many bytes are rejected
    # outright with a BUSY/oversized reply.  ``None`` disables the check.
    max_request_bytes: int | None = 1 << 20
    # Invalid-MAC / garbage-flood penalty box: a sender accumulating this
    # many authentication failures within one ``penalty_box_ns`` window is
    # muted (packets dropped before verification) for ``penalty_box_ns``.
    penalty_box_threshold: int = 8
    penalty_box_ns: int = 2 * SECOND
    # Base retry-after hint carried in BUSY replies (scaled by queue
    # pressure at the replica).
    busy_retry_hint_ns: int = 50 * MILLISECOND

    # -- non-determinism (section 2.5) -----------------------------------------
    # Max |primary timestamp - local clock| accepted by the time-delta
    # validator.
    nondet_time_delta_ns: int = 250 * MILLISECOND
    # The paper's suggested fix: skip non-determinism validation while
    # replaying during recovery.  Off by default (matching the original
    # implementation whose erratic behaviour section 2.5 documents).
    skip_nondet_validation_on_replay: bool = False

    # -- dynamic membership (section 3.1) ---------------------------------------
    max_node_entries: int = 64
    # Sessions idle longer than this are eligible for cleanup when the node
    # table fills up.
    session_stale_ns: int = 60 * SECOND

    # -- state ---------------------------------------------------------------
    state_pages: int = 256
    page_size: int = 4096
    # Pages reserved at the front of the region for the middleware itself
    # (membership tables live here, mirroring the original layout).
    library_pages: int = 8

    # -- simulation ------------------------------------------------------------
    costs: CostModel = field(default_factory=CostModel)
    signature_key_bits: int = 256

    @property
    def n(self) -> int:
        """Replica group size: 3f + 1."""
        return 3 * self.f + 1

    @property
    def quorum(self) -> int:
        """Agreement quorum: 2f + 1."""
        return 2 * self.f + 1

    @property
    def weak_quorum(self) -> int:
        """Reply quorum for stable replies: f + 1."""
        return self.f + 1

    def is_big(self, body_size: int) -> bool:
        if self.big_request_threshold is None:
            return False
        return body_size >= self.big_request_threshold

    def validate(self) -> None:
        if self.f < 1:
            raise ConfigError("f must be at least 1")
        if self.checkpoint_interval <= 0:
            raise ConfigError("checkpoint interval must be positive")
        if self.log_window < 2 * self.checkpoint_interval:
            raise ConfigError(
                "log window must cover at least two checkpoint intervals"
            )
        if self.max_batch <= 0 or self.congestion_window <= 0:
            raise ConfigError("batching parameters must be positive")
        if self.client_retransmit_cap_ns < self.client_retransmit_ns:
            raise ConfigError(
                "client retransmit cap must be at least the base interval"
            )
        if self.library_pages >= self.state_pages:
            raise ConfigError("library partition must leave room for the application")
        if self.max_client_inflight < 0:
            raise ConfigError("per-client in-flight cap cannot be negative")
        if self.pending_queue_budget is not None and self.pending_queue_budget < 1:
            raise ConfigError("pending queue budget must be positive (or None)")
        if self.max_request_bytes is not None and self.max_request_bytes < 1:
            raise ConfigError("max request size must be positive (or None)")
        if self.penalty_box_threshold < 1:
            raise ConfigError("penalty box threshold must be positive")
        if self.penalty_box_ns < 0 or self.busy_retry_hint_ns < 0:
            raise ConfigError("penalty box / busy hint durations cannot be negative")
        if self.client_busy_backoff_cap_ns < self.client_busy_backoff_ns:
            raise ConfigError(
                "client busy-backoff cap must be at least the base interval"
            )
        if (
            self.proactive_recovery_interval_ns is not None
            and self.proactive_recovery_interval_ns <= 0
        ):
            raise ConfigError("proactive recovery interval must be positive (or None)")

    def with_options(self, **overrides) -> "PbftConfig":
        """A copy with some fields replaced (dataclass ``replace`` helper)."""
        return replace(self, **overrides)
