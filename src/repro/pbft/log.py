"""The replica's message log: slots, certificates, watermarks, GC.

A *slot* tracks one sequence number through the three phases.  A batch is
*prepared* when the replica holds the pre-prepare plus 2f matching prepares
from distinct backups; *committed-local* when additionally 2f+1 commits
match (paper section 2.1).  Slots live between the low watermark (the last
stable checkpoint) and low + log window; stabilizing a checkpoint garbage
collects everything at or below it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ProtocolError
from repro.pbft.messages import PrePrepare, Request


@dataclass
class ViewSlot:
    """Per-(seq, view) certificate state."""

    pre_prepare: Optional[PrePrepare] = None
    prepares: dict[int, bytes] = field(default_factory=dict)  # replica -> digest
    commits: dict[int, bytes] = field(default_factory=dict)

    def matching_prepares(self) -> int:
        if self.pre_prepare is None:
            return 0
        want = self.pre_prepare.batch_digest
        return sum(1 for d in self.prepares.values() if d == want)

    def matching_commits(self) -> int:
        if self.pre_prepare is None:
            return 0
        want = self.pre_prepare.batch_digest
        return sum(1 for d in self.commits.values() if d == want)


@dataclass
class Slot:
    """All protocol state for one sequence number."""

    seq: int
    views: dict[int, ViewSlot] = field(default_factory=dict)
    executed: bool = False
    tentative: bool = False  # executed tentatively, commit still pending
    committed: bool = False
    committed_view: int = 0

    def view_slot(self, view: int) -> ViewSlot:
        vs = self.views.get(view)
        if vs is None:
            vs = ViewSlot()
            self.views[view] = vs
        return vs

    def pre_prepare_in(self, view: int) -> Optional[PrePrepare]:
        vs = self.views.get(view)
        return vs.pre_prepare if vs else None

    def prepared(self, view: int, f: int) -> bool:
        vs = self.views.get(view)
        if vs is None or vs.pre_prepare is None:
            return False
        # The primary's pre-prepare counts as its prepare.
        return vs.matching_prepares() >= 2 * f

    def committed_local(self, view: int, f: int) -> bool:
        vs = self.views.get(view)
        if vs is None or vs.pre_prepare is None:
            return False
        return self.prepared(view, f) and vs.matching_commits() >= 2 * f + 1

    def latest_prepared_proof(self, f: int) -> Optional[tuple[int, bytes]]:
        """(view, batch digest) of the highest view in which this slot
        prepared — the P-set entry for view changes."""
        best = None
        for view in sorted(self.views):
            if self.prepared(view, f):
                best = (view, self.views[view].pre_prepare.batch_digest)
        return best


class RequestStore:
    """Request bodies by digest, plus per-client execution bookkeeping."""

    def __init__(self) -> None:
        self.by_digest: dict[bytes, Request] = {}
        self.last_executed_req: dict[int, int] = {}  # client -> req_id
        self.last_reply: dict[int, object] = {}  # client -> Reply
        self.last_active: dict[int, int] = {}  # client -> primary-timestamp

    def add(self, request: Request) -> None:
        self.by_digest.setdefault(request.digest, request)

    def get(self, digest: bytes) -> Optional[Request]:
        return self.by_digest.get(digest)

    def already_executed(self, request: Request) -> bool:
        return self.last_executed_req.get(request.client, -1) >= request.req_id

    def record_execution(self, request: Request, reply, timestamp: int) -> None:
        self.last_executed_req[request.client] = request.req_id
        self.last_reply[request.client] = reply
        self.last_active[request.client] = timestamp

    def forget_client(self, client: int) -> None:
        self.last_executed_req.pop(client, None)
        self.last_reply.pop(client, None)
        self.last_active.pop(client, None)

    def gc_digests(self, keep: set[bytes]) -> None:
        """Drop executed bodies not referenced by any live slot.

        Bodies that have not executed yet are always kept: they may be
        pending at the primary or waiting for a pre-prepare at a backup,
        and dropping them would wedge execution when their batch arrives.
        """
        for digest in [d for d in self.by_digest if d not in keep]:
            if self.already_executed(self.by_digest[digest]):
                del self.by_digest[digest]


class MessageLog:
    """Slots between the watermarks, with checkpoint-driven GC."""

    def __init__(self, log_window: int) -> None:
        self.log_window = log_window
        self.low_watermark = 0  # last stable checkpoint seq
        self.slots: dict[int, Slot] = {}

    @property
    def high_watermark(self) -> int:
        return self.low_watermark + self.log_window

    def in_window(self, seq: int) -> bool:
        return self.low_watermark < seq <= self.high_watermark

    def slot(self, seq: int) -> Slot:
        if not self.in_window(seq):
            raise ProtocolError(
                f"seq {seq} outside watermarks ({self.low_watermark}, "
                f"{self.high_watermark}]"
            )
        entry = self.slots.get(seq)
        if entry is None:
            entry = Slot(seq)
            self.slots[seq] = entry
        return entry

    def peek(self, seq: int) -> Optional[Slot]:
        return self.slots.get(seq)

    def advance_stable(self, seq: int) -> None:
        """Move the low watermark to a newly stable checkpoint and GC."""
        if seq <= self.low_watermark:
            return
        self.low_watermark = seq
        for old in [s for s in self.slots if s <= seq]:
            del self.slots[old]

    def live_request_digests(self) -> set[bytes]:
        digests: set[bytes] = set()
        for slot in self.slots.values():
            for vs in slot.views.values():
                if vs.pre_prepare is not None:
                    digests.update(vs.pre_prepare.request_digests)
        return digests

    def prepared_proofs(self, f: int) -> list[tuple[int, int, "PrePrepare"]]:
        """(seq, view, pre-prepare) for every slot prepared above the
        watermark — the contents a view change must carry forward."""
        proofs = []
        for seq in sorted(self.slots):
            slot = self.slots[seq]
            proof = slot.latest_prepared_proof(f)
            if proof is not None:
                view = proof[0]
                proofs.append((seq, view, slot.views[view].pre_prepare))
        return proofs
