"""Dynamic replica membership: epochs, ordered reconfiguration, recovery.

The paper contributes dynamic *client* membership (section 3) but keeps
the replica set fixed.  This module adds the repairable-replica regime of
"Dynamic Practical BFT" (arXiv:2210.14003) and "Repairable Voting Nodes"
(arXiv:2306.10960):

* **Ordered reconfiguration.**  Replica join/leave/replace are system
  operations (:class:`repro.membership.messages.ReconfigPayload`) ordered
  through the normal three-phase protocol, so every correct replica
  observes the same reconfiguration at the same sequence number.  The
  accepted operation is *pending* until the next checkpoint boundary,
  where it deterministically takes effect and bumps the **epoch** (the
  configuration version).

* **Constant-slot model.**  The group keeps 3f+1 *slots*; a
  reconfiguration fills a vacant slot (join), vacates one (leave), or
  bumps a slot's *incarnation* (replace).  Quorum arithmetic is untouched
  — which is also why quorum intersection across reconfiguration holds:
  any two quorums still intersect in f+1 slots, and the epoch gate below
  keeps a slot's stale incarnation from contributing to both sides.

* **Persistence in the library partition.**  The epoch record (epoch,
  slot table, pending op, boundary marks) lives in the last library page
  of the shared :class:`~repro.statemgr.pages.PagedState`, next to the
  client table — so it is checkpointed, state-transferred, and rolled
  back like everything else, and a bootstrapping replica adopts the
  group's configuration simply by fetching a stable checkpoint.

* **Epoch-aware authenticators.**  Every envelope carries the sender's
  epoch.  Agreement traffic from a slot reconfigured *after* the
  sender's stamped epoch — a stale incarnation — is rejected loudly
  (``stale_epoch_rejected``).  Honest laggards (continuing slots still
  one epoch behind across a boundary) are admitted: their slot was not
  reconfigured, so their messages are exactly as trustworthy as before.

* **Proactive recovery.**  :class:`ProactiveRecovery` periodically
  refreshes a replica's key material at the directory and restarts it
  from durable state, bounding the window an adversary has to accumulate
  more than f compromised replicas.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

# NB: repro.membership.messages is imported lazily inside the methods that
# need the ReconfigPayload codec — at module level it would close an import
# cycle (membership.messages -> pbft.messages -> pbft -> replica -> here).

_MAGIC = 0x45504F43  # "EPOC"
# magic, epoch, pending flag, pending action, pending slot, pending incarnation
_HEADER = struct.Struct(">IIBBHI")
# per slot: active flag, incarnation, epoch the slot last changed at
_SLOT = struct.Struct(">BII")
# epoch mark: boundary seq, epoch in force for seqs > boundary
_MARK = struct.Struct(">QI")
_MARK_COUNT = struct.Struct(">H")
MAX_EPOCH_MARKS = 64

REPLY_RECONFIG_OK = b"RECONFIG-OK"
REPLY_RECONFIG_BUSY = b"RECONFIG-BUSY"
REPLY_RECONFIG_BAD = b"RECONFIG-BAD"


@dataclass
class SlotState:
    """One replica slot of the constant-size group."""

    active: bool = True
    incarnation: int = 0
    # Epoch at which this slot last changed (join/leave/replace).  The
    # epoch gate rejects agreement traffic stamped with an older epoch:
    # only the slot's previous incarnation can be that stale.
    changed_epoch: int = 0


class ReconfigManager:
    """Per-replica epoch state: ordered reconfiguration + the epoch gate."""

    def __init__(self, replica) -> None:
        self.replica = replica
        self.config = replica.config
        self.state = replica.state
        self.stats = replica.stats
        # The record occupies the *last* library page; the client table and
        # session slots grow from the front of the partition.
        self.base_offset = (self.config.library_pages - 1) * self.config.page_size
        self.epoch = 0
        self.slots = [SlotState() for _ in range(self.config.n)]
        self.pending: ReconfigPayload | None = None
        # (boundary seq, epoch in force for seqs > boundary), ascending.
        self.epoch_marks: list[tuple[int, int]] = [(0, 0)]
        self._gauge = replica.obs.registry.gauge(
            f"{self.config.group_prefix}replica{replica.node_id}.epoch"
        )
        # No initial persist: a fresh all-zero state decodes to exactly
        # these defaults (magic check fails -> defaults), which keeps the
        # seed's state bytes and checkpoint roots bit-identical until the
        # first reconfiguration actually executes.

    # -- persistence -------------------------------------------------------------

    def _record_bytes(self) -> bytes:
        pending = self.pending
        parts = [
            _HEADER.pack(
                _MAGIC,
                self.epoch,
                1 if pending is not None else 0,
                pending.action if pending is not None else 0,
                pending.slot if pending is not None else 0,
                pending.incarnation if pending is not None else 0,
            )
        ]
        for slot in self.slots:
            parts.append(
                _SLOT.pack(1 if slot.active else 0, slot.incarnation, slot.changed_epoch)
            )
        parts.append(_MARK_COUNT.pack(len(self.epoch_marks)))
        for boundary, epoch in self.epoch_marks:
            parts.append(_MARK.pack(boundary, epoch))
        return b"".join(parts)

    def _persist(self) -> None:
        data = self._record_bytes()
        self.state.modify(self.base_offset, len(data))
        self.state.write(self.base_offset, data)

    def reload_from_state(self) -> None:
        """Rebuild epoch state from the library partition (state transfer,
        rollback, restart)."""
        from repro.membership.messages import ReconfigPayload

        offset = self.base_offset
        header = self.state.read(offset, _HEADER.size)
        magic, epoch, has_pending, action, slot, incarnation = _HEADER.unpack(header)
        if magic != _MAGIC:
            # Never reconfigured: the defaults.
            self.epoch = 0
            self.slots = [SlotState() for _ in range(self.config.n)]
            self.pending = None
            self.epoch_marks = [(0, 0)]
            self._sync_replica_epoch()
            return
        self.epoch = epoch
        self.pending = (
            ReconfigPayload(action=action, slot=slot, incarnation=incarnation)
            if has_pending
            else None
        )
        offset += _HEADER.size
        slots = []
        for _ in range(self.config.n):
            active, inc, changed = _SLOT.unpack(self.state.read(offset, _SLOT.size))
            slots.append(
                SlotState(active=bool(active), incarnation=inc, changed_epoch=changed)
            )
            offset += _SLOT.size
        self.slots = slots
        (count,) = _MARK_COUNT.unpack(self.state.read(offset, _MARK_COUNT.size))
        offset += _MARK_COUNT.size
        marks = []
        for _ in range(count):
            boundary, mark_epoch = _MARK.unpack(self.state.read(offset, _MARK.size))
            marks.append((boundary, mark_epoch))
            offset += _MARK.size
        self.epoch_marks = marks or [(0, 0)]
        self._sync_replica_epoch()

    def _sync_replica_epoch(self) -> None:
        """Propagate the installed epoch into the replica's send path."""
        replica = self.replica
        if replica.current_epoch != self.epoch:
            replica.current_epoch = self.epoch
            # Cached pairwise keys may predate a key refresh that rode
            # along with the reconfiguration; re-fetch from the directory.
            replica.drop_session_keys("replica")
        self._gauge.set(self.epoch)

    # -- ordered execution ---------------------------------------------------------

    def execute_system(self, req, nondet_ts: int) -> bytes:
        """Execute one ordered SYS_RECONFIG op (deterministic across the
        group).  The op becomes *pending* and takes effect at the next
        checkpoint boundary."""
        from repro.membership.messages import (
            RECONFIG_JOIN,
            RECONFIG_LEAVE,
            RECONFIG_REPLACE,
            ReconfigPayload,
        )

        try:
            payload = ReconfigPayload.decode_op(req.op)
        except Exception:
            self.stats["reconfig_rejected"] += 1
            return REPLY_RECONFIG_BAD
        if not (0 <= payload.slot < self.config.n):
            self.stats["reconfig_rejected"] += 1
            return REPLY_RECONFIG_BAD
        if self.pending is not None:
            # One reconfiguration per epoch transition: a second request
            # before the boundary must retry after it.
            self.stats["reconfig_busy"] += 1
            return REPLY_RECONFIG_BUSY
        slot = self.slots[payload.slot]
        if payload.action == RECONFIG_JOIN and slot.active:
            self.stats["reconfig_rejected"] += 1
            return REPLY_RECONFIG_BAD
        if payload.action in (RECONFIG_LEAVE, RECONFIG_REPLACE) and not slot.active:
            self.stats["reconfig_rejected"] += 1
            return REPLY_RECONFIG_BAD
        self.pending = payload
        self._persist()
        self.stats["reconfig_accepted"] += 1
        if self.replica.tracer.enabled:
            self.replica.tracer.event(
                self.replica.host.name, "reconfig-pending", cat="pbft.reconfig",
                args={
                    "action": payload.action,
                    "slot": payload.slot,
                    "incarnation": payload.incarnation,
                },
            )
        return REPLY_RECONFIG_OK

    def apply_pending(self, seq: int) -> None:
        """At a checkpoint boundary: install the pending reconfiguration.

        The boundary batch itself executes under the *old* epoch; the new
        epoch governs sequence numbers strictly greater than ``seq``.
        Runs inside ``_execute_batch`` before ``end_of_execution``, so the
        updated record is part of the very checkpoint taken at ``seq`` —
        a bootstrapping replica that fetches it adopts the new epoch.
        """
        from repro.membership.messages import RECONFIG_JOIN, RECONFIG_REPLACE

        payload = self.pending
        if payload is None:
            return
        self.epoch += 1
        slot = self.slots[payload.slot]
        if payload.action in (RECONFIG_JOIN, RECONFIG_REPLACE):
            slot.active = True
            slot.incarnation = max(slot.incarnation + 1, payload.incarnation)
        else:  # RECONFIG_LEAVE
            slot.active = False
        slot.changed_epoch = self.epoch
        self.pending = None
        self.epoch_marks.append((seq, self.epoch))
        if len(self.epoch_marks) > MAX_EPOCH_MARKS:
            del self.epoch_marks[: len(self.epoch_marks) - MAX_EPOCH_MARKS]
        self._persist()
        self._sync_replica_epoch()
        self.stats["reconfig_applied"] += 1
        if self.replica.tracer.enabled:
            self.replica.tracer.event(
                self.replica.host.name, "epoch-install", cat="pbft.reconfig",
                args={"epoch": self.epoch, "boundary_seq": seq,
                      "action": payload.action, "slot": payload.slot},
            )

    # -- queries ------------------------------------------------------------------

    def epoch_at(self, seq: int) -> int:
        """The epoch governing sequence number ``seq``."""
        current = 0
        for boundary, epoch in self.epoch_marks:
            if seq > boundary:
                current = epoch
            else:
                break
        return current

    def admit_sender(self, sender_slot: int, sender_epoch: int) -> bool:
        """The epoch gate for replica-sender agreement traffic.

        Rejects (a) inactive slots and (b) senders whose stamped epoch
        predates their own slot's last reconfiguration — i.e. the slot's
        previous incarnation.  A continuing slot lagging a boundary is
        admitted: nothing about *its* identity changed, and dropping its
        one-shot prepares would wedge the transition window.
        """
        if not (0 <= sender_slot < len(self.slots)):
            return False
        slot = self.slots[sender_slot]
        if not slot.active:
            return False
        return sender_epoch >= slot.changed_epoch


def refresh_replica_keys(cluster, rid: int) -> None:
    """Refresh one replica's key material at the directory and drop every
    cached copy of the old keys (proactive recovery / replace).

    The directory is the PKI: after the refresh, peers re-derive the new
    pairwise keys on demand, while any old incarnation of the slot still
    holds the stale ones — under real crypto its traffic stops verifying,
    and under fake crypto the envelope epoch gate covers it.
    """
    cluster.keys.refresh_slot(rid)
    for peer in cluster.replicas:
        if peer.node_id == rid:
            continue
        peer.session_keys.pop(("replica", rid), None)
        peer._group_keys = None
    target = cluster.replicas[rid]
    target.drop_session_keys("replica")


class ProactiveRecovery:
    """Periodic key-refresh + restart per replica (round-robin).

    Staggered so at most one replica is recovering at a time, and skipped
    outright when fewer than 2f+1 *other* replicas are live — a recovery
    restart must never be the event that costs the group its quorum.
    """

    def __init__(self, cluster, interval_ns: int) -> None:
        self.cluster = cluster
        self.interval_ns = interval_ns
        self._timers = []
        n = cluster.config.n
        for rid in range(n):
            delay = interval_ns + (rid * interval_ns) // n
            self._timers.append(
                cluster.sim.schedule(delay, lambda rid=rid: self._fire(rid))
            )

    def _fire(self, rid: int) -> None:
        cluster = self.cluster
        self._timers[rid] = cluster.sim.schedule(
            self.interval_ns, lambda: self._fire(rid)
        )
        replica = cluster.replicas[rid]
        if replica.crashed:
            return
        others_live = sum(
            1 for r in cluster.replicas if not r.crashed and r.node_id != rid
        )
        if others_live < cluster.config.quorum:
            # Recovering now would drop the group below 2f+1 live
            # replicas; try again next period.
            replica.stats["proactive_recovery_skipped"] += 1
            return
        refresh_replica_keys(cluster, rid)
        replica.stats["proactive_recoveries"] += 1
        if replica.tracer.enabled:
            replica.tracer.event(
                replica.host.name, "proactive-recovery", cat="pbft.reconfig",
                args={"replica": rid},
            )
        replica.crash()
        replica.restart()

    def stop(self) -> None:
        for timer in self._timers:
            if timer is not None and timer.pending:
                timer.cancel()
        self._timers = [None] * len(self._timers)
