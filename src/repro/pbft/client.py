"""The PBFT client library.

Implements the client side of the protocol as the paper describes it
(section 2.1): one outstanding request at a time; requests go to the
primary unless they are *big* or read-only (then they are multicast);
replies are accepted once f+1 stable or 2f+1 tentative copies match; on
timeout the request is retransmitted to the whole group.

In MAC mode the client holds one session key per replica and stamps every
request with an authenticator covering the full group.  It also runs the
periodic blind authenticator rebroadcast of section 2.3 so restarted
replicas can re-learn its keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.errors import ConfigError
from repro.crypto.mac import MacKey
from repro.net.fabric import Host
from repro.pbft.config import PbftConfig
from repro.pbft.messages import (
    BUSY_OVERSIZED,
    AuthenticatorRefresh,
    BusyReply,
    Reply,
    Request,
)
from repro.pbft.node import Envelope, KeyDirectory, Node


@dataclass
class PendingOp:
    """Bookkeeping for the single outstanding request."""

    request: Request
    callback: Optional[Callable[[bytes, int], None]]
    sent_at: int
    # Invoked with a reason string if the operation terminates without a
    # result (oversized rejection, workload cancellation).  Session
    # multiplexers (repro.harness.workload) rely on exactly one of
    # callback/fail_callback firing to reclaim the session.
    fail_callback: Optional[Callable[[str], None]] = None
    timer: object = None
    # result digest -> {replica id -> is_tentative}
    votes: dict[bytes, dict[int, bool]] = field(default_factory=dict)
    full_result: dict[bytes, bytes] = field(default_factory=dict)
    retransmits: int = 0
    # Consecutive BUSY replies absorbed for this request: drives the
    # busy-backoff schedule, separate from the loss-retransmit counter.
    busy_count: int = 0
    # Replicas that rejected this request as oversized; f+1 distinct
    # senders prove at least one correct replica did, and the operation
    # fails permanently instead of retrying forever.
    oversized_from: set[int] = field(default_factory=set)
    # Signed requests (join phase 2) are signature-authenticated because no
    # session keys exist at the replicas yet.
    signed: bool = False


class PbftClient(Node):
    """A client endpoint; supports static and (via join) dynamic membership."""

    def __init__(
        self,
        client_id: int,
        config: PbftConfig,
        host: Host,
        port: int,
        keys: KeyDirectory,
        real_crypto: bool = True,
        obs=None,
    ) -> None:
        super().__init__(
            config, host, port, keys, "client", client_id, real_crypto, obs=obs
        )
        self.view_guess = 0
        self.next_req_id = 0
        self.pending: Optional[PendingOp] = None
        self.joined = not config.dynamic_clients
        self.join_state = None  # managed by repro.membership.joiner
        self.completed_ops = 0
        self.failed_ops = 0
        self.retransmissions = 0
        self.latencies_ns: list[int] = []
        prefix = config.group_prefix
        self.stats = self.obs.registry.view(f"{prefix}client{client_id}.")
        # One latency histogram shared by every client on the registry
        # (per group in sharded deployments).
        self._latency_hist = self.obs.registry.histogram(f"{prefix}client.latency_ns")
        self._track = f"{prefix}client{client_id}"
        self._refresh_timer = None
        if config.use_macs:
            self._start_authenticator_rebroadcast()

    # -- session keys ------------------------------------------------------------

    def generate_session_keys(self, rng) -> dict[int, MacKey]:
        """Create one session key per replica and remember them."""
        keys = {rid: MacKey.generate(rng) for rid in range(self.config.n)}
        for rid, key in keys.items():
            self.install_session_key("replica", rid, key)
        return keys

    def _start_authenticator_rebroadcast(self) -> None:
        self._refresh_timer = self.host.sim.schedule(
            self.config.authenticator_rebroadcast_ns, self._rebroadcast_authenticators
        )

    def _rebroadcast_authenticators(self) -> None:
        self._refresh_timer = None
        key_entries = tuple(
            (rid, key.key)
            for (kind, rid), key in sorted(self.session_keys.items())
            if kind == "replica"
        )
        if key_entries and self.joined:
            msg = AuthenticatorRefresh(client=self.node_id, keys=key_entries)
            # Signed so a replica with no session key can still trust it.
            for rid in range(self.config.n):
                from repro.pbft.node import replica_address

                self.send_signed(replica_address(rid, self.group_prefix), msg)
        self._start_authenticator_rebroadcast()

    # -- invoking operations ------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self.pending is not None

    def invoke(
        self,
        op: bytes,
        readonly: bool = False,
        callback: Optional[Callable[[bytes, int], None]] = None,
        on_fail: Optional[Callable[[str], None]] = None,
    ) -> Request:
        """Submit one operation; at most one may be outstanding.

        ``on_fail`` is called with a reason string if the operation
        terminates without a result instead of completing.
        """
        if self.pending is not None:
            raise ConfigError(f"client {self.node_id} already has a request in flight")
        if not self.joined:
            raise ConfigError(f"client {self.node_id} has not joined the service yet")
        self.next_req_id += 1
        request = Request(
            client=self.node_id,
            req_id=self.next_req_id,
            op=op,
            readonly=readonly,
            big=self.config.is_big(len(op)),
        )
        self.pending = PendingOp(
            request=request, callback=callback, sent_at=self.host.sim.now,
            fail_callback=on_fail,
        )
        if self.tracer.enabled:
            self.tracer.mark((self.node_id, request.req_id), "invoke", self._track)
        self._transmit(first=True)
        return request

    def _transmit(self, first: bool) -> None:
        pending = self.pending
        if pending is None:
            return
        request = pending.request
        if pending.signed:
            from repro.pbft.node import replica_address

            for rid in range(self.config.n):
                self.send_signed(replica_address(rid, self.group_prefix), request)
        elif request.big or request.readonly or not first:
            # Big and read-only requests are always multicast; ordinary
            # requests are multicast on retransmission so backups start
            # their view-change timers.
            self.broadcast_to_replicas(request)
        else:
            primary = self.view_guess % self.config.n
            self.broadcast_to_replicas(request, only=[primary])
        pending.timer = self.host.sim.schedule(
            self._retransmit_interval_ns(pending.retransmits),
            self._on_retransmit_timeout,
        )

    def _retransmit_interval_ns(self, retransmits: int) -> int:
        """Exponential backoff: double per retransmission, capped.

        A fixed interval floods the group exactly when it is least able
        to absorb the load — during a long view change every waiting
        client multicasts on every tick.  The counter lives on the
        PendingOp, so completing a request naturally resets the backoff.
        """
        base = self.config.client_retransmit_ns
        cap = self.config.client_retransmit_cap_ns
        shift = min(retransmits, 32)  # avoid giant ints before the cap
        return min(base << shift, cap)

    def _on_retransmit_timeout(self) -> None:
        pending = self.pending
        if pending is None:
            return
        pending.retransmits += 1
        self.retransmissions += 1
        self.stats["retransmissions"] += 1
        if self.tracer.enabled:
            self.tracer.event(
                self._track, "retransmit", cat="client",
                args={"req_id": pending.request.req_id},
            )
        self._transmit(first=False)

    # -- replies ------------------------------------------------------------------------

    def dispatch(self, env: Envelope) -> None:
        msg = env.msg
        if isinstance(msg, Reply):
            self.on_reply(msg, env)
        elif isinstance(msg, BusyReply):
            self.on_busy(msg, env)
        elif self.join_state is not None:
            self.join_state.dispatch(env)

    # -- backpressure -------------------------------------------------------------------

    def on_busy(self, msg: BusyReply, env: Envelope = None) -> None:
        """An explicit overload rejection from a replica.

        BUSY is advisory for timing: a forged one merely delays a single
        retransmission, so any sender is honored for backoff.  The
        exception is the oversized verdict, which would abort the
        operation — that needs f+1 distinct replicas to agree.
        """
        pending = self.pending
        if (
            pending is None
            or msg.req_id != pending.request.req_id
            or msg.client != self.node_id
        ):
            return
        self.stats["busy_received"] += 1
        if msg.view > self.view_guess:
            self.view_guess = msg.view
        if msg.reason == BUSY_OVERSIZED:
            pending.oversized_from.add(msg.sender)
            if len(pending.oversized_from) >= self.config.weak_quorum:
                self._fail_pending("oversized")
            return
        pending.busy_count += 1
        if pending.timer is not None:
            pending.timer.cancel()
        delay = self._busy_backoff_ns(pending, msg.retry_after_ns)
        pending.timer = self.host.sim.schedule(delay, self._on_busy_timeout)
        if self.tracer.enabled:
            self.tracer.event(
                self._track, "busy-backoff", cat="client",
                args={"req_id": msg.req_id, "reason": msg.reason,
                      "delay_ns": delay},
            )

    def _busy_backoff_ns(self, pending: PendingOp, retry_after_ns: int) -> int:
        """Jittered exponential backoff after a BUSY reply.

        Doubles per consecutive BUSY (floored by the replica's retry-after
        hint, capped by config) with a deterministic +/-25% jitter derived
        from (client, request, attempt) — so shed clients spread out
        instead of thundering back in lock-step, and identical runs make
        identical choices.
        """
        base = self.config.client_busy_backoff_ns
        cap = self.config.client_busy_backoff_cap_ns
        shift = min(pending.busy_count - 1, 32)
        interval = max(retry_after_ns, min(base << shift, cap))
        x = (
            self.node_id * 2654435761
            + pending.request.req_id * 40503
            + pending.busy_count * 69069
        ) & 0xFFFFFFFF
        x ^= x >> 16
        x = (x * 2246822519) & 0xFFFFFFFF
        x ^= x >> 13
        jitter = (x % 1001) / 1000.0 - 0.5  # in [-0.5, 0.5]
        return max(1, int(interval * (1.0 + 0.5 * jitter)))

    def _on_busy_timeout(self) -> None:
        pending = self.pending
        if pending is None:
            return
        self.stats["busy_retries"] += 1
        # The replica that said BUSY is alive — retry toward the primary
        # on the first-transmission path (big/read-only requests still
        # multicast) and let the ordinary loss-retransmit timer take over
        # from there.
        self._transmit(first=True)

    def _fail_pending(self, reason: str) -> None:
        pending = self.pending
        if pending is None:
            return
        if pending.timer is not None:
            pending.timer.cancel()
        self.pending = None
        self.failed_ops += 1
        self.stats["failed_ops"] += 1
        self.stats[f"rejected_{reason}"] += 1
        if self.tracer.enabled:
            self.tracer.event(
                self._track, f"rejected-{reason}", cat="client",
                args={"req_id": pending.request.req_id},
            )
        if pending.fail_callback is not None:
            pending.fail_callback(reason)

    def on_reply(self, reply: Reply, env: Envelope = None) -> None:
        pending = self.pending
        if pending is None or reply.req_id != pending.request.req_id:
            return
        if reply.client != self.node_id:
            return
        digest = reply.result_digest
        votes = pending.votes.setdefault(digest, {})
        # A stable reply supersedes a tentative one from the same replica.
        if not votes.get(reply.sender, True) and reply.tentative:
            pass
        else:
            votes[reply.sender] = reply.tentative
        if not reply.digest_only:
            pending.full_result[digest] = reply.result
        if reply.view > self.view_guess:
            self.view_guess = reply.view
        self._check_quorum(digest)

    def _check_quorum(self, digest: bytes) -> None:
        pending = self.pending
        if pending is None:
            return
        votes = pending.votes.get(digest, {})
        stable = sum(1 for tentative in votes.values() if not tentative)
        total = len(votes)
        if pending.request.readonly:
            done = total >= self.config.quorum
        else:
            done = stable >= self.config.weak_quorum or total >= self.config.quorum
        if not done or digest not in pending.full_result:
            return
        result = pending.full_result[digest]
        latency = self.host.sim.now - pending.sent_at
        if pending.timer is not None:
            pending.timer.cancel()
        self.pending = None
        self.completed_ops += 1
        self.latencies_ns.append(latency)
        self.stats["completed_ops"] += 1
        self._latency_hist.observe(latency)
        if self.tracer.enabled:
            corr = (self.node_id, pending.request.req_id)
            self.tracer.mark(corr, "done", self._track)
            self.tracer.complete(
                self._track, "request", pending.sent_at, self.host.sim.now,
                cat="client", corr=corr,
                args={"retransmits": pending.retransmits,
                      "readonly": pending.request.readonly},
            )
        if pending.callback is not None:
            pending.callback(result, latency)

    def cancel_pending(self) -> None:
        """Abort the outstanding request (used by workload teardown)."""
        pending = self.pending
        if pending is None:
            return
        if pending.timer is not None:
            pending.timer.cancel()
        self.failed_ops += 1
        self.stats["failed_ops"] += 1
        self.pending = None
        if pending.fail_callback is not None:
            pending.fail_callback("cancelled")

    def stop(self) -> None:
        """Quiesce timers so the simulation can drain."""
        self.cancel_pending()
        if self._refresh_timer is not None:
            self._refresh_timer.cancel()
            self._refresh_timer = None
