"""Cluster builder: wires hosts, replicas, clients, and keys together.

Reproduces the paper's testbed shape by default: 4 replicas, each alone on
a host, and 12 clients spread evenly across 4 client machines (paper
section 4), all behind a simulated 1 GbE switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.ids import make_client_id
from repro.net.fabric import NetworkConfig, NetworkFabric
from repro.obs import Observability
from repro.pbft.client import PbftClient
from repro.pbft.config import PbftConfig
from repro.pbft.node import CLIENT_PORT, KeyDirectory
from repro.pbft.replica import Application, NullApplication, Replica
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator


@dataclass
class Cluster:
    """A built deployment: simulator, fabric, replicas and clients."""

    sim: Simulator
    rng: RngStreams
    fabric: NetworkFabric
    config: PbftConfig
    keys: KeyDirectory
    replicas: list[Replica]
    clients: list[PbftClient]
    apps: list[Application] = field(default_factory=list)
    obs: Observability = field(default_factory=Observability)
    # ProactiveRecovery scheduler, attached by build_cluster when
    # config.proactive_recovery_interval_ns is set.
    recovery_scheduler: object = None

    def run_for(self, duration_ns: int) -> None:
        self.sim.run_for(duration_ns)

    def primary(self) -> Replica:
        view = max(r.view for r in self.replicas if not r.crashed)
        return self.replicas[view % self.config.n]

    def total_completed(self) -> int:
        return sum(c.completed_ops for c in self.clients)

    def total_executed(self) -> int:
        return sum(r.stats["requests_executed"] for r in self.replicas)

    def invoke_and_wait(
        self, client: PbftClient, op: bytes, readonly: bool = False,
        max_wait_ns: int = 10_000_000_000,
    ) -> bytes:
        """Test helper: submit one op and run the simulation to completion."""
        box: list[bytes] = []
        client.invoke(op, readonly=readonly, callback=lambda res, _lat: box.append(res))
        deadline = self.sim.now + max_wait_ns
        step = 1_000_000  # 1 ms
        while not box and self.sim.now < deadline:
            self.sim.run_for(step)
        if not box:
            raise TimeoutError(
                f"request by client {client.node_id} did not complete within "
                f"{max_wait_ns} ns"
            )
        return box[0]

    def stop_clients(self) -> None:
        for client in self.clients:
            client.stop()

    def replace_replica(
        self, slot: int, app_factory: Optional[Callable[[], Application]] = None
    ) -> Replica:
        """Physically replace the replica in ``slot`` with a fresh machine.

        The deployment-side half of a RECONFIG_REPLACE: the ordered system
        op flips the slot's incarnation and epoch inside the protocol; this
        helper swaps the actual process — a brand-new :class:`Replica` with
        empty state on the same host/address, fresh key material, and
        nothing but the public directory to bootstrap from.  It comes up
        recovering and pulls a stable checkpoint + log tail from the group.
        """
        from repro.pbft.reconfig import refresh_replica_keys

        old = self.replicas[slot]
        if not old.crashed:
            old.crash()
        # New machine, new keys: the directory (the PKI) re-issues the
        # slot's key material; every peer's cached copies are dropped.
        refresh_replica_keys(self, slot)
        app = app_factory() if app_factory else NullApplication()
        replica = Replica(
            replica_id=slot,
            config=self.config,
            host=old.host,
            keys=self.keys,
            app=app,
            real_crypto=old.real_crypto,
            obs=self.obs,
        )
        if self.config.dynamic_clients:
            from repro.membership.manager import MembershipManager

            replica.membership = MembershipManager(replica)
        self.replicas[slot] = replica
        self.apps[slot] = app
        # The constructor bound the socket; restart() rebinds and enters
        # recovery (status gossip -> checkpoint votes -> state transfer),
        # so release the first binding before calling it.
        replica.socket.close()
        replica.restart()
        # Static-membership deployments: re-register the clients *after*
        # restart() (restart drops client session keys, modelling a fresh
        # machine that must relearn them — but addresses are config).
        if not self.config.dynamic_clients:
            for client in self.clients:
                key = client.session_keys.get(("replica", slot))
                replica.register_client(client.node_id, client.socket.address, key)
        return replica

    def collect_metrics(self) -> None:
        """Publish simulator/fabric/host counters into the obs registry."""
        self.sim.collect_metrics(self.obs.registry)
        self.fabric.collect_metrics(self.obs.registry)


def build_cluster(
    config: Optional[PbftConfig] = None,
    seed: int = 1,
    app_factory: Optional[Callable[[], Application]] = None,
    real_crypto: bool = True,
    trace: bool = False,
    client_hosts: int = 4,
    net_config: Optional[NetworkConfig] = None,
    nondet_provider_factory=None,
    nondet_validator_factory=None,
    clock_skew_ns: int = 0,
    obs: Optional[Observability] = None,
    sim: Optional[Simulator] = None,
    rng: Optional[RngStreams] = None,
    fabric: Optional[NetworkFabric] = None,
) -> Cluster:
    """Build a full deployment ready to run.

    With ``config.dynamic_clients`` False (the default), clients are
    statically registered at every replica with pre-shared session keys —
    PBFT's a-priori-knowledge model.  With it True, replicas get membership
    managers and clients must :func:`repro.membership.join_client` first.

    ``sim``/``rng``/``fabric``/``obs`` may be injected so several groups
    (each with a distinct ``config.group_prefix``) share one simulated
    network and metrics registry — the sharded topology of
    :mod:`repro.shard`.  Each group still gets its own key directory.
    """
    config = config or PbftConfig()
    config.validate()
    sim = sim if sim is not None else Simulator()
    rng = rng if rng is not None else RngStreams(seed)
    obs = obs if obs is not None else Observability()
    obs.attach_clock(lambda: sim.now)
    if fabric is None:
        fabric = NetworkFabric(
            sim, rng, config=net_config, trace_enabled=trace, tracer=obs.tracer
        )
    keys = KeyDirectory(config, rng.stream("keys"))
    prefix = config.group_prefix

    skew_rng = rng.stream("clock-skew")
    replicas: list[Replica] = []
    apps: list[Application] = []
    for rid in range(config.n):
        skew = skew_rng.randrange(-clock_skew_ns, clock_skew_ns + 1) if clock_skew_ns else 0
        host = fabric.add_host(f"{prefix}replica{rid}", clock_skew_ns=skew)
        app = app_factory() if app_factory else NullApplication()
        apps.append(app)
        replica = Replica(
            replica_id=rid,
            config=config,
            host=host,
            keys=keys,
            app=app,
            nondet_provider=nondet_provider_factory() if nondet_provider_factory else None,
            nondet_validator=nondet_validator_factory() if nondet_validator_factory else None,
            real_crypto=real_crypto,
            obs=obs,
        )
        replicas.append(replica)

    if config.dynamic_clients:
        from repro.membership.manager import MembershipManager

        for replica in replicas:
            replica.membership = MembershipManager(replica)

    hosts = []
    for h in range(client_hosts):
        skew = skew_rng.randrange(-clock_skew_ns, clock_skew_ns + 1) if clock_skew_ns else 0
        hosts.append(fabric.add_host(f"{prefix}clienthost{h}", clock_skew_ns=skew))

    clients: list[PbftClient] = []
    session_rng = rng.stream("client-sessions")
    for index in range(config.num_clients):
        client_id = make_client_id(index)
        host = hosts[index % client_hosts]
        port = CLIENT_PORT + index
        keys.new_client_keypair(client_id)
        client = PbftClient(
            client_id=client_id,
            config=config,
            host=host,
            port=port,
            keys=keys,
            real_crypto=real_crypto,
            obs=obs,
        )
        session = client.generate_session_keys(session_rng)
        if not config.dynamic_clients:
            for replica in replicas:
                replica.register_client(
                    client_id, client.socket.address, session[replica.node_id]
                )
        clients.append(client)

    cluster = Cluster(
        sim=sim,
        rng=rng,
        fabric=fabric,
        config=config,
        keys=keys,
        replicas=replicas,
        clients=clients,
        apps=apps,
        obs=obs,
    )
    if config.proactive_recovery_interval_ns is not None:
        from repro.pbft.reconfig import ProactiveRecovery

        cluster.recovery_scheduler = ProactiveRecovery(
            cluster, config.proactive_recovery_interval_ns
        )
    return cluster
