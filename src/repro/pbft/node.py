"""Shared machinery for replicas and clients: keys, envelopes, send paths.

Authentication modes mirror the original implementation (paper section
2.1):

* ``use_macs=True`` — messages to the replica group carry an
  *authenticator* (one MAC per replica); point-to-point messages carry a
  single MAC tag.  Cheap, but session keys are transient — the root cause
  of the erratic recovery of section 2.3.
* ``use_macs=False`` — every message carries a Rabin signature.  Slow
  (Table 1's robust rows), but recovery works from public keys alone.

The simulator charges the cost model for every generate/verify; when
``real_crypto`` is on, the tags and signatures are also actually computed
and checked, so corruption genuinely fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigError
from repro.common.hotpath import HOTPATH
from repro.crypto.authenticators import Authenticator, MacCache
from repro.crypto.mac import MacKey
from repro.crypto.rabin import (
    RabinKeyPair,
    RabinPublicKey,
    RabinSignature,
    rabin_generate,
    rabin_sign,
    rabin_verify,
)
from repro.net.fabric import Address, DatagramSocket, Host, Packet
from repro.pbft.config import PbftConfig

REPLICA_PORT = 5000
CLIENT_PORT = 6000

AUTH_NONE = 0
AUTH_MAC = 1
AUTH_VECTOR = 2  # authenticator: one MAC per replica
AUTH_SIG = 3


def _msg_wire_size(msg) -> int:
    """Accounted body size, memoized on the message when it supports it."""
    try:
        return msg.wire_size
    except AttributeError:
        return msg.body_size()


@dataclass
class Envelope:
    """A message plus its authentication trailer.

    Envelopes are logically immutable once sent (the same object flows by
    reference to every destination), so ``size`` is computed once and
    memoized — broadcasts and receive-side byte accounting reuse it.
    """

    msg: object
    auth_kind: int
    auth: object  # bytes tag | Authenticator | RabinSignature | None
    sender_kind: str  # "replica" | "client"
    sender_id: int
    # The sender's configuration epoch (repro.pbft.reconfig).  Stamped on
    # every send; receivers gate replica agreement traffic on it so a
    # reconfigured-away incarnation is rejected loudly.  Clients always
    # send 0 — their requests are ordered, not epoch-bound.
    sender_epoch: int = 0
    _size: Optional[int] = field(default=None, init=False, repr=False, compare=False)
    # Receive-side cost memo: every receiver of a broadcast charges the
    # same bytes/verify cost, so the first receiver's computation is
    # reused — but only while the cost model object matches (multi-config
    # deployments keep their own numbers).
    _recv_cost: int = field(default=0, init=False, repr=False, compare=False)
    _recv_cost_model: object = field(default=None, init=False, repr=False, compare=False)

    @property
    def size(self) -> int:
        if not HOTPATH.enabled:
            return self._compute_size()
        size = self._size
        if size is None:
            size = self._size = self._compute_size()
        return size

    def _compute_size(self) -> int:
        base = _msg_wire_size(self.msg) + 4  # 4-byte trailer header
        if self.auth_kind == AUTH_MAC:
            return base + 4
        if self.auth_kind == AUTH_VECTOR:
            return base + self.auth.size
        if self.auth_kind == AUTH_SIG:
            sig = self.auth
            return base + (sig.size_bytes if sig is not None else 66)
        return base


class KeyDirectory:
    """All long-lived key material for one deployment.

    Public keys are a priori knowledge in PBFT's static-membership model;
    with the dynamic extension, clients only need the *replica* public
    keys (paper section 3.1).
    """

    def __init__(self, config: PbftConfig, rng) -> None:
        self.config = config
        bits = config.signature_key_bits
        self.replica_keys: dict[int, RabinKeyPair] = {
            rid: rabin_generate(rng, bits) for rid in range(config.n)
        }
        self.client_keys: dict[int, RabinKeyPair] = {}
        # Pairwise replica-replica session keys (stable per deployment).
        self.replica_session: dict[frozenset[int], MacKey] = {}
        for i in range(config.n):
            for j in range(i + 1, config.n):
                self.replica_session[frozenset((i, j))] = MacKey.generate(rng)
        self._rng = rng
        # One MAC memo per deployment: every node shares it, so the tag a
        # sender computed is already cached when the receiver verifies.
        self.mac_cache = MacCache()

    def new_client_keypair(self, client_id: int) -> RabinKeyPair:
        pair = rabin_generate(self._rng, self.config.signature_key_bits)
        self.client_keys[client_id] = pair
        return pair

    def replica_public(self, rid: int) -> RabinPublicKey:
        return self.replica_keys[rid].public

    def client_public(self, client_id: int) -> Optional[RabinPublicKey]:
        pair = self.client_keys.get(client_id)
        return pair.public if pair else None

    def replica_pair_key(self, a: int, b: int) -> MacKey:
        return self.replica_session[frozenset((a, b))]

    def refresh_slot(self, rid: int) -> None:
        """Regenerate one replica slot's key material (proactive recovery
        or slot replacement).  The directory plays the PKI: peers re-derive
        the new pairwise keys from here, while the slot's old incarnation
        keeps only stale copies."""
        self.replica_keys[rid] = rabin_generate(self._rng, self.config.signature_key_bits)
        for other in range(self.config.n):
            if other != rid:
                self.replica_session[frozenset((rid, other))] = MacKey.generate(self._rng)


def replica_address(rid: int, prefix: str = "") -> Address:
    return (f"{prefix}replica{rid}", REPLICA_PORT)


class Node:
    """Base class: a socket plus authenticated, cost-accounted send/verify."""

    def __init__(
        self,
        config: PbftConfig,
        host: Host,
        port: int,
        keys: KeyDirectory,
        kind: str,
        node_id: int,
        real_crypto: bool = True,
        obs=None,
    ) -> None:
        from repro.obs import Observability

        config.validate()
        self.config = config
        self.costs = config.costs
        self.host = host
        self.keys = keys
        self.kind = kind
        self.node_id = node_id
        self.group_prefix = config.group_prefix
        self.real_crypto = real_crypto
        # Shared observability (metrics registry + tracer).  A private
        # registry and disabled tracer are created when none is supplied,
        # so standalone nodes keep working and pay nothing for tracing.
        self.obs = obs if obs is not None else Observability()
        self.obs.attach_clock(lambda: host.sim.now)
        self.tracer = self.obs.tracer
        self.socket: DatagramSocket = host.fabric.bind(host.name, port)
        self.socket.on_receive(self._on_packet)
        # Session keys for MAC mode, keyed by (peer kind, peer id).
        self.session_keys: dict[tuple[str, int], MacKey] = {}
        # Replica-group key map memo for broadcasts; invalidated whenever
        # session keys change (install/drop) or the group grows.
        self._group_keys: Optional[dict[int, MacKey]] = None
        self._group_keys_n = 0
        # (n, excluded id) -> [(rid, address)] for full-group broadcasts;
        # replica addresses are a pure function of the id.
        self._dests_memo: dict[tuple[int, int | None], list] = {}
        self.auth_failures = 0
        self.messages_handled = 0
        # Fault injection: a muted node receives and processes messages but
        # sends nothing — a live process behind a dead NIC.  Muting the
        # primary models the paper's silent-primary failure, which only
        # client retransmissions and view changes can detect.
        self.muted = False
        self.messages_muted = 0
        # Configuration epoch stamped on every outgoing envelope; replicas
        # keep it in sync with their ReconfigManager, clients stay at 0.
        self.current_epoch = 0

    # -- key management -------------------------------------------------------

    def install_session_key(self, peer_kind: str, peer_id: int, key: MacKey) -> None:
        self.session_keys[(peer_kind, peer_id)] = key
        self._group_keys = None

    def drop_session_keys(self, peer_kind: str | None = None) -> None:
        """Forget session keys (restart); replica-replica keys re-derive
        from static configuration, client keys do not (section 2.3)."""
        self._group_keys = None
        if peer_kind is None:
            self.session_keys.clear()
            return
        for key in [k for k in self.session_keys if k[0] == peer_kind]:
            del self.session_keys[key]

    def _own_signing_key(self) -> RabinKeyPair:
        if self.kind == "replica":
            return self.keys.replica_keys[self.node_id]
        pair = self.keys.client_keys.get(self.node_id)
        if pair is None:
            raise ConfigError(f"client {self.node_id} has no signing key")
        return pair

    # -- send paths ------------------------------------------------------------

    def send_signed(self, dst: Address, msg, kind: str = "") -> None:
        """Sign with our private key and send (expensive)."""
        if self.muted:
            self.messages_muted += 1
            return
        self.host.charge_cpu(self._marshal_cost(msg) + self.costs.crypto.sign_ns)
        sig = rabin_sign(self._own_signing_key(), msg.auth_bytes()) if self.real_crypto else None
        env = Envelope(msg, AUTH_SIG, sig, self.kind, self.node_id, self.current_epoch)
        self.socket.send(dst, env, env.size, kind or type(msg).__name__)

    def send_mac(self, dst: Address, peer_kind: str, peer_id: int, msg, kind: str = "") -> None:
        """Authenticate with the pairwise session key and send (cheap)."""
        if self.muted:
            self.messages_muted += 1
            return
        self.host.charge_cpu(self._marshal_cost(msg) + self.costs.crypto.mac_ns)
        key = self._session_key_for(peer_kind, peer_id)
        tag = (
            self.keys.mac_cache.tag(key, msg.auth_bytes())
            if (self.real_crypto and key)
            else b"\0\0\0\0"
        )
        env = Envelope(msg, AUTH_MAC, tag, self.kind, self.node_id, self.current_epoch)
        self.socket.send(dst, env, env.size, kind or type(msg).__name__)

    def send_plain(self, dst: Address, msg, kind: str = "") -> None:
        """Unauthenticated send (join phase 1, challenges)."""
        if self.muted:
            self.messages_muted += 1
            return
        self.host.charge_cpu(self._marshal_cost(msg))
        env = Envelope(msg, AUTH_NONE, None, self.kind, self.node_id, self.current_epoch)
        self.socket.send(dst, env, env.size, kind or type(msg).__name__)

    def broadcast_to_replicas(
        self,
        msg,
        kind: str = "",
        exclude: int | None = None,
        only: list[int] | None = None,
    ) -> None:
        """Send to replicas with the configured authentication mode.

        In MAC mode this builds ONE authenticator covering every replica we
        share a session key with (even when unicasting to the primary only,
        so the message stays verifiable group-wide) and reuses it for each
        unicast — the optimization that makes multicast cheap and that
        section 2.3 shows complicates recovery.  Marshalling CPU is charged
        per destination: each datagram is a separate copy out of the NIC.
        """
        if self.muted:
            self.messages_muted += 1
            return
        if only is None and HOTPATH.enabled:
            memo_key = (self.config.n, exclude)
            dests = self._dests_memo.get(memo_key)
            if dests is None:
                dests = self._dests_memo[memo_key] = [
                    (rid, replica_address(rid, self.group_prefix))
                    for rid in range(self.config.n)
                    if rid != exclude
                ]
        else:
            rids = only if only is not None else list(range(self.config.n))
            dests = [
                (rid, replica_address(rid, self.group_prefix))
                for rid in rids
                if rid != exclude
            ]
        if not dests:
            return
        per_copy = self._marshal_cost(msg)
        kind = kind or type(msg).__name__
        if self.config.use_macs:
            known = self._replica_group_keys()
            self.host.charge_cpu(
                per_copy * len(dests) + self.costs.crypto.authenticator_cost(len(known))
            )
            auth = (
                self.keys.mac_cache.authenticator(known, msg.auth_bytes())
                if self.real_crypto
                else Authenticator({rid: b"\0\0\0\0" for rid in known})
            )
            env = Envelope(msg, AUTH_VECTOR, auth, self.kind, self.node_id, self.current_epoch)
            for _rid, addr in dests:
                self.socket.send(addr, env, env.size, kind)
        else:
            self.host.charge_cpu(per_copy * len(dests) + self.costs.crypto.sign_ns)
            sig = (
                rabin_sign(self._own_signing_key(), msg.auth_bytes())
                if self.real_crypto
                else None
            )
            env = Envelope(msg, AUTH_SIG, sig, self.kind, self.node_id, self.current_epoch)
            for _rid, addr in dests:
                self.socket.send(addr, env, env.size, kind)

    def _replica_group_keys(self) -> dict[int, MacKey]:
        """Session keys we hold for every replica in the group, memoized.

        The seed rebuilt this dict on every broadcast; its contents only
        change when session keys are installed or dropped, so those paths
        invalidate the memo instead.
        """
        known = self._group_keys
        if known is not None and self._group_keys_n == self.config.n and HOTPATH.enabled:
            return known
        exclude_self = self.node_id if self.kind == "replica" else -1
        known = {}
        for rid in range(self.config.n):
            if rid == exclude_self:
                continue
            key = self._session_key_for("replica", rid)
            if key is not None:
                known[rid] = key
        self._group_keys = known
        self._group_keys_n = self.config.n
        return known

    def _marshal_cost(self, msg) -> int:
        return self.costs.msg_send_ns + self.costs.bytes_cost(_msg_wire_size(msg))

    def _session_key_for(self, peer_kind: str, peer_id: int) -> Optional[MacKey]:
        key = self.session_keys.get((peer_kind, peer_id))
        if key is not None:
            return key
        # Replica-replica keys come from static configuration.
        if (
            self.kind == "replica"
            and peer_kind == "replica"
            and peer_id != self.node_id
        ):
            key = self.keys.replica_pair_key(self.node_id, peer_id)
            self.session_keys[(peer_kind, peer_id)] = key
            return key
        return None

    # -- receive path ------------------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        env = packet.payload
        if not isinstance(env, Envelope):
            return
        if HOTPATH.enabled and env._recv_cost_model is self.costs:
            cost = env._recv_cost
        else:
            cost = (
                self.costs.msg_recv_ns
                + self.costs.bytes_cost(_msg_wire_size(env.msg))
                + self._verify_cost(env)
            )
            if HOTPATH.enabled:
                env._recv_cost = cost
                env._recv_cost_model = self.costs
        self.host.execute(cost, lambda: self._verified_dispatch(env))

    def _verify_cost(self, env: Envelope) -> int:
        if env.auth_kind == AUTH_SIG:
            return self.costs.crypto.verify_ns
        if env.auth_kind in (AUTH_MAC, AUTH_VECTOR):
            return self.costs.crypto.mac_ns
        return 0

    def _verified_dispatch(self, env: Envelope) -> None:
        if not self.verify_envelope(env):
            self.auth_failures += 1
            self.on_auth_failure(env)
            return
        self.messages_handled += 1
        self.dispatch(env)

    def verify_envelope(self, env: Envelope) -> bool:
        """Check the envelope's authentication trailer against our keys.

        ``auth_bytes()`` is only materialized on the branches that hash it
        — with fake crypto (the harness default) no verification receives
        bytes at all.  Baseline mode re-creates the seed's unconditional
        marshalling so cache-off measurements stay faithful.
        """
        if env.auth_kind == AUTH_NONE:
            return True
        if not HOTPATH.enabled:
            env.msg.auth_bytes()
        if env.auth_kind == AUTH_SIG:
            public = (
                self.keys.replica_public(env.sender_id)
                if env.sender_kind == "replica"
                else self.keys.client_public(env.sender_id)
            )
            if public is None:
                return False
            if not self.real_crypto:
                return True
            return rabin_verify(public, env.msg.auth_bytes(), env.auth)
        key = self._session_key_for(env.sender_kind, env.sender_id)
        if key is None:
            # No session key for this peer: exactly the restarted-replica
            # condition of paper section 2.3.
            return False
        if not self.real_crypto:
            return True
        mac_cache = self.keys.mac_cache
        data = env.msg.auth_bytes()
        if env.auth_kind == AUTH_MAC:
            return mac_cache.verify(key, data, env.auth)
        return mac_cache.verify_authenticator(key, self.node_id, data, env.auth)

    # -- subclass hooks ---------------------------------------------------------

    def dispatch(self, env: Envelope) -> None:
        raise NotImplementedError

    def on_auth_failure(self, env: Envelope) -> None:
        """Called when a message fails authentication (default: drop)."""
