"""The PBFT replica: the three-phase agreement state machine.

One :class:`Replica` is one member of the 3f+1 group.  The primary of view
``v`` is replica ``v mod n``; it sequences client requests into batches
behind a congestion window.  Backups monitor it and fall back to view
changes (:mod:`repro.pbft.viewchange`); restart and catch-up live in
:mod:`repro.pbft.recovery`.

Applications plug in through the up-call interface the original library
defined (paper sections 2.1 and 3.2): an ``execute`` up-call over a shared
:class:`~repro.statemgr.pages.PagedState` region, plus the BASE-style
non-determinism up-calls.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from repro.common.errors import ConfigError
from repro.common.hotpath import HOTPATH
from repro.crypto.digests import DIGEST_SIZE
from repro.net.fabric import Address, Host
from repro.pbft.admission import (
    ADMIT,
    CAPPED,
    DUPLICATE,
    AdmissionControl,
    pick_shed_victim,
)
from repro.pbft.config import PbftConfig
from repro.pbft.log import MessageLog, RequestStore, Slot
from repro.pbft.messages import (
    BUSY_INFLIGHT,
    BUSY_OVERSIZED,
    BUSY_SHED,
    AuthenticatorRefresh,
    BatchRetransmit,
    BusyReply,
    CheckpointMsg,
    Commit,
    DigestsMsg,
    FetchDigestsMsg,
    FetchPagesMsg,
    NewViewMsg,
    PagesMsg,
    PrePrepare,
    Prepare,
    Reply,
    Request,
    StatusMsg,
    ViewChangeMsg,
)
from repro.pbft.node import Envelope, KeyDirectory, Node, REPLICA_PORT, replica_address
from repro.pbft.nondet import (
    AcceptAllValidator,
    TimestampProvider,
    decode_timestamp,
)
from repro.pbft.reconfig import ReconfigManager
from repro.pbft.recovery import RecoveryMixin
from repro.pbft.viewchange import ViewChangeMixin
from repro.statemgr.checkpoints import Checkpoint, CheckpointStore
from repro.statemgr.pages import PagedState
from repro.crypto.mac import MacKey

# Operations whose first byte is this prefix are middleware system
# requests (Join phase 2, Leave, replica Reconfig) — ordered like client
# requests but executed by the middleware, invisible to the application.
SYSTEM_OP_PREFIX = 0xFF

# Replica-sender message types subject to the configuration-epoch gate.
# Exactly the agreement/view-change family: a stale incarnation must not
# contribute votes, but the recovery family (status, retransmit, state
# transfer) stays epoch-neutral — it is all a bootstrapping replica sends.
_EPOCH_GATED = (PrePrepare, Prepare, Commit, ViewChangeMsg, NewViewMsg)


class Application:
    """The up-call interface an application implements (paper section 3.2)."""

    def bind_state(self, state: PagedState, app_offset: int) -> None:
        """Receive the shared state region; the application owns
        ``[app_offset, state.size)`` and must not touch the library pages."""

    def execute(self, op: bytes, client_id: int, nondet_ts: int, readonly: bool) -> bytes:
        """Execute one operation deterministically and return the reply."""
        raise NotImplementedError

    def attach_obs(self, obs, track: str) -> None:
        """Receive the deployment's observability handle (metrics registry
        plus tracer) and the host track name to record under.  Optional;
        applications that emit no metrics or trace events ignore it."""

    def execute_cost_ns(self, op: bytes, readonly: bool) -> int:
        """Simulated CPU cost of executing ``op``, known up front."""
        return 0

    def take_accumulated_cost(self) -> int:
        """Simulated CPU/disk cost accrued *during* the last execution
        (returned once, then reset).  Used by applications whose cost
        depends on what the operation actually did (e.g. SQL)."""
        return 0

    def authorize_join(self, idbuf: bytes) -> Optional[int]:
        """Dynamic membership: authorize a join and return a principal id
        (e.g. a user id), or None to refuse (paper section 3.1)."""
        return None

    def on_state_installed(self) -> None:
        """Called after state transfer or rollback replaced the pages."""


class NullApplication(Application):
    """The paper's benchmark application: null requests, sized replies.

    To keep checkpoints meaningful it still dirties one state page per
    request (a rolling execution counter), like the no-op service the
    original benchmarks shipped.
    """

    def __init__(self, reply_size: int = 1024, execute_cost_ns: int = 2_000) -> None:
        self.reply_size = reply_size
        self._execute_cost_ns = execute_cost_ns
        self.state: Optional[PagedState] = None
        self.app_offset = 0
        self.executed = 0

    def bind_state(self, state: PagedState, app_offset: int) -> None:
        self.state = state
        self.app_offset = app_offset

    def authorize_join(self, idbuf: bytes) -> Optional[int]:
        # The benchmark service admits any non-empty identification buffer;
        # the principal is a digest of it (one session per buffer).
        if not idbuf:
            return None
        from repro.crypto.digests import md5_digest

        return int.from_bytes(md5_digest(idbuf)[:6], "big")

    def execute(self, op: bytes, client_id: int, nondet_ts: int, readonly: bool) -> bytes:
        if not readonly and self.state is not None:
            # The execution counter lives in the replicated state itself
            # (first 8 bytes of the application partition), so a replica
            # that catches up via state transfer continues exactly where
            # the group is — a local attribute would diverge the roots.
            counter = int.from_bytes(self.state.read(self.app_offset, 8), "big") + 1
            self.executed = counter
            self.state.modify(self.app_offset, 8)
            self.state.write(self.app_offset, counter.to_bytes(8, "big"))
            slot_space = self.state.size - self.app_offset - 16
            offset = self.app_offset + 8 + (counter * 8) % max(8, slot_space)
            self.state.modify(offset, 8)
            self.state.write(offset, counter.to_bytes(8, "big"))
        return bytes(self.reply_size)

    def execute_cost_ns(self, op: bytes, readonly: bool) -> int:
        return self._execute_cost_ns


class Replica(ViewChangeMixin, RecoveryMixin, Node):
    """One member of the replica group."""

    def __init__(
        self,
        replica_id: int,
        config: PbftConfig,
        host: Host,
        keys: KeyDirectory,
        app: Application,
        nondet_provider=None,
        nondet_validator=None,
        real_crypto: bool = True,
        obs=None,
    ) -> None:
        super().__init__(
            config, host, REPLICA_PORT, keys, "replica", replica_id, real_crypto,
            obs=obs,
        )
        self.app = app
        self.nondet_provider = nondet_provider or TimestampProvider()
        self.nondet_validator = nondet_validator or AcceptAllValidator()

        self.view = 0
        self.in_view_change = False
        self.pending_new_view = 0
        self.last_exec = 0
        self.committed_upto = 0
        self.next_seq = 0

        self.log = MessageLog(config.log_window)
        self.reqstore = RequestStore()
        self.state = PagedState(config.state_pages, config.page_size)
        self.checkpoints = CheckpointStore(quorum=config.quorum)
        self.pending_votes: dict[int, dict[int, bytes]] = defaultdict(dict)
        self.pending_requests: list[Request] = []
        self.queued_digests: set[bytes] = set()
        self.exec_journal: dict[int, tuple[PrePrepare, list[Request]]] = {}
        self.client_addr: dict[int, Address] = {}
        self.view_changes: dict[int, dict[int, ViewChangeMsg]] = {}
        # Requests a backup has seen but not yet observed ordered —
        # these keep the view-change timer armed.
        self.waiting_requests: set[bytes] = set()
        # Highest view each peer has demonstrably installed (from status,
        # agreement traffic, retransmits, new-views).  Drives view
        # synchronization after restart; views only grow, so the map
        # survives crash/restart cycles.
        self.view_evidence: dict[int, int] = {}
        # Rate limit for stale-view status nudges, per peer.
        self._view_nudges: dict[int, int] = {}

        self.crashed = False
        # Fault injection: an equivocating primary assigns conflicting
        # pre-prepares for the same sequence number (see
        # :meth:`_issue_pre_prepare`).  Harmless on a backup.
        self.equivocate = False
        self.recovering = False
        self.recovery_started_at: Optional[int] = None
        self.recovery_completed_at: Optional[int] = None
        self.recovery_target = 0
        self.wedged = False
        self.wedged_since: Optional[int] = None
        self.transfer = None
        self.stalled_batches: dict[int, BatchRetransmit] = {}

        self._vc_timer = None
        self._vc_timeout_current = config.view_change_timeout_ns
        self._status_timer = None
        self._gossip_timer = self.host.sim.schedule(
            config.status_interval_ns, self._status_gossip
        )

        self.membership = None  # installed by repro.membership when enabled
        # Typed counters in the shared registry; reads of unset keys are 0
        # and ``+=`` registers the counter, so this drops in for the old
        # defaultdict(int).
        self.stats = self.obs.registry.view(
            f"{config.group_prefix}replica{replica_id}."
        )
        # Overload admission pipeline (see repro.pbft.admission): per-client
        # in-flight caps, queue shedding policy, and the penalty box.
        self.admission = AdmissionControl(config)
        self._depth_gauge = self.obs.registry.gauge(
            f"{config.group_prefix}replica{replica_id}.pending_depth"
        )
        # Dynamic replica membership: epoch state, ordered reconfiguration
        # ops, and the stale-incarnation gate (repro.pbft.reconfig).
        self.reconfig = ReconfigManager(self)

        app.bind_state(self.state, config.library_pages * config.page_size)
        app.attach_obs(self.obs, host.name)

        # The durable image a restart falls back to before the first
        # checkpoint stabilizes: the post-bind genesis state.  Without it,
        # tentatively-executed effects would survive a crash (the pages are
        # never rolled back) and be re-applied on replay, forking this
        # replica's checkpoint roots from the quorum's.
        self._genesis_pages = self.state.snapshot_pages()
        self._genesis_tree_nodes = self.state.tree.snapshot_nodes()

        self._handlers = {
            Request: self.on_request,
            PrePrepare: self.on_pre_prepare,
            Prepare: self.on_prepare,
            Commit: self.on_commit,
            CheckpointMsg: self.on_checkpoint,
            StatusMsg: self.on_status,
            BatchRetransmit: self.on_batch_retransmit,
            FetchDigestsMsg: self.on_fetch_digests,
            FetchPagesMsg: self.on_fetch_pages,
            DigestsMsg: self.on_digests,
            PagesMsg: self.on_pages,
            ViewChangeMsg: lambda m, e=None: self.on_view_change(m),
            NewViewMsg: lambda m, e=None: self.on_new_view(m),
            AuthenticatorRefresh: self.on_authenticator_refresh,
        }

    # -- identity helpers ---------------------------------------------------------

    def primary_of(self, view: int) -> int:
        return view % self.config.n

    def _status_gossip(self) -> None:
        """Periodic status while work is outstanding: peers respond with
        missing batches/checkpoints, healing losses without view changes."""
        self._gossip_timer = self.host.sim.schedule(
            self.config.status_interval_ns, self._status_gossip
        )
        if self.crashed:
            return
        lagging = any(not slot.executed for slot in self.log.slots.values())
        if lagging or self.wedged or self.waiting_requests:
            # A wedge that outlives a full status interval means the
            # certificate-only retransmits cannot help: the missing piece
            # is a big-request body (section 2.4), and if f+1 replicas are
            # wedged alike the next checkpoint never stabilizes either.
            # Escalate to a recovery-style status — peers then replay full
            # bodies, which the commit certificate already authorizes.
            stuck = (
                self.wedged
                and self.wedged_since is not None
                and self.host.sim.now - self.wedged_since
                >= 2 * self.config.status_interval_ns
            )
            if stuck:
                self.stats["wedge_escalations"] += 1
            self._send_status(recovering=self.recovering or stuck)
        if self.transfer is not None and not self.transfer_is_stale():
            self.transfer.retry()

    @property
    def is_primary(self) -> bool:
        return self.primary_of(self.view) == self.node_id

    def register_client(self, client_id: int, addr: Address, session_key=None) -> None:
        """Static-membership setup: record a client's address and session key."""
        self.client_addr[client_id] = addr
        if session_key is not None:
            self.install_session_key("client", client_id, session_key)

    def send_to_replica(self, rid: int, msg) -> None:
        if self.config.use_macs:
            self.send_mac(replica_address(rid, self.group_prefix), "replica", rid, msg)
        else:
            self.send_signed(replica_address(rid, self.group_prefix), msg)

    def _state_installed(self) -> None:
        """The state pages were replaced wholesale (transfer, rollback,
        restart): let the application and the membership layer rebuild any
        caches derived from them."""
        if self.membership is not None:
            self.membership.reload_from_state()
        self.reconfig.reload_from_state()
        self.app.on_state_installed()

    def lookup_client_public(self, client_id: int):
        public = self.keys.client_public(client_id)
        if public is None and self.membership is not None:
            public = self.membership.client_public(client_id)
        return public

    def verify_envelope(self, env: Envelope) -> bool:
        # Route client public-key lookups through the membership table so
        # dynamically joined clients can be verified.
        if env.auth_kind == 3 and env.sender_kind == "client":  # AUTH_SIG
            public = self.lookup_client_public(env.sender_id)
            if public is None:
                return False
            if not self.real_crypto:
                return True
            from repro.crypto.rabin import rabin_verify

            return rabin_verify(public, env.msg.auth_bytes(), env.auth)
        return super().verify_envelope(env)

    # -- dispatch ------------------------------------------------------------------

    def dispatch(self, env: Envelope) -> None:
        if self.crashed:
            return
        if env.sender_kind == "replica" and isinstance(env.msg, _EPOCH_GATED):
            if not self.reconfig.admit_sender(env.sender_id, env.sender_epoch):
                # A reconfigured-away incarnation (or a vacated slot) is
                # still talking: reject loudly.  Recovery-family messages
                # (status, retransmits, state transfer) stay epoch-neutral
                # so a bootstrapping replica can catch up.
                self.stats["stale_epoch_rejected"] += 1
                if self.tracer.enabled:
                    self.tracer.event(
                        self.host.name, "stale-epoch-rejected",
                        cat="pbft.reconfig",
                        args={
                            "sender": env.sender_id,
                            "sender_epoch": env.sender_epoch,
                            "epoch": self.current_epoch,
                        },
                    )
                return
            if env.sender_epoch > self.current_epoch:
                # A correct peer is ahead of us across an epoch boundary;
                # harmless (we will cross it at the same seq), but worth
                # counting for the campaign's forensics.
                self.stats["newer_epoch_observed"] += 1
        handler = self._handlers.get(type(env.msg))
        if handler is None:
            if self.membership is not None:
                self.membership.dispatch(env)
            return
        handler(env.msg, env)

    def _on_packet(self, packet) -> None:
        # Penalty box: packets from muted senders are dropped for the cost
        # of a header peek, before the MAC/signature check — the whole
        # point of the box is to shed a garbage flood's verification cost.
        env = packet.payload
        if isinstance(env, Envelope) and not self.crashed:
            penalty = self.admission.penalty
            # With the box empty (the steady state) there is nothing to
            # look up; the hot path skips building the key tuple.
            if not (HOTPATH.enabled and not penalty.entries):
                key = (env.sender_kind, env.sender_id)
                if penalty.muted(key, self.host.sim.now):
                    self.host.charge_cpu(self.costs.msg_recv_ns)
                    self.stats["penalty_box_drops"] += 1
                    return
        super()._on_packet(packet)

    def on_auth_failure(self, env: Envelope) -> None:
        self.stats["auth_failures"] += 1
        if env.sender_kind != "client":
            # Muting a replica could silence a correct peer and cut into
            # the quorum; replica misbehaviour is the protocol's job.
            return
        registered = env.sender_id in self.client_addr or (
            self.membership is not None
            and self.membership.client_address(env.sender_id) is not None
        )
        if registered and self._session_key_for("client", env.sender_id) is None:
            # Indistinguishable from the restarted-replica condition of
            # paper section 2.3: we may simply have lost this registered
            # client's session key.  Never penalize it.
            return
        if self.admission.penalty.strike(("client", env.sender_id), self.host.sim.now):
            self.stats["penalty_boxed"] += 1
            if self.tracer.enabled:
                self.tracer.event(
                    self.host.name, "penalty-box", cat="pbft.admission",
                    args={"sender": env.sender_id},
                )

    # -- client requests ---------------------------------------------------------------

    def on_request(self, req: Request, env: Envelope = None) -> None:
        if self.membership is not None:
            self.host.charge_cpu(self.costs.redirection_lookup_ns)
            if not self.membership.admit_request(req):
                self.stats["requests_rejected"] += 1
                return
        elif req.client not in self.client_addr and not self._is_system_op(req):
            self.stats["requests_rejected"] += 1
            return

        max_bytes = self.config.max_request_bytes
        if (
            max_bytes is not None
            and len(req.op) > max_bytes
            and not self._is_system_op(req)
        ):
            self.stats["oversized_rejected"] += 1
            self._send_busy(req, BUSY_OVERSIZED, 0)
            return

        if self.tracer.enabled and self.is_primary and not req.readonly:
            self.tracer.mark((req.client, req.req_id), "primary-recv", self.host.name)

        if req.readonly and self.config.read_only_optimization:
            self._execute_readonly(req)
            return

        if self.reqstore.already_executed(req):
            self.admission.release(req.client, req.req_id)
            self._resend_cached_reply(req)
            return

        if self.is_primary and not self.in_view_change:
            self._admit_at_primary(req)
        else:
            # A backup holding an unexecuted request starts the clock on
            # the primary.  The waiting set doubles as the body store for
            # digest-only ("big") pre-prepares, so a global budget here
            # would starve execution of honest work; instead it is bounded
            # per client — the single-outstanding-op rule.  Only bodies no
            # accepted pre-prepare references count toward the bound: a
            # lagging backup legitimately holds many ordered-but-unexecuted
            # bodies for one correct client, and refusing the next body
            # would wedge it until a checkpoint transfer (the §2.4 failure
            # this tree exists to avoid).  A flood's surplus is exactly the
            # unordered part, so the defense is unchanged.
            cap = self.config.max_client_inflight
            if (
                cap > 0
                and req.digest not in self.waiting_requests
                and not self._is_system_op(req)
                and self._waiting_held_by(req.client) >= cap
            ):
                self.stats["waiting_shed"] += 1
                return
            self.reqstore.add(req)
            self.waiting_requests.add(req.digest)
            self._arm_vc_timer()

    def _waiting_held_by(self, client: int) -> int:
        """Unordered request bodies this backup already holds for a client.

        Bodies referenced by an accepted pre-prepare are excluded: they are
        ordered work this replica must keep to execute, however far behind
        it is running.  The log scan is skipped entirely in the common case
        of a caught-up backup holding nothing for the client.
        """
        held = []
        for digest in self.waiting_requests:
            req = self.reqstore.get(digest)
            if req is not None and req.client == client:
                held.append(digest)
        if not held:
            return 0
        ordered = self.log.live_request_digests()
        return sum(1 for digest in held if digest not in ordered)

    def _admit_at_primary(self, req: Request) -> None:
        """The primary's bounded admission pipeline.

        Order matters: a retransmission of something already queued or in
        ordering is absorbed first (it must not consume more queue space —
        the per-client single-outstanding-request rule), then the global
        queue budget is enforced by shedding the newest request of the
        heaviest client with an explicit BUSY reply.
        """
        if req.digest in self.queued_digests:
            self.stats["duplicate_inflight"] += 1
            return
        verdict = self.admission.inflight_verdict(req)
        if verdict != ADMIT and self._is_system_op(req):
            # Membership system ops ride outside the client cap.
            verdict = ADMIT
        if verdict == DUPLICATE:
            # Same (client, req_id) already admitted under a *different*
            # digest — a client mutating an op it already submitted.  The
            # first version keeps its slot.
            self.stats["duplicate_inflight"] += 1
            return
        if verdict == CAPPED:
            self.stats["inflight_capped"] += 1
            self._send_busy(
                req, BUSY_INFLIGHT,
                self.admission.retry_hint_ns(
                    len(self.pending_requests), self.config.pending_queue_budget
                ),
            )
            return
        self.reqstore.add(req)
        self.admission.note_inflight(req)
        budget = self.config.pending_queue_budget
        if budget is not None and len(self.pending_requests) >= budget:
            victim = pick_shed_victim(self.pending_requests, req)
            self._shed(victim)
            if victim is req:
                return
        self.queued_digests.add(req.digest)
        self.pending_requests.append(req)
        self._depth_gauge.set(len(self.pending_requests))
        self._try_issue_batches()

    def _shed(self, req: Request) -> None:
        """Drop a queued (or arriving) request, with an explicit BUSY reply."""
        if req.digest in self.queued_digests:
            self.queued_digests.discard(req.digest)
            self.pending_requests.remove(req)
        self.admission.release(req.client, req.req_id)
        # Shed requests were never assigned a sequence number, so their
        # bodies can be dropped from the store too.
        self.reqstore.by_digest.pop(req.digest, None)
        self.stats["requests_shed"] += 1
        self._depth_gauge.set(len(self.pending_requests))
        if self.tracer.enabled:
            self.tracer.mark((req.client, req.req_id), "shed", self.host.name)
        self._send_busy(
            req, BUSY_SHED,
            self.admission.retry_hint_ns(
                len(self.pending_requests), self.config.pending_queue_budget
            ),
        )

    def _send_busy(self, req: Request, reason: int, retry_after_ns: int) -> None:
        addr = self.client_addr.get(req.client)
        if addr is None and self.membership is not None:
            addr = self.membership.client_address(req.client)
        if addr is None:
            return
        msg = BusyReply(
            view=self.view,
            req_id=req.req_id,
            client=req.client,
            sender=self.node_id,
            reason=reason,
            retry_after_ns=retry_after_ns,
            queue_depth=len(self.pending_requests),
        )
        self.stats["busy_sent"] += 1
        if self.tracer.enabled:
            self.tracer.event(
                self.host.name, "busy-reply", cat="pbft.admission",
                args={"client": req.client, "req_id": req.req_id, "reason": reason},
            )
        if self.config.use_macs and ("client", req.client) in self.session_keys:
            self.send_mac(addr, "client", req.client, msg)
        else:
            self.send_signed(addr, msg)

    @staticmethod
    def _is_system_op(req: Request) -> bool:
        return bool(req.op) and req.op[0] == SYSTEM_OP_PREFIX

    @staticmethod
    def _is_reconfig_op(req: Request) -> bool:
        from repro.membership.messages import SYS_RECONFIG

        return (
            len(req.op) >= 2
            and req.op[0] == SYSTEM_OP_PREFIX
            and req.op[1] == SYS_RECONFIG
        )

    def _execute_system_op(self, req: Request, nondet_ts: int) -> bytes:
        if self._is_reconfig_op(req):
            return self.reconfig.execute_system(req, nondet_ts)
        return self.membership.execute_system(req, nondet_ts)

    def _execute_readonly(self, req: Request) -> None:
        """Read-only fast path: execute immediately, sequencing permitting."""
        self.host.charge_cpu(self.app.execute_cost_ns(req.op, True))
        result = self.app.execute(req.op, req.client, self.host.local_time(), True)
        self.host.charge_cpu(self.app.take_accumulated_cost())
        reply = Reply(
            view=self.view,
            req_id=req.req_id,
            client=req.client,
            sender=self.node_id,
            result=result,
            tentative=False,
        )
        self.stats["readonly_executed"] += 1
        if self.tracer.enabled:
            self.tracer.mark((req.client, req.req_id), "executed", self.host.name)
        self._send_reply(reply, req)

    # -- primary batching ----------------------------------------------------------------

    def _try_issue_batches(self) -> None:
        """Issue pre-prepares while the congestion window allows.

        The window counts sequence numbers assigned but not yet executed
        (paper section 2.1); when it is full, arriving requests pool up and
        later leave in one batch — that pooling is the entire batching
        optimization.
        """
        if not self.is_primary or self.in_view_change or self.crashed:
            return
        while self.pending_requests:
            # The window is measured against *committed* execution: a batch
            # only leaves the window once its commit certificate completed,
            # even if tentative execution already ran it.
            if self.next_seq - self.committed_upto >= self.config.congestion_window:
                return
            if self.next_seq + 1 > self.log.high_watermark:
                return  # wait for a checkpoint to advance the window
            size = self.config.max_batch if self.config.batching else 1
            batch = self.pending_requests[:size]
            del self.pending_requests[:size]
            self._depth_gauge.set(len(self.pending_requests))
            self._issue_pre_prepare(batch)

    def _issue_pre_prepare(self, batch: list[Request]) -> None:
        self.next_seq += 1
        seq = self.next_seq
        nondet = self.nondet_provider.generate(self.host)
        inline = tuple(r for r in batch if not r.big)
        pp = PrePrepare(
            view=self.view,
            seq=seq,
            request_digests=tuple(r.digest for r in batch),
            nondet=nondet,
            inline_requests=inline,
            sender=self.node_id,
        )
        slot = self.log.slot(seq)
        slot.view_slot(self.view).pre_prepare = pp
        for req in batch:
            self.queued_digests.discard(req.digest)
            # The in-flight cap guards the *unordered* queue.  Release at
            # pre-prepare issuance, not execution: a correct client only
            # sends its next operation after f+1 replies to the last one,
            # and those replies exist only if this primary already ordered
            # it — but our own execution may lag our pre-prepare (e.g.
            # reordered commits), and holding the slot until then would
            # make the primary refuse valid work and get itself deposed.
            self.admission.release(req.client, req.req_id)
        self.stats["batches_issued"] += 1
        self.stats["batched_requests"] += len(batch)
        if self.tracer.enabled:
            for req in batch:
                self.tracer.mark((req.client, req.req_id), "pre-prepare", self.host.name)
            self.tracer.event(
                self.host.name, "pre-prepare", cat="pbft",
                args={"seq": seq, "view": self.view, "batch": len(batch)},
            )
        if inline:
            # Forwarding full request bodies inside the pre-prepare is the
            # cost the "all requests big" optimization avoids: the primary
            # re-marshals and re-digests every body once per backup, on the
            # critical path of the agreement round.
            inline_bytes = sum(r.body_size() for r in inline)
            self.host.charge_cpu(
                (self.config.n - 1)
                * (inline_bytes * self.costs.inline_body_ns_x100) // 100
            )
        if self.equivocate and self.config.n > 2:
            # Byzantine behaviour: f backups see the genuine assignment,
            # the rest see a twin whose non-determinism data is perturbed
            # (still validator-acceptable, but a different batch digest).
            # Neither variant can gather a commit quorum, so the group
            # stalls until client retransmissions trigger a view change.
            twin = PrePrepare(
                view=pp.view,
                seq=seq,
                request_digests=pp.request_digests,
                nondet=pp.nondet + b"\x00",
                inline_requests=pp.inline_requests,
                sender=self.node_id,
            )
            backups = [rid for rid in range(self.config.n) if rid != self.node_id]
            self.stats["equivocations"] += 1
            self.broadcast_to_replicas(pp, only=backups[: self.config.f])
            self.broadcast_to_replicas(twin, only=backups[self.config.f :])
        else:
            self.broadcast_to_replicas(pp, exclude=self.node_id)
        self._maybe_prepared(seq, self.view)

    # -- agreement ------------------------------------------------------------------------

    def on_pre_prepare(self, pp: PrePrepare, env: Envelope = None) -> None:
        if env is not None and env.sender_kind == "replica":
            self._note_view_evidence(env.sender_id, pp.view)
        if self.in_view_change or pp.view != self.view:
            return
        if env is not None and (
            env.sender_kind != "replica" or env.sender_id != self.primary_of(pp.view)
        ):
            return
        if not self.log.in_window(pp.seq):
            return
        slot = self.log.slot(pp.seq)
        vs = slot.view_slot(pp.view)
        if vs.pre_prepare is not None:
            if vs.pre_prepare.batch_digest != pp.batch_digest:
                # Two conflicting assignments from the primary: Byzantine.
                self.stats["conflicting_pre_prepares"] += 1
                self.start_view_change(self.view + 1)
            return
        if not self.nondet_validator.validate(pp.nondet, self.host, replaying=False):
            self.stats["nondet_rejections"] += 1
            self.start_view_change(self.view + 1)
            return
        vs.pre_prepare = pp
        if pp.inline_requests:
            # A backup must re-digest every inline body to check it against
            # the pre-prepare's request digests before accepting.
            inline_bytes = sum(r.body_size() for r in pp.inline_requests)
            self.host.charge_cpu(
                (inline_bytes * self.costs.inline_body_ns_x100) // 100
            )
        for req in pp.inline_requests:
            self.reqstore.add(req)
        self._send_prepare(pp)
        self._arm_vc_timer()
        self._maybe_prepared(pp.seq, pp.view)

    def _send_prepare(self, pp: PrePrepare) -> None:
        prepare = Prepare(
            view=pp.view, seq=pp.seq, batch_digest=pp.batch_digest, sender=self.node_id
        )
        slot = self.log.slot(pp.seq)
        slot.view_slot(pp.view).prepares[self.node_id] = pp.batch_digest
        self.broadcast_to_replicas(prepare, exclude=self.node_id)

    def on_prepare(self, msg: Prepare, env: Envelope = None) -> None:
        self._note_view_evidence(msg.sender, msg.view)
        if msg.view != self.view or self.in_view_change:
            return
        if not self.log.in_window(msg.seq):
            return
        slot = self.log.slot(msg.seq)
        slot.view_slot(msg.view).prepares[msg.sender] = msg.batch_digest
        if not slot.executed:
            # Peer activity on an operation we have not executed is
            # evidence of outstanding work: start the clock on the primary
            # (we may be missing its pre-prepare entirely).
            self._arm_vc_timer()
        self._maybe_prepared(msg.seq, msg.view)

    def _maybe_prepared(self, seq: int, view: int) -> None:
        slot = self.log.peek(seq)
        if slot is None or not slot.prepared(view, self.config.f):
            return
        vs = slot.view_slot(view)
        if self.node_id not in vs.commits:
            pp = vs.pre_prepare
            commit = Commit(
                view=view, seq=seq, batch_digest=pp.batch_digest, sender=self.node_id
            )
            vs.commits[self.node_id] = pp.batch_digest
            self.broadcast_to_replicas(commit, exclude=self.node_id)
            if self.tracer.enabled and self.is_primary:
                self._mark_batch(pp, "prepared")
            # Tentative execution: run the request as soon as it is
            # prepared; the client compensates by demanding 2f+1 replies.
            if self.config.tentative_execution:
                self._execute_ready(allow_tentative=True)
        self._maybe_committed(seq, view)

    def on_commit(self, msg: Commit, env: Envelope = None) -> None:
        self._note_view_evidence(msg.sender, msg.view)
        if msg.view != self.view or self.in_view_change:
            return
        if not self.log.in_window(msg.seq):
            return
        slot = self.log.slot(msg.seq)
        slot.view_slot(msg.view).commits[msg.sender] = msg.batch_digest
        self._maybe_committed(msg.seq, msg.view)

    def _maybe_committed(self, seq: int, view: int) -> None:
        slot = self.log.peek(seq)
        if slot is None or slot.committed:
            return
        if not slot.committed_local(view, self.config.f):
            return
        slot.committed = True
        slot.committed_view = view
        if self.tracer.enabled and self.is_primary:
            pp = slot.pre_prepare_in(view)
            if pp is not None:
                self._mark_batch(pp, "committed")
        self._advance_committed()
        self._execute_ready(allow_tentative=self.config.tentative_execution)

    def _advance_committed(self) -> None:
        seq = self.committed_upto + 1
        while True:
            slot = self.log.peek(seq)
            if slot is None or not slot.committed:
                break
            if slot.executed and slot.tentative:
                # A tentative execution just became final: upgrade the
                # cached replies so retransmissions get stable answers.
                self._finalize_tentative(slot)
            self.committed_upto = seq
            seq += 1
        # Commits freed congestion-window space: issue pooled requests.
        if self.is_primary:
            self._try_issue_batches()

    def _finalize_tentative(self, slot: Slot) -> None:
        slot.tentative = False
        entry = self.exec_journal.get(slot.seq)
        if entry is None:
            return
        for req in entry[1]:
            if req is None:
                continue
            self._stabilize_cached_reply(req)

    def _stabilize_cached_reply(self, req: Request) -> None:
        """Clear the tentative flag on the cached reply for ``req`` once a
        quorum proof shows its execution committed."""
        cached = self.reqstore.last_reply.get(req.client)
        if cached is not None and cached.req_id == req.req_id and cached.tentative:
            self.reqstore.last_reply[req.client] = cached.stabilized()

    # -- execution -----------------------------------------------------------------------

    def _execute_ready(self, allow_tentative: bool = False) -> None:
        """Execute slots in order; stop at gaps, missing bodies, or
        uncommitted (non-tentative-eligible) batches."""
        executed_any = False
        while True:
            seq = self.last_exec + 1
            slot = self.log.peek(seq)
            if slot is None or slot.executed:
                if slot is None:
                    break
                if slot.executed:
                    self.last_exec = seq
                    continue
            committed = slot.committed
            tentative_ok = (
                allow_tentative
                and not committed
                and not self.in_view_change
                and slot.prepared(self.view, self.config.f)
            )
            if not committed and not tentative_ok:
                break
            view = slot.committed_view if committed else self.view
            pp = slot.pre_prepare_in(view)
            if pp is None:
                # Commit certificate without the pre-prepare (lost
                # datagram): cannot execute; wait for the checkpoint.
                self._mark_wedged()
                break
            requests = [self.reqstore.get(d) for d in pp.request_digests]
            if any(r is None for r in requests):
                # Missing request body — the big-request wedge of paper
                # section 2.4.
                self._mark_wedged()
                break
            self._clear_wedge()
            self._execute_batch(pp, requests, tentative=not committed, slot=slot)
            executed_any = True
        if executed_any:
            # Progress resets the clock on the primary: the view-change
            # timer measures time since the *oldest outstanding* request
            # stopped moving, not time since the first request ever.
            self._disarm_vc_timer()
        if self._has_outstanding_work():
            self._arm_vc_timer()
        elif not executed_any:
            self._disarm_vc_timer()

    def _mark_wedged(self) -> None:
        if not self.wedged:
            self.wedged = True
            self.wedged_since = self.host.sim.now
            self.stats["wedged_events"] += 1
            if self.tracer.enabled:
                self.tracer.event(self.host.name, "wedged", cat="pbft.fault")

    def _clear_wedge(self) -> None:
        if self.wedged and self.wedged_since is not None:
            self.stats["wedge_duration_ns"] += self.host.sim.now - self.wedged_since
        self.wedged = False
        self.wedged_since = None

    def _execute_batch(
        self,
        pp: PrePrepare,
        requests: list[Optional[Request]],
        tentative: bool,
        slot: Optional[Slot],
        silent: bool = False,
    ) -> None:
        nondet_ts = decode_timestamp(pp.nondet)
        for req in requests:
            if req is None:
                continue
            if self.reqstore.already_executed(req):
                # A committed replay of something we executed tentatively
                # is its commit proof: upgrade the cached reply first so
                # the resend counts toward the client's stable quorum.
                if not tentative:
                    self._stabilize_cached_reply(req)
                if not silent:
                    self._resend_cached_reply(req)
                continue
            traced = self.tracer.enabled
            if self._is_system_op(req) and (
                self.membership is not None or self._is_reconfig_op(req)
            ):
                cpu_start, _ = self.host.charge_cpu(0)
                result = self._execute_system_op(req, nondet_ts)
                cpu_end = cpu_start
            else:
                cpu_start, _ = self.host.charge_cpu(
                    self.app.execute_cost_ns(req.op, False)
                )
                result = self.app.execute(req.op, req.client, nondet_ts, False)
                _, cpu_end = self.host.charge_cpu(self.app.take_accumulated_cost())
            if traced:
                self.tracer.complete(
                    self.host.name, "execute", cpu_start, max(cpu_start, cpu_end),
                    cat="pbft.exec", corr=(req.client, req.req_id),
                    args={"seq": pp.seq, "tentative": tentative},
                )
            reply = Reply(
                view=self.view,
                req_id=req.req_id,
                client=req.client,
                sender=self.node_id,
                result=result,
                tentative=tentative,
            )
            self.reqstore.record_execution(req, reply, nondet_ts)
            self.admission.release(req.client, req.req_id)
            if self.membership is not None:
                self.membership.touch(req.client, nondet_ts)
            self.waiting_requests.discard(req.digest)
            self.stats["requests_executed"] += 1
            if traced and self.is_primary:
                self.tracer.mark((req.client, req.req_id), "executed", self.host.name)
            if not silent:
                self._send_reply(reply, req)
        if pp.seq % self.config.checkpoint_interval == 0:
            # Checkpoint boundary: whatever reconfiguration is pending —
            # including one accepted in this very batch — takes effect for
            # seqs beyond the boundary.  Before end_of_execution, so the
            # updated epoch record is inside the checkpoint taken below.
            self.reconfig.apply_pending(pp.seq)
        self.exec_journal[pp.seq] = (pp, [r for r in requests if r is not None])
        self.state.end_of_execution()
        # Execution is strictly in-order, so this batch is exactly the slot
        # any wedge was blocking on.  Clearing here (the single funnel for
        # every execution path) keeps the flag from outliving its cause when
        # progress comes via batch replay rather than _execute_ready — a
        # stale wedge permanently disables the view-change timer and can
        # deadlock the group when this replica's vote is later needed.
        self._clear_wedge()
        self.last_exec = pp.seq
        if slot is not None:
            slot.executed = True
            slot.tentative = tentative
        if not tentative:
            self.committed_upto = max(self.committed_upto, pp.seq)
        if pp.seq % self.config.checkpoint_interval == 0:
            self._install_own_checkpoint(pp.seq)
        if self.is_primary:
            self._try_issue_batches()

    def _mark_batch(self, pp: PrePrepare, boundary: str) -> None:
        """Phase-mark every request of a batch (primary's common-clock log)."""
        for digest in pp.request_digests:
            req = self.reqstore.get(digest)
            if req is not None:
                self.tracer.mark((req.client, req.req_id), boundary, self.host.name)

    def _designated_replier(self, req: Request) -> int:
        return (req.req_id + req.client) % self.config.n

    def _send_reply(self, reply: Reply, req: Request, force_full: bool = False) -> None:
        addr = self.client_addr.get(req.client)
        if addr is None and self.membership is not None:
            addr = self.membership.client_address(req.client)
        if addr is None:
            return
        if (
            not force_full
            and self.config.reply_digest_optimization
            and self._designated_replier(req) != self.node_id
            and len(reply.result) > DIGEST_SIZE
        ):
            reply = Reply(
                view=reply.view,
                req_id=reply.req_id,
                client=reply.client,
                sender=reply.sender,
                result=reply.result_digest,
                tentative=reply.tentative,
                digest_only=True,
            )
        self.stats["replies_sent"] += 1
        if self.config.use_macs and ("client", req.client) in self.session_keys:
            self.send_mac(addr, "client", req.client, reply)
        else:
            # No session with this client (e.g. a denied join): fall back
            # to a signature the client can verify from public keys alone.
            self.send_signed(addr, reply)

    def _resend_cached_reply(self, req: Request) -> None:
        cached = self.reqstore.last_reply.get(req.client)
        if cached is None or cached.req_id != req.req_id:
            return
        self.stats["replies_resent"] += 1
        # A retransmitting client may have missed the designated replier's
        # full reply (e.g. that replica is wedged or crashed), so resends
        # always carry the full result.
        self._send_reply(cached, req, force_full=True)

    # -- checkpoints --------------------------------------------------------------------

    def _install_own_checkpoint(self, seq: int) -> None:
        self.host.charge_cpu(self.costs.crypto.digest_cost(self.config.page_size))
        root = self.state.refresh_tree()
        checkpoint = Checkpoint(
            seq=seq,
            root=root,
            pages=self.state.snapshot_pages(),
            tree_nodes=self.state.tree.snapshot_nodes(),
            meta={
                "client_marks": dict(self.reqstore.last_executed_req),
                # The last reply per client is part of the checkpointed
                # state (paper section 2.1): anyone who adopts the
                # watermarks must also be able to answer retransmissions.
                "client_replies": dict(self.reqstore.last_reply),
            },
        )
        self.checkpoints.add(checkpoint)
        checkpoint.proof[self.node_id] = root
        self.stats["checkpoints_taken"] += 1
        if self.tracer.enabled:
            self.tracer.event(
                self.host.name, "checkpoint", cat="pbft.checkpoint", args={"seq": seq}
            )
        # Fold in votes that arrived before we got here.
        for rid, claimed in self.pending_votes.pop(seq, {}).items():
            if self.checkpoints.record_vote(seq, rid, claimed):
                self._on_checkpoint_stable(seq)
        if checkpoint.stable_votes >= self.config.quorum:
            if self.checkpoints.record_vote(seq, self.node_id, root):
                self._on_checkpoint_stable(seq)
        self.broadcast_to_replicas(
            CheckpointMsg(seq=seq, root=root, sender=self.node_id),
            exclude=self.node_id,
        )

    def on_checkpoint(self, msg: CheckpointMsg, env: Envelope = None) -> None:
        if msg.seq <= self.checkpoints.stable_seq:
            return
        if self.checkpoints.get(msg.seq) is not None:
            if self.checkpoints.record_vote(msg.seq, msg.sender, msg.root):
                self._on_checkpoint_stable(msg.seq)
            return
        votes = self.pending_votes[msg.seq]
        votes[msg.sender] = msg.root
        # A checkpoint we have not reached: if enough correct replicas
        # vouch for it and we are stuck or far behind, fetch the state.
        matching = defaultdict(int)
        for root in votes.values():
            matching[root] += 1
        for root, count in matching.items():
            if count >= self.config.f + 1 and msg.seq > self.last_exec:
                behind = msg.seq >= self.last_exec + self.config.checkpoint_interval
                if self.wedged or behind:
                    self.maybe_start_state_transfer(msg.seq, root)
                break

    def _on_checkpoint_stable(self, seq: int) -> None:
        # A stable checkpoint proves every batch up to ``seq`` committed
        # globally (2f+1 replicas executed it), even if our own commit
        # certificates for the tail are still in flight.  (We only get here
        # with a local checkpoint at ``seq``, so last_exec >= seq already.)
        # That same proof finalizes any tentative execution at or below
        # ``seq``: upgrade cached replies before committed_upto jumps over
        # the slots, or clients keep receiving tentative-flagged replies
        # for operations that are in fact durable and can never assemble
        # the f+1 stable votes they are waiting for.
        for slot in self.log.slots.values():
            if slot.seq <= seq and slot.executed and slot.tentative:
                self._finalize_tentative(slot)
        self.committed_upto = max(self.committed_upto, seq)
        self.log.advance_stable(seq)
        self.reqstore.gc_digests(self.log.live_request_digests())
        # Anything GC'd was executed (directly or proven by transferred
        # client marks): it is no longer outstanding.
        self.waiting_requests &= set(self.reqstore.by_digest)
        for old in [s for s in self.exec_journal if s <= seq]:
            del self.exec_journal[old]
        for old in [s for s in self.pending_votes if s <= seq]:
            del self.pending_votes[old]
        self.stats["checkpoints_stabilized"] += 1
        if self.tracer.enabled:
            self.tracer.event(
                self.host.name, "checkpoint-stable", cat="pbft.checkpoint",
                args={"seq": seq},
            )
        if self.is_primary:
            self._try_issue_batches()

    # -- state transfer plumbing (tasks live in recovery.py) --------------------------------

    def on_digests(self, msg: DigestsMsg, env: Envelope = None) -> None:
        if self.transfer is not None and not self.transfer_is_stale():
            self.transfer.on_digests(msg)

    def on_pages(self, msg: PagesMsg, env: Envelope = None) -> None:
        if self.transfer is not None and not self.transfer_is_stale():
            self.transfer.on_pages(msg)

    # -- session keys (section 2.3) ----------------------------------------------------------

    def on_authenticator_refresh(self, msg: AuthenticatorRefresh, env: Envelope = None) -> None:
        for rid, key_bytes in msg.keys:
            if rid == self.node_id:
                self.install_session_key("client", msg.client, MacKey(key_bytes))
                self.stats["authenticators_refreshed"] += 1
        if self.stalled_batches:
            self._retry_stalled_batches()

    # -- rollback (used by view changes) --------------------------------------------------------

    def _rollback_uncommitted(self) -> None:
        """Undo tentative executions beyond the committed prefix by
        restoring the stable checkpoint and replaying committed batches."""
        if self.last_exec <= self.committed_upto:
            return
        stable = self.checkpoints.latest_stable()
        stable_seq = self.checkpoints.stable_seq
        self.stats["rollbacks"] += 1
        if stable is not None:
            self.state.restore(stable.pages, stable.tree_nodes)
            self.reqstore.last_executed_req = dict(
                stable.meta.get("client_marks", {})
            )
            # Replies from a *stable* checkpoint are final even if they
            # were cached as tentative when the checkpoint was taken.
            self.reqstore.last_reply = {
                client: reply.stabilized()
                for client, reply in stable.meta.get("client_replies", {}).items()
            }
        else:
            self.state.restore([bytes(self.config.page_size)] * self.config.state_pages)
            self.reqstore.last_executed_req = {}
            self.reqstore.last_reply = {}
        self._state_installed()
        replay = [
            self.exec_journal[seq]
            for seq in range(stable_seq + 1, self.committed_upto + 1)
            if seq in self.exec_journal
        ]
        self.exec_journal = {}
        self.last_exec = stable_seq
        for pp, requests in replay:
            self._execute_batch(pp, requests, tentative=False, slot=None, silent=True)
        self.last_exec = self.committed_upto
        # Discard any checkpoints taken on tentative state.
        for seq in [s for s in self.checkpoints._by_seq if s > self.committed_upto]:
            if seq != self.checkpoints.stable_seq:
                del self.checkpoints._by_seq[seq]
        for slot in self.log.slots.values():
            if slot.seq > self.committed_upto and slot.executed:
                slot.executed = False
                slot.tentative = False
