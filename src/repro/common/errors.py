"""Exception hierarchy for the reproduction library.

Every package raises subclasses of :class:`ReproError` so applications can
catch library failures with a single ``except`` clause while tests can pin
down the precise failure class.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, failed verification...)."""


class NetworkError(ReproError):
    """A network-substrate operation failed (unknown host, closed socket)."""


class ProtocolError(ReproError):
    """A PBFT protocol invariant was violated or a malformed message seen."""


class StateError(ReproError):
    """The state manager detected misuse (unnotified write, bad page...)."""


class SqlError(ReproError):
    """The embedded SQL engine rejected a statement or transaction."""


class ShardError(ReproError):
    """The sharding layer rejected a request (unknown table, bad routing)."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""


class SqlConstraintError(SqlError):
    """A constraint (primary key, NOT NULL, type check) was violated."""
