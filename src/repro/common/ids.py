"""Node identifiers.

PBFT distinguishes *replicas* (the static 3f+1 group, identified by their
index ``0..n-1``) from *clients*.  With static membership, clients also get
small dense indices known a priori.  With the paper's dynamic-membership
extension (section 3.1), clients get *arbitrary* identifiers which a
redirection table maps onto internal node-entry slots.
"""

from __future__ import annotations

from dataclasses import dataclass

ReplicaId = int
ClientId = int

# Client ids are offset away from replica ids so a glance at a trace tells
# the two apart; replicas occupy 0..n-1.
CLIENT_ID_BASE = 1000


def make_client_id(index: int) -> ClientId:
    """Return the client id for the ``index``-th statically configured client."""
    return CLIENT_ID_BASE + index


@dataclass(frozen=True, order=True)
class NodeId:
    """A qualified node identifier: kind plus numeric id.

    Used by the network trace to label endpoints unambiguously.
    """

    kind: str  # "replica" or "client"
    num: int

    def __str__(self) -> str:
        return f"{self.kind}{self.num}"

    @staticmethod
    def replica(num: int) -> "NodeId":
        return NodeId("replica", num)

    @staticmethod
    def client(num: int) -> "NodeId":
        return NodeId("client", num)
