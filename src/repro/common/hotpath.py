"""Global switch for the hot-path caches (see DESIGN.md "Hot-path cost
model and caching").

Every optimization added by the hot-path pass — memoized wire encodings,
the MAC tag cache, batched Merkle refreshes — is a pure memo of a value
the protocol provably cannot change, so toggling the switch changes wall
clock only, never simulated results.  The switch exists for exactly two
consumers:

* the perf harness (:mod:`repro.perf.bench`), which measures the same
  scenario with caches off and on in one process to produce an
  apples-to-apples before/after ratio, and
* the differential tests, which assert the cached and uncached paths
  produce byte-identical output.

``enabled=False`` reproduces the seed implementation's behaviour: fresh
encodes per send/verify, one HMAC key schedule per MAC, per-leaf Merkle
path rehashes, and eager marshalling in ``verify_envelope``.
"""

from __future__ import annotations

from contextlib import contextmanager


class _HotpathSwitch:
    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = True


HOTPATH = _HotpathSwitch()


def set_hotpath_caches(enabled: bool) -> None:
    """Enable or disable every hot-path cache at once."""
    HOTPATH.enabled = bool(enabled)


@contextmanager
def hotpath_caches(enabled: bool):
    """Temporarily force the caches on or off (tests, A/B benchmarks)."""
    prior = HOTPATH.enabled
    HOTPATH.enabled = bool(enabled)
    try:
        yield
    finally:
        HOTPATH.enabled = prior
