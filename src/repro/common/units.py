"""Time units.

All simulated time in this library is an ``int`` count of nanoseconds.
Integers keep the discrete-event simulation exactly deterministic (no
floating-point drift between runs or platforms).
"""

from __future__ import annotations

NANOSECOND: int = 1
MICROSECOND: int = 1_000
MILLISECOND: int = 1_000_000
SECOND: int = 1_000_000_000


def nanoseconds(value: float) -> int:
    """Convert a value in nanoseconds to integer nanoseconds."""
    return round(value)


def microseconds(value: float) -> int:
    """Convert a value in microseconds to integer nanoseconds."""
    return round(value * MICROSECOND)


def milliseconds(value: float) -> int:
    """Convert a value in milliseconds to integer nanoseconds."""
    return round(value * MILLISECOND)


def seconds(value: float) -> int:
    """Convert a value in seconds to integer nanoseconds."""
    return round(value * SECOND)


def format_duration(ns: int) -> str:
    """Render a nanosecond duration with a human-friendly unit.

    >>> format_duration(1_500_000)
    '1.500ms'
    """
    if ns < 0:
        return "-" + format_duration(-ns)
    if ns < MICROSECOND:
        return f"{ns}ns"
    if ns < MILLISECOND:
        return f"{ns / MICROSECOND:.3f}us"
    if ns < SECOND:
        return f"{ns / MILLISECOND:.3f}ms"
    return f"{ns / SECOND:.3f}s"
