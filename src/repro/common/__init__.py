"""Shared utilities: errors, time units, identifiers, configuration helpers.

Everything in :mod:`repro` builds on the small vocabulary defined here:
integer-nanosecond timestamps, stable node identifiers, and a common
exception hierarchy.
"""

from repro.common.errors import (
    ReproError,
    ConfigError,
    CryptoError,
    NetworkError,
    ProtocolError,
    StateError,
    SqlError,
)
from repro.common.units import (
    NANOSECOND,
    MICROSECOND,
    MILLISECOND,
    SECOND,
    nanoseconds,
    microseconds,
    milliseconds,
    seconds,
    format_duration,
)
from repro.common.ids import NodeId, ReplicaId, ClientId, make_client_id

__all__ = [
    "ReproError",
    "ConfigError",
    "CryptoError",
    "NetworkError",
    "ProtocolError",
    "StateError",
    "SqlError",
    "NANOSECOND",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "nanoseconds",
    "microseconds",
    "milliseconds",
    "seconds",
    "format_duration",
    "NodeId",
    "ReplicaId",
    "ClientId",
    "make_client_id",
]
