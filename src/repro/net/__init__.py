"""Simulated network substrate.

Models what the paper's testbed provided physically: hosts with CPUs and
NICs, a switched 1 GbE network, and UDP datagram service — including UDP's
failure mode (silent packet loss) that section 2.4 of the paper shows
interacts badly with the "all requests are big" optimization.

The fabric also keeps the common-clock message trace the authors built to
reason about the middleware (paper section 2.2).
"""

from repro.net.fabric import (
    Address,
    DatagramSocket,
    DropRule,
    Host,
    LinkSpec,
    NetworkConfig,
    NetworkFabric,
    Packet,
    TraceRecord,
)

__all__ = [
    "Address",
    "DatagramSocket",
    "DropRule",
    "Host",
    "LinkSpec",
    "NetworkConfig",
    "NetworkFabric",
    "Packet",
    "TraceRecord",
]
