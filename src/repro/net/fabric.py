"""Hosts, NICs, links and the datagram fabric."""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Callable, Optional

from repro.common.errors import ConfigError, NetworkError
from repro.common.hotpath import HOTPATH
from repro.common.units import MICROSECOND, SECOND
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator

Address = tuple[str, int]  # (host name, port)


@dataclass(frozen=True)
class Packet:
    """A datagram in flight.

    ``payload`` is the protocol message object; ``size`` is its wire size in
    bytes (computed from the byte codec in :mod:`repro.pbft.wire`), which is
    what the bandwidth model charges for.
    """

    src: Address
    dst: Address
    payload: object
    size: int
    kind: str = ""


@dataclass
class TraceRecord:
    """One line of the common-clock message log (paper section 2.2)."""

    time: int
    src: Address
    dst: Address
    kind: str
    size: int
    dropped: bool
    reason: str = ""


@dataclass
class LinkSpec:
    """Latency/bandwidth/loss parameters for one directed host pair.

    Defaults model the paper's testbed: a 1 GbE switch with sub-millisecond
    round trips (the paper reports 134-183 microseconds ping RTT; we use a
    one-way base latency in that neighbourhood) and 938 Mbit/s iperf
    bandwidth.
    """

    latency_ns: int = 70 * MICROSECOND
    jitter_ns: int = 10 * MICROSECOND
    bandwidth_bps: int = 938_000_000
    loss_probability: float = 0.0

    def validate(self) -> None:
        if self.latency_ns < 0 or self.jitter_ns < 0:
            raise ConfigError("link latency and jitter must be non-negative")
        if self.bandwidth_bps <= 0:
            raise ConfigError("link bandwidth must be positive")
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ConfigError("loss probability must be within [0, 1]")


@dataclass
class NetworkConfig:
    """Fabric-wide defaults plus per-pair overrides."""

    default_link: LinkSpec = field(default_factory=LinkSpec)
    overrides: dict[tuple[str, str], LinkSpec] = field(default_factory=dict)
    # Datagrams above this size are split into MTU-sized fragments for the
    # bandwidth model (loss applies per datagram, as with UDP over Ethernet
    # where any lost fragment loses the datagram).
    mtu: int = 1472

    def link_for(self, src_host: str, dst_host: str) -> LinkSpec:
        return self.overrides.get((src_host, dst_host), self.default_link)


class DropRule:
    """Targeted fault injection: drop packets matching a predicate.

    Section 2.4 of the paper studies what a *single* lost datagram does to
    the middleware; a rule with ``count=1`` reproduces exactly that.
    """

    def __init__(
        self,
        predicate: Callable[[Packet], bool],
        count: Optional[int] = None,
        name: str = "drop-rule",
    ) -> None:
        self.predicate = predicate
        self.remaining = count  # None = unlimited
        self.name = name
        self.matched = 0

    def wants(self, packet: Packet) -> bool:
        if self.remaining is not None and self.remaining <= 0:
            return False
        if not self.predicate(packet):
            return False
        self.matched += 1
        if self.remaining is not None:
            self.remaining -= 1
        return True


class LinkFault:
    """A windowed link disturbance for fault-injection campaigns.

    While ``active``, every packet whose endpoints match the ``src``/``dst``
    host patterns (``fnmatch`` style, e.g. ``"replica*"``) is subjected to
    probabilistic drop, fixed extra delay, probabilistic duplication, and
    probabilistic reordering (a one-off large delay that pushes the packet
    behind later traffic).  Campaign schedules toggle ``active`` to model
    disturbance windows; counters record what actually happened so
    invariant reports can say which faults bit.
    """

    def __init__(
        self,
        src: str = "*",
        dst: str = "*",
        drop_probability: float = 0.0,
        extra_delay_ns: int = 0,
        duplicate_probability: float = 0.0,
        duplicate_delay_ns: int = 200 * MICROSECOND,
        reorder_probability: float = 0.0,
        reorder_delay_ns: int = 2_000 * MICROSECOND,
        name: str = "link-fault",
    ) -> None:
        for prob in (drop_probability, duplicate_probability, reorder_probability):
            if not 0.0 <= prob <= 1.0:
                raise ConfigError("link fault probabilities must be within [0, 1]")
        if extra_delay_ns < 0 or duplicate_delay_ns < 0 or reorder_delay_ns < 0:
            raise ConfigError("link fault delays must be non-negative")
        self.src = src
        self.dst = dst
        self.drop_probability = drop_probability
        self.extra_delay_ns = extra_delay_ns
        self.duplicate_probability = duplicate_probability
        self.duplicate_delay_ns = duplicate_delay_ns
        self.reorder_probability = reorder_probability
        self.reorder_delay_ns = reorder_delay_ns
        self.name = name
        self.active = True
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0
        self.reordered = 0

    def matches(self, packet: Packet) -> bool:
        if not self.active:
            return False
        return fnmatch(packet.src[0], self.src) and fnmatch(packet.dst[0], self.dst)


class Host:
    """A simulated machine: a clock (with optional skew), one CPU, one NIC.

    The CPU is a serial resource: work submitted via :meth:`execute` runs
    back-to-back, so a flood of incoming messages queues behind crypto work
    exactly as it would on the paper's single-threaded PBFT replica process.
    """

    def __init__(self, fabric: "NetworkFabric", name: str, clock_skew_ns: int = 0) -> None:
        self.fabric = fabric
        self.name = name
        self.clock_skew_ns = clock_skew_ns
        self._cpu_free_at = 0
        self._nic_free_at = 0
        self.cpu_busy_ns = 0  # accumulated, for utilization reporting

    @property
    def sim(self) -> Simulator:
        return self.fabric.sim

    def local_time(self) -> int:
        """This host's wall clock: simulated time plus its skew.

        Replicas use this for request timestamps and non-determinism
        validation (paper section 2.5), so skew matters.
        """
        return self.sim.now + self.clock_skew_ns

    def execute(self, cost_ns: int, work: Callable[[], None]) -> None:
        """Run ``work`` after ``cost_ns`` of CPU time, honouring the queue.

        ``work`` fires when the CPU finishes this job; the CPU is busy from
        ``max(now, cpu_free_at)`` until then.
        """
        if cost_ns < 0:
            raise ConfigError(f"negative CPU cost {cost_ns}")
        start = max(self.sim.now, self._cpu_free_at)
        done = start + cost_ns
        self._cpu_free_at = done
        self.cpu_busy_ns += cost_ns
        self.sim.schedule_anonymous(done, work)

    def charge_cpu(self, cost_ns: int) -> tuple[int, int]:
        """Account CPU time with no completion callback (fire-and-forget cost).

        Returns the ``(start, end)`` interval the work occupies on this
        CPU, so callers can trace where the time actually goes (the start
        is pushed back behind whatever the CPU is already chewing on).
        """
        if cost_ns <= 0:
            at = max(self.sim.now, self._cpu_free_at)
            return (at, at)
        start = max(self.sim.now, self._cpu_free_at)
        self._cpu_free_at = start + cost_ns
        self.cpu_busy_ns += cost_ns
        return (start, self._cpu_free_at)

    def _reserve_nic(self, tx_ns: int) -> int:
        """Reserve the NIC for ``tx_ns``; return the time serialization ends."""
        start = max(self.sim.now, self._nic_free_at)
        done = start + tx_ns
        self._nic_free_at = done
        return done


class DatagramSocket:
    """An unreliable datagram endpoint bound to (host, port).

    Mirrors the PBFT implementation's use of UDP: no connection, no
    delivery guarantee, no ordering guarantee.
    """

    def __init__(self, host: Host, port: int) -> None:
        self.host = host
        self.port = port
        self.handler: Optional[Callable[[Packet], None]] = None
        self.closed = False
        self.received = 0
        self.sent = 0

    @property
    def address(self) -> Address:
        return (self.host.name, self.port)

    def on_receive(self, handler: Callable[[Packet], None]) -> None:
        self.handler = handler

    def send(self, dst: Address, payload: object, size: int, kind: str = "") -> None:
        """Send one datagram. May be silently lost; never raises for loss."""
        if self.closed:
            raise NetworkError(f"socket {self.address} is closed")
        self.sent += 1
        packet = Packet(src=self.address, dst=dst, payload=payload, size=size, kind=kind)
        self.host.fabric.transmit(packet)

    def multicast(
        self, dsts: list[Address], payload: object, size: int, kind: str = ""
    ) -> None:
        """Send the same datagram to each destination (serial unicasts).

        The paper disables IP multicast in all experiments ("the networks we
        are targeting (WANs) do not support it"), so a multicast is n
        unicasts sharing the sender's NIC — the cost that makes the primary
        the bottleneck when it must forward full request bodies.
        """
        for dst in dsts:
            self.send(dst, payload, size, kind)

    def close(self) -> None:
        self.closed = True
        self.host.fabric.unbind(self.address)


class NetworkFabric:
    """The switched network connecting all hosts."""

    def __init__(
        self,
        sim: Simulator,
        rng: RngStreams,
        config: Optional[NetworkConfig] = None,
        trace_enabled: bool = False,
        trace_limit: int = 200_000,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.rng = rng.stream("net.loss")
        self.jitter_rng = rng.stream("net.jitter")
        # Link faults draw from their own stream so installing a campaign
        # cannot perturb the loss/jitter sequences of an un-faulted run.
        self.fault_rng = rng.stream("net.faults")
        self.config = config or NetworkConfig()
        self.config.default_link.validate()
        self.hosts: dict[str, Host] = {}
        self.sockets: dict[Address, DatagramSocket] = {}
        self.drop_rules: list[DropRule] = []
        self.link_faults: list[LinkFault] = []
        self.trace_enabled = trace_enabled
        self.trace_limit = trace_limit
        self.trace: list[TraceRecord] = []
        # The structured tracer generalizes the TraceRecord list: packets
        # become flight spans / drop instants on the "net" track of the
        # common-clock trace (repro.obs), alongside protocol phases.
        self.tracer = tracer
        self.packets_sent = 0
        self.packets_dropped = 0
        self.bytes_sent = 0
        self.partitions: set[frozenset[str]] = set()
        # Hot-path memos (repro.common.hotpath).  Routes — the (Host, link)
        # pair for a (src, dst) host pair — and serialization times are
        # pure functions of topology, which is fixed at build time (hosts
        # are only added, link overrides only set at construction), so the
        # memos can never go stale mid-run.
        self._route_memo: dict[tuple[str, str], tuple[Host, LinkSpec]] = {}
        self._txtime_memo: dict[tuple[int, int, int], int] = {}

    # -- topology -----------------------------------------------------------

    def add_host(self, name: str, clock_skew_ns: int = 0) -> Host:
        if name in self.hosts:
            raise ConfigError(f"duplicate host name {name!r}")
        host = Host(self, name, clock_skew_ns)
        self.hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host {name!r}") from None

    def bind(self, host_name: str, port: int) -> DatagramSocket:
        host = self.host(host_name)
        addr = (host_name, port)
        if addr in self.sockets:
            raise NetworkError(f"address {addr} already bound")
        sock = DatagramSocket(host, port)
        self.sockets[addr] = sock
        return sock

    def unbind(self, addr: Address) -> None:
        self.sockets.pop(addr, None)

    # -- fault injection ----------------------------------------------------

    def add_drop_rule(self, rule: DropRule) -> DropRule:
        self.drop_rules.append(rule)
        return rule

    def add_link_fault(self, fault: LinkFault) -> LinkFault:
        self.link_faults.append(fault)
        return fault

    def remove_link_fault(self, fault: LinkFault) -> None:
        fault.active = False
        if fault in self.link_faults:
            self.link_faults.remove(fault)

    def partition(self, group_a: set[str], group_b: set[str]) -> None:
        """Disconnect every (a, b) host pair in both directions."""
        for a in group_a:
            for b in group_b:
                self.partitions.add(frozenset((a, b)))

    def unpartition(self, group_a: set[str], group_b: set[str]) -> None:
        """Heal exactly the (a, b) pairs cut by a matching :meth:`partition`.

        Unlike :meth:`heal_partition` this leaves other concurrent
        partitions in place, so overlapping fault windows heal
        independently.
        """
        for a in group_a:
            for b in group_b:
                self.partitions.discard(frozenset((a, b)))

    def heal_partition(self) -> None:
        self.partitions.clear()

    # -- transmission -------------------------------------------------------

    def transmit(self, packet: Packet) -> None:
        self.packets_sent += 1
        self.bytes_sent += packet.size
        if HOTPATH.enabled:
            route_key = (packet.src[0], packet.dst[0])
            route = self._route_memo.get(route_key)
            if route is None:
                route = self._route_memo[route_key] = (
                    self.host(packet.src[0]),
                    self.config.link_for(packet.src[0], packet.dst[0]),
                )
            src_host, link = route
            if not (
                self.partitions
                or self.drop_rules
                or self.link_faults
                or link.loss_probability > 0.0
                or self.trace_enabled
            ):
                # Fault-free fast path: with no drop source active the
                # packet provably survives and no RNG draws are owed, so
                # the drop/fault machinery is skipped entirely.  Memoized
                # serialization time, same arrival as the general path.
                tx_key = (packet.size, link.bandwidth_bps, self.config.mtu)
                tx_ns = self._txtime_memo.get(tx_key)
                if tx_ns is None:
                    tx_ns = self._txtime_memo[tx_key] = self._tx_time(
                        packet.size, link
                    )
                serialized_at = src_host._reserve_nic(tx_ns)
                jitter = (
                    self.jitter_rng.randrange(link.jitter_ns + 1)
                    if link.jitter_ns
                    else 0
                )
                arrival = serialized_at + link.latency_ns + jitter
                tracer = self.tracer
                if tracer is not None and tracer.enabled:
                    self._trace_packet(packet, self.sim.now, arrival, "")
                self.sim.schedule_anonymous(
                    arrival, lambda p=packet: self._deliver(p)
                )
                return
        else:
            src_host = self.host(packet.src[0])
            link = self.config.link_for(packet.src[0], packet.dst[0])

        dropped, reason = self._drop_decision(packet, link)
        if self.trace_enabled and len(self.trace) < self.trace_limit:
            self.trace.append(
                TraceRecord(
                    time=self.sim.now,
                    src=packet.src,
                    dst=packet.dst,
                    kind=packet.kind,
                    size=packet.size,
                    dropped=dropped,
                    reason=reason,
                )
            )
        # The sender's NIC serializes the bytes whether or not the network
        # later drops them.
        tx_ns = self._tx_time(packet.size, link)
        serialized_at = src_host._reserve_nic(tx_ns)
        if dropped:
            self.packets_dropped += 1
            self._trace_packet(packet, self.sim.now, None, reason)
            return
        jitter = self.jitter_rng.randrange(link.jitter_ns + 1) if link.jitter_ns else 0
        arrival = serialized_at + link.latency_ns + jitter
        arrival = self._apply_link_faults(packet, arrival)
        self._trace_packet(packet, self.sim.now, arrival, "")
        self.sim.schedule_anonymous(arrival, lambda p=packet: self._deliver(p))

    def _apply_link_faults(self, packet: Packet, arrival: int) -> int:
        """Delay/duplicate/reorder a surviving packet per active faults.

        Drops were already decided in :meth:`_drop_decision` (so they share
        the normal trace/accounting path); what remains here only ever
        *adds* copies or delay.
        """
        for fault in self.link_faults:
            if not fault.matches(packet):
                continue
            if fault.extra_delay_ns:
                fault.delayed += 1
                arrival += fault.extra_delay_ns
            if (
                fault.reorder_probability
                and self.fault_rng.random() < fault.reorder_probability
            ):
                # A one-off large delay: the packet lands behind traffic
                # sent after it, which is what reordering looks like to UDP.
                fault.reordered += 1
                arrival += fault.reorder_delay_ns
            if (
                fault.duplicate_probability
                and self.fault_rng.random() < fault.duplicate_probability
            ):
                fault.duplicated += 1
                dup_at = arrival + fault.duplicate_delay_ns
                self.sim.schedule_anonymous(dup_at, lambda p=packet: self._deliver(p))
        return arrival

    def _trace_packet(
        self, packet: Packet, sent_at: int, arrival: Optional[int], reason: str
    ) -> None:
        """Structured-trace one datagram: a flight span, or a drop tick."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return
        args = {
            "src": f"{packet.src[0]}:{packet.src[1]}",
            "dst": f"{packet.dst[0]}:{packet.dst[1]}",
            "size": packet.size,
        }
        name = packet.kind or "datagram"
        if arrival is None:
            args["reason"] = reason
            tracer.event("net", name + " DROPPED", cat="net.drop", args=args)
        else:
            tracer.complete("net", name, sent_at, arrival, cat="net", args=args)

    def _tx_time(self, size: int, link: LinkSpec) -> int:
        # Ethernet/IP/UDP framing overhead per MTU-sized fragment.
        fragments = max(1, -(-size // self.config.mtu))
        wire_bytes = size + fragments * 46
        return (wire_bytes * 8 * SECOND) // link.bandwidth_bps

    def _drop_decision(self, packet: Packet, link: LinkSpec) -> tuple[bool, str]:
        if frozenset((packet.src[0], packet.dst[0])) in self.partitions:
            return True, "partition"
        for rule in self.drop_rules:
            if rule.wants(packet):
                return True, rule.name
        for fault in self.link_faults:
            if (
                fault.drop_probability
                and fault.matches(packet)
                and self.fault_rng.random() < fault.drop_probability
            ):
                fault.dropped += 1
                return True, fault.name
        if link.loss_probability > 0.0 and self.rng.random() < link.loss_probability:
            return True, "random-loss"
        return False, ""

    def _deliver(self, packet: Packet) -> None:
        sock = self.sockets.get(packet.dst)
        if sock is None or sock.closed or sock.handler is None:
            # UDP: datagrams to unbound ports vanish (the restarted-replica
            # window in the recovery experiments relies on this).
            return
        sock.received += 1
        sock.handler(packet)

    # -- introspection ------------------------------------------------------

    def collect_metrics(self, registry, prefix: str = "net.") -> None:
        """Publish fabric and per-host counters into a metrics registry."""
        registry.gauge(prefix + "packets_sent").set(self.packets_sent)
        registry.gauge(prefix + "packets_dropped").set(self.packets_dropped)
        registry.gauge(prefix + "bytes_sent").set(self.bytes_sent)
        for name, host in self.hosts.items():
            registry.gauge(f"host.{name}.cpu_busy_ns").set(host.cpu_busy_ns)

    def trace_lines(self) -> list[str]:
        """Human-readable trace, one line per packet (paper section 2.2)."""
        lines = []
        for rec in self.trace:
            flag = f" DROPPED({rec.reason})" if rec.dropped else ""
            lines.append(
                f"{rec.time:>12d}ns {rec.src[0]}:{rec.src[1]} -> "
                f"{rec.dst[0]}:{rec.dst[1]} {rec.kind} {rec.size}B{flag}"
            )
        return lines
