"""Figure 4: the configuration matrix swept over request/response sizes.

"The results for varying request and response sizes are similar, so for
brevity we show a representative plot, for size of 1024 bytes."  The
benchmark regenerates all four series (256/1024/2048/4096 bytes) and
asserts that the *shape* — the ranking and rough ratios — is indeed
similar across sizes.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.configs import TABLE1_CONFIGS
from repro.harness.experiments import run_fig4_size_sweep
from repro.harness.reporting import format_fig4

SIZES = (256, 1024, 2048, 4096)
# The four headline configurations carry the figure's story; sweeping all
# ten at all four sizes is run by examples/run_evaluation.py.
ROWS = tuple(
    row
    for row in TABLE1_CONFIGS
    if row.name
    in (
        "sta_mac_allbig_batch",
        "sta_mac_noallbig_batch",
        "sta_nomac_allbig_batch",
        "sta_nomac_noallbig_batch",
    )
)


@pytest.fixture(scope="module")
def sweep():
    return run_fig4_size_sweep(sizes=SIZES, rows=ROWS, measure_s=0.25)


def test_bench_fig4_sweep(benchmark, sweep):
    results = run_once(benchmark, lambda: sweep)
    print("\n" + format_fig4(results))
    benchmark.extra_info["tps"] = {
        size: {row.name: round(m.tps) for row, m in series}
        for size, series in results.items()
    }
    for size in SIZES:
        by_name = {row.name: m.tps for row, m in results[size]}
        # The ranking holds at every payload size.
        assert (
            by_name["sta_mac_allbig_batch"]
            > by_name["sta_mac_noallbig_batch"]
            > by_name["sta_nomac_noallbig_batch"]
        )


def test_bench_fig4_shapes_similar_across_sizes(benchmark, sweep):
    """The paper's 'results are similar' claim, quantified: each config's
    share of the optimal varies by less than a factor of ~2.5 across
    sizes.  The exception is mac+noallbig, whose penalty is per-byte
    (the primary forwards every request body), so its share legitimately
    shrinks with payload size."""
    results = run_once(benchmark, lambda: sweep)
    shares: dict[str, list[float]] = {}
    for size in SIZES:
        by_name = {row.name: m.tps for row, m in results[size]}
        best = max(by_name.values())
        for name, tps in by_name.items():
            shares.setdefault(name, []).append(tps / best)
    for name, values in shares.items():
        if name == "sta_mac_noallbig_batch":
            # Monotone decay with size, not similarity.
            assert values == sorted(values, reverse=True)
            continue
        assert max(values) < 2.5 * min(values), (name, values)


def test_bench_larger_payloads_do_not_speed_things_up(benchmark, sweep):
    results = run_once(benchmark, lambda: sweep)
    default = {
        size: dict((row.name, m.tps) for row, m in results[size])[
            "sta_mac_allbig_batch"
        ]
        for size in SIZES
    }
    assert default[4096] <= default[256] * 1.1
