"""Figure 5: SQL-insert throughput across configurations (paper 4.2).

The workload is the paper's: "the insertion of a single row into a
database table ... a simple key and value text, in addition to a
timestamp and a random value", with ACID semantics from the rollback
journal.  Asserted shape:

* the big-request optimization "pays no dividends" once real disk work
  dominates;
* the most robust configuration with dynamic clients lands at roughly
  half the best (paper: 43 %);
* everything sits two orders of magnitude below the null-op headline.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.experiments import run_fig5_sql, run_table1
from repro.harness.configs import TABLE1_CONFIGS
from repro.harness.reporting import format_fig5


@pytest.fixture(scope="module")
def fig5_results():
    return run_fig5_sql(measure_s=0.8)


def test_bench_fig5(benchmark, fig5_results):
    results = run_once(benchmark, lambda: fig5_results)
    print("\n" + format_fig5(results))
    by_name = {row.name: m.tps for row, m in results}
    benchmark.extra_info["tps"] = {k: round(v) for k, v in by_name.items()}

    # Big-request handling pays no dividends on real operations.
    mac_allbig = by_name["sql_sta_mac_allbig"]
    mac_noallbig = by_name["sql_sta_mac_noallbig"]
    assert abs(mac_allbig - mac_noallbig) < 0.15 * max(mac_allbig, mac_noallbig)

    # Most robust + dynamic clients: roughly half the best (paper: 43%).
    best = max(by_name.values())
    robust_dynamic = by_name["sql_nosta_nomac_noallbig"]
    assert 0.30 * best < robust_dynamic < 0.80 * best

    # Absolute neighbourhood of the paper's numbers (ACID inserts).
    assert 300 < robust_dynamic < 900  # paper: 534


def test_bench_sql_is_orders_below_null_headline(benchmark, fig5_results):
    """'The throughput can be many times smaller than the tens of
    thousands of null operations per second presented in prior
    PBFT-based studies.'"""
    sql = {row.name: m.tps for row, m in run_once(benchmark, lambda: fig5_results)}
    null_default = run_table1(
        rows=(TABLE1_CONFIGS[0],), measure_s=0.3
    )[0][1].tps
    benchmark.extra_info["null_default_tps"] = round(null_default)
    benchmark.extra_info["sql_best_tps"] = round(max(sql.values()))
    assert max(sql.values()) < null_default / 10
