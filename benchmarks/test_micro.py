"""Micro-benchmarks of the substrates (real wall time, classic
pytest-benchmark usage): crypto primitives, Merkle updates, b-tree
inserts, SQL statements, and the simulator's event loop."""

import pytest

from repro.crypto.digests import md5_digest
from repro.crypto.mac import MacKey, compute_mac
from repro.crypto.rabin import rabin_generate, rabin_sign, rabin_verify
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator
from repro.sqlstate.engine import Database
from repro.statemgr.merkle import MerkleTree
from repro.statemgr.pages import PagedState


@pytest.fixture(scope="module")
def rabin_pair():
    return rabin_generate(RngStreams(71).stream("bench"), bits=512)


def test_bench_rabin_sign(benchmark, rabin_pair):
    benchmark(lambda: rabin_sign(rabin_pair, b"benchmark message"))


def test_bench_rabin_verify(benchmark, rabin_pair):
    sig = rabin_sign(rabin_pair, b"benchmark message")
    result = benchmark(lambda: rabin_verify(rabin_pair.public, b"benchmark message", sig))
    assert result


def test_bench_mac_compute(benchmark):
    key = MacKey.generate(RngStreams(72).stream("bench"))
    data = bytes(1024)
    benchmark(lambda: compute_mac(key, data))


def test_bench_md5_1k(benchmark):
    data = bytes(1024)
    benchmark(lambda: md5_digest(data))


def test_bench_merkle_leaf_update(benchmark):
    tree = MerkleTree(256)
    digest = md5_digest(b"x")
    counter = iter(range(10**9))

    def update():
        tree.update_leaf(next(counter) % 256, md5_digest(str(next(counter)).encode()))

    benchmark(update)


def test_bench_state_write_and_root(benchmark):
    state = PagedState(64, 4096)

    def work():
        state.modify(1000, 64)
        state.write(1000, bytes(64))
        state.end_of_execution()
        return state.refresh_tree()

    benchmark(work)


def test_bench_sql_insert(benchmark):
    db = Database()
    db.executescript(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, k TEXT, v BLOB);"
        "CREATE INDEX idx_k ON t(k);"
    )
    counter = iter(range(10**9))

    def insert():
        i = next(counter)
        db.execute("INSERT INTO t (k, v) VALUES (?, randomblob(8))", (f"key{i}",))

    benchmark(insert)


def test_bench_sql_indexed_select(benchmark):
    db = Database()
    db.executescript(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, k TEXT);"
        "CREATE INDEX idx_k ON t(k);"
    )
    for i in range(500):
        db.execute("INSERT INTO t (k) VALUES (?)", (f"key{i}",))
    result = benchmark(lambda: db.execute("SELECT id FROM t WHERE k = 'key250'"))
    assert len(result.rows) == 1


def test_bench_simulator_event_throughput(benchmark):
    def run_events():
        sim = Simulator()
        remaining = [2000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(10, tick)

        sim.schedule(10, tick)
        sim.run()
        return sim.events_run

    events = benchmark(run_events)
    assert events == 2000
