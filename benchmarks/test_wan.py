"""Section 3.3.3: the WAN deployment question the authors could not run.

"This requirement dictates operation in a Wide Area Network environment,
where the quadratic message complexity of PBFT will most probably prove
costly regarding request latency.  Although we tried to simulate a WAN
deployment scenario using BFTsim, the simulator could not scale."

Our simulator scales, so here is the answer: with closed-loop clients,
throughput falls roughly as 1/RTT — the agreement rounds serialize on
geography, and a service that does 17k ops/s on a switch does tens of
ops/s across an ocean.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.wan import PROFILES, format_wan, run_wan_sweep


@pytest.fixture(scope="module")
def wan_results():
    return run_wan_sweep(measure_s=0.5)


def test_bench_wan_latency_dominates(benchmark, wan_results):
    results = run_once(benchmark, lambda: wan_results)
    print("\n" + format_wan(results))
    by_name = {profile.name: m for profile, m in results}
    benchmark.extra_info["tps"] = {name: round(m.tps) for name, m in by_name.items()}

    # Strictly decreasing throughput with distance.
    tps = [m.tps for _p, m in results]
    assert tps == sorted(tps, reverse=True)
    # LAN to intercontinental: several orders of magnitude.
    assert by_name["lan-1gbe"].tps > 100 * by_name["intercontinental-wan"].tps


def test_bench_wan_latency_tracks_rtt(benchmark, wan_results):
    results = run_once(benchmark, lambda: wan_results)
    for profile, measurement in results:
        rtt = 2 * profile.one_way_latency_ns
        # A request needs ~3 message delays minimum (request, agreement,
        # reply overlap); closed-loop p50 latency is a small multiple of
        # the one-way latency, never less than ~3x.
        assert measurement.p50_latency_ns > 3 * profile.one_way_latency_ns
        assert measurement.p50_latency_ns < 20 * rtt
