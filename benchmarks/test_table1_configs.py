"""Table 1: null-operation throughput across the ten library configurations.

Regenerates the paper's Table 1 rows and asserts the qualitative shape:

* the default configuration (MACs + all-big + batching) is an order of
  magnitude above every robust configuration;
* disabling big-request handling alone lands near the paper's 18 %;
* disabling MACs collapses throughput to a few percent of optimal;
* dynamic client management costs under ~2 % (paper: 0.5 %).
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.configs import TABLE1_CONFIGS
from repro.harness.experiments import run_table1
from repro.harness.reporting import format_table1

MEASURE_S = 0.4


@pytest.fixture(scope="module")
def table1_results():
    return run_table1(measure_s=MEASURE_S)


def test_bench_table1(benchmark, table1_results):
    results = run_once(benchmark, lambda: table1_results)
    by_name = {row.name: m.tps for row, m in results}
    benchmark.extra_info["tps"] = {k: round(v) for k, v in by_name.items()}
    print("\n" + format_table1(results))

    best = by_name["sta_mac_allbig_batch"]
    # The headline: ~17k null ops/s for the default configuration
    # (paper: 17014; the simulated testbed is calibrated to its ratios).
    assert 12_000 < best < 25_000

    # Robust configurations collapse to a few percent of optimal.
    robust = by_name["sta_nomac_noallbig_batch"]
    assert robust < 0.12 * best
    assert 600 < robust < 1600  # paper: 992

    # Disabling big-request handling alone: ~18% of optimal (paper 17.8%).
    noallbig = by_name["sta_mac_noallbig_batch"]
    assert 0.10 * best < noallbig < 0.30 * best

    # Disabling MACs alone: under 12% of optimal (paper 7.6%).
    nomac = by_name["sta_nomac_allbig_batch"]
    assert nomac < 0.12 * best

    # Batching is essential with MACs (paper: 16x; ours: >3x).
    assert by_name["sta_mac_allbig_batch"] > 3 * by_name["sta_mac_allbig_nobatch"]


def test_bench_dynamic_client_overhead(benchmark, table1_results):
    """Section 4.1: 'The performance decrease is 0.5% (988 vs 992), which
    is negligible.'"""
    by_name = {row.name: m.tps for row, m in run_once(benchmark, lambda: table1_results)}
    static = by_name["sta_nomac_noallbig_batch"]
    dynamic = by_name["nosta_nomac_noallbig_batch"]
    overhead = (static - dynamic) / static
    benchmark.extra_info["overhead_percent"] = round(100 * overhead, 2)
    assert abs(overhead) < 0.02


def test_bench_ordering_matches_paper(benchmark, table1_results):
    """The paper's ranking of batched configurations holds."""
    by_name = {row.name: m.tps for row, m in run_once(benchmark, lambda: table1_results)}
    assert (
        by_name["sta_mac_allbig_batch"]
        > by_name["sta_mac_noallbig_batch"]
        > by_name["sta_nomac_allbig_batch"]
        > by_name["sta_nomac_noallbig_batch"]
    )
