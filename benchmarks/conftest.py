"""Shared benchmark plumbing.

The experiment benchmarks run a *simulated* cluster: the interesting
number is simulated TPS (stored in benchmark.extra_info), while
pytest-benchmark's wall time measures the harness itself.  Each benchmark
also asserts the paper's qualitative shape, so `pytest benchmarks/
--benchmark-only` doubles as the reproduction check.
"""

import pytest


def pytest_collection_modifyitems(items):
    """Tag everything under benchmarks/ so `-m "not bench"` excludes it.

    The tier-1 suite already stays out via ``testpaths = ["tests"]``;
    the marker makes the exclusion explicit for runs that name both
    directories (e.g. ``pytest tests benchmarks -m "not bench"``).
    """
    for item in items:
        item.add_marker(pytest.mark.bench)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
