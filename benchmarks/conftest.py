"""Shared benchmark plumbing.

The experiment benchmarks run a *simulated* cluster: the interesting
number is simulated TPS (stored in benchmark.extra_info), while
pytest-benchmark's wall time measures the harness itself.  Each benchmark
also asserts the paper's qualitative shape, so `pytest benchmarks/
--benchmark-only` doubles as the reproduction check.
"""

import pytest


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
