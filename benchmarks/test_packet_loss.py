"""Section 2.4: one lost UDP datagram vs the big-request optimization."""

import pytest

from benchmarks.conftest import run_once
from repro.harness.experiments import run_packet_loss_experiment


@pytest.fixture(scope="module")
def loss_results():
    return (
        run_packet_loss_experiment(all_big=True),
        run_packet_loss_experiment(all_big=False),
    )


def test_bench_big_request_loss_wedges_one_replica(benchmark, loss_results):
    big, _small = run_once(benchmark, lambda: loss_results)
    benchmark.extra_info["wedge_ms"] = round(big.wedge_duration_ns / 1e6, 1)
    benchmark.extra_info["state_transfers"] = big.state_transfers
    assert big.wedged_replicas == [3]
    assert big.state_transfers >= 1
    assert big.all_caught_up
    # The wedge lasts until the next checkpoint's recovery — a sizeable
    # service interruption from a single datagram.
    assert big.wedge_duration_ns > 50e6


def test_bench_non_big_loss_is_benign(benchmark, loss_results):
    _big, small = run_once(benchmark, lambda: loss_results)
    benchmark.extra_info["retransmissions"] = small.client_retransmissions
    assert small.wedged_replicas == []
    assert small.state_transfers == 0
    assert small.client_retransmissions >= 1
    assert small.all_caught_up
