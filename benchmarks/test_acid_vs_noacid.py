"""Section 4.2's disk-cost isolation: ACID vs No-ACID.

Paper: "The ACID version achieves 534 TPS while the No-ACID one scores
1155, an approximately 2x performance boost."
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.experiments import run_acid_comparison
from repro.harness.reporting import format_acid


@pytest.fixture(scope="module")
def acid_results():
    return run_acid_comparison(measure_s=0.8)


def test_bench_acid_vs_noacid(benchmark, acid_results):
    acid, noacid = run_once(benchmark, lambda: acid_results)
    print("\n" + format_acid(acid, noacid))
    benchmark.extra_info["acid_tps"] = round(acid.tps)
    benchmark.extra_info["noacid_tps"] = round(noacid.tps)

    ratio = noacid.tps / acid.tps
    assert 1.5 < ratio < 2.8  # paper: 2.16x
    assert 350 < acid.tps < 800  # paper: 534
    assert 800 < noacid.tps < 1600  # paper: 1155


def test_bench_acid_state_machines_agree(benchmark, acid_results):
    """Replica execution counts agree to within one in-flight batch — the
    measurement cuts the simulation mid-round, so a replica may be a few
    requests ahead, but never diverges."""
    acid, noacid = run_once(benchmark, lambda: acid_results)
    for measurement in (acid, noacid):
        counts = measurement.extras["replica_exec_counts"]
        assert max(counts) - min(counts) <= 64  # one max_batch
