"""Section 2.3: the authenticator-staleness recovery stall.

"The only way to lower the time frame for this service interruption, is
to reduce the authenticator retransmission timeout, which results in
increased load for the network."
"""

import pytest

from benchmarks.conftest import run_once
from repro.common.units import MILLISECOND, SECOND
from repro.harness.experiments import run_recovery_experiment


@pytest.fixture(scope="module")
def recovery_sweep():
    intervals = (int(0.5 * SECOND), 1 * SECOND, 2 * SECOND)
    mac_runs = [
        run_recovery_experiment(use_macs=True, rebroadcast_interval_ns=interval)
        for interval in intervals
    ]
    sig_run = run_recovery_experiment(use_macs=False, rebroadcast_interval_ns=1 * SECOND)
    return intervals, mac_runs, sig_run


def test_bench_recovery_tracks_rebroadcast_interval(benchmark, recovery_sweep):
    intervals, mac_runs, _sig = run_once(benchmark, lambda: recovery_sweep)
    times = [run.recovery_time_ns for run in mac_runs]
    benchmark.extra_info["recovery_ms_by_interval"] = {
        f"{i / 1e9:.1f}s": round(t / 1e6, 1) for i, t in zip(intervals, times)
    }
    assert all(run.caught_up for run in mac_runs)
    assert all(run.replay_auth_failures > 0 for run in mac_runs)
    # Monotone in the rebroadcast interval, roughly proportionally.
    assert times[0] < times[1] < times[2]
    assert times[2] > 2.5 * times[0]


def test_bench_signature_mode_recovers_fast(benchmark, recovery_sweep):
    _intervals, mac_runs, sig_run = run_once(benchmark, lambda: recovery_sweep)
    benchmark.extra_info["sig_recovery_ms"] = round(sig_run.recovery_time_ns / 1e6, 2)
    assert sig_run.caught_up
    assert sig_run.replay_auth_failures == 0
    assert sig_run.recovery_time_ns < 50 * MILLISECOND
    # The robustness/performance trade-off in one line: the optimization
    # that wins Table 1 costs two orders of magnitude at recovery.
    assert mac_runs[1].recovery_time_ns > 10 * sig_run.recovery_time_ns
